"""Differential conformance runner.

Usage::

    python -m repro.testkit.run --seed 0 --budget 30

Runs seed-derived iterations until the time budget is exhausted (or for
an exact ``--iterations`` count).  Each iteration is fully determined by
``(seed, index)`` and exercises all six workload families:

* a random GOLD model through the full pipeline harness,
* a DOM mutation script checked differentially after every operation,
* a batch of random XPath expressions against both evaluators,
* indexed vs linear template dispatch over the model document,
* the compiled streaming renderer vs the interpreter, byte-for-byte,
  over both the model document and a mutated generic document,
* a model edit script replayed through the incremental republisher,
  each step proven byte-identical to a cold publish.

Failures are printed and written as JSON reproducers (seed, iteration,
and the failing records) to ``--failures-dir`` so a red CI run can be
replayed locally with ``--seed S --start I --iterations 1``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from ..mdm.xml_io import model_to_document
from ..obs import RECORDER, build_trace, write_trace
from .differential import (
    GENERIC_DIFFERENTIAL_XSL,
    compiled_differential,
    dispatch_differential,
    incremental_differential,
    run_mutation_differential,
    sort_differential,
    xpath_differential,
)
from .generators import (
    random_document,
    random_model,
    random_model_edit_script,
    random_mutations,
    random_xpath,
)
from .pipeline import run_pipeline

__all__ = ["run_iteration", "main"]

#: Per-iteration workload sizes (kept small: one iteration should take
#: well under a second so a 30 s budget covers a broad corpus).
MUTATIONS_PER_ITERATION = 16
XPATHS_PER_ITERATION = 25
SORT_SHUFFLES = 3
MODEL_EDITS_PER_ITERATION = 4


def iteration_rng(seed: int, index: int) -> random.Random:
    """The deterministic RNG for iteration *index* of *seed*."""
    return random.Random(f"{seed}:{index}")


def run_iteration(seed: int, index: int) -> list[dict]:
    """Run one full iteration; returns JSON-serializable failure records.

    Each workload family runs inside an observability span
    (``testkit.<family>``), so a harness with the global recorder
    enabled (the CLI below always enables it) gets per-stage timings
    for free; with the recorder disabled the spans are no-ops.
    """
    rng = iteration_rng(seed, index)
    failures: list[dict] = []

    with RECORDER.span("testkit.pipeline"):
        model = random_model(rng)
        pipeline = run_pipeline(model)
        for failure in pipeline.failures:
            record = failure.as_dict()
            record["model"] = model.name
            failures.append(record)

    with RECORDER.span("testkit.mutations"):
        documents = [random_document(rng), random_document(rng)]
        operations = random_mutations(rng, MUTATIONS_PER_ITERATION)
        failures.extend(run_mutation_differential(documents, operations))

    target = random_document(rng)
    expressions = [random_xpath(rng) for _ in range(XPATHS_PER_ITERATION)]
    with RECORDER.span("testkit.xpath"):
        failures.extend(xpath_differential(target, expressions))
    with RECORDER.span("testkit.sort"):
        failures.extend(sort_differential(target, SORT_SHUFFLES, rng))

    model_document = model_to_document(model)
    with RECORDER.span("testkit.dispatch"):
        failures.extend(dispatch_differential(model_document))

    # Compiled streaming renderer vs the interpreter: every shipped
    # stylesheet over the model document, plus the generic sheets over a
    # document the mutation script just finished mangling.
    with RECORDER.span("testkit.compiled"):
        failures.extend(compiled_differential(model_document))
        failures.extend(compiled_differential(
            documents[0], stylesheets=GENERIC_DIFFERENTIAL_XSL))

    # Incremental republish vs cold publish: a random edit script over
    # the iteration's model, every step proven byte-identical.
    with RECORDER.span("testkit.incremental"):
        edits = random_model_edit_script(rng, MODEL_EDITS_PER_ITERATION)
        failures.extend(incremental_differential(model, edits))

    for record in failures:
        record.setdefault("seed", seed)
        record.setdefault("iteration", index)
    return failures


def _write_reproducers(directory: str, seed: int,
                       failures: list[dict]) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"seed{seed}-failures.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(failures, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit.run",
        description="Differential conformance harness for the "
                    "XML→XPath→XSLT→HTML pipeline.")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; iteration i uses RNG(seed:i)")
    parser.add_argument("--budget", type=float, default=30.0,
                        help="time budget in seconds (default 30)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="run exactly N iterations, ignoring --budget")
    parser.add_argument("--start", type=int, default=0,
                        help="first iteration index (for replaying one "
                             "failing iteration)")
    parser.add_argument("--failures-dir", default="testkit-failures",
                        help="directory for JSON reproducers of failures")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write the observability trace (trace.json) "
                             "of the whole run to PATH")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-iteration progress output")
    args = parser.parse_args(argv)

    started = time.monotonic()
    index = args.start
    completed = 0
    all_failures: list[dict] = []
    # The harness always records: per-stage spans cost nothing compared
    # to the differential workloads and every red run gets its timings.
    was_enabled = RECORDER.enabled
    RECORDER.enable(clear=not was_enabled)
    try:
        while True:
            if args.iterations is not None:
                if completed >= args.iterations:
                    break
            elif completed > 0 and time.monotonic() - started >= args.budget:
                break
            failures = run_iteration(args.seed, index)
            completed += 1
            if failures:
                all_failures.extend(failures)
                print(f"iteration {index}: {len(failures)} failure(s)",
                      file=sys.stderr)
                for record in failures[:5]:
                    print(f"  {json.dumps(record, sort_keys=True)}",
                          file=sys.stderr)
            elif not args.quiet and completed % 10 == 0:
                elapsed = time.monotonic() - started
                print(f"... {completed} iterations green ({elapsed:.1f}s)")
            index += 1
    finally:
        trace = build_trace()
        RECORDER.enabled = was_enabled
    if args.trace:
        directory = os.path.dirname(args.trace)
        if directory:
            os.makedirs(directory, exist_ok=True)
        write_trace(args.trace, trace)
        print(f"trace written to {args.trace}")

    elapsed = time.monotonic() - started
    if all_failures:
        stages = {
            path.removeprefix("testkit."): round(stats["total"], 6)
            for path, stats in trace["span_aggregates"].items()
            if path.startswith("testkit.")
        }
        failure_count = len(all_failures)
        bad = sorted({record["iteration"] for record in all_failures})
        # One extra context record (not a failure): where the run's time
        # went, so a red CI log shows which stage blew the budget.
        all_failures.append({
            "check": "stage-timings", "seed": args.seed,
            "iteration": -1, "stages_s": stages,
        })
        path = _write_reproducers(args.failures_dir, args.seed, all_failures)
        print(f"testkit: FAIL — {failure_count} failure(s) across "
              f"iterations {bad} in {elapsed:.1f}s; reproducers: {path}")
        print(f"replay one with: python -m repro.testkit.run "
              f"--seed {args.seed} --start {bad[0]} --iterations 1")
        return 1
    print(f"testkit: OK — {completed} iterations, 0 failures, "
          f"seed {args.seed}, {elapsed:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
