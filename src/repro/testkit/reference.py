"""Reference oracles for the engine's optimized hot paths.

Everything in this module is *deliberately naive*: no memoized order
keys, no namespace-resolution caches, no order-preservation reasoning,
no template-dispatch indexes.  Each oracle recomputes its answer from
the tree on every call, so it cannot be fooled by a stale cache — which
is exactly what makes it a useful differential partner for the
optimized implementations in :mod:`repro.xml.dom`,
:mod:`repro.xpath.evaluator` and :mod:`repro.xslt.engine`.

The oracles intentionally reproduce the engine's *key scheme* (child
indices from the root, attributes at ``(1, i)``, namespace nodes at
``(0, prefix)``, element children starting at 2) so optimized and
reference keys can be compared tuple for tuple, not just by the order
they induce.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..xml.dom import (
    Attribute,
    Document,
    Element,
    NamespaceNode,
    Node,
    XML_NAMESPACE,
    XMLNS_NAMESPACE,
)
from ..xpath.ast import FilterExpr, Step, UnionExpr
from ..xpath.axes import AXES, REVERSE_AXES, principal_node_kind
from ..xpath.errors import XPathNameError
from ..xpath.evaluator import Context, XPathEvaluator
from ..xpath.parser import parse_xpath

__all__ = [
    "reference_order_key",
    "reference_sort",
    "reference_lookup_namespace",
    "ReferenceXPathEvaluator",
    "reference_evaluate",
    "reference_find_rule",
    "template_dispatch_disagreements",
    "iter_tree_nodes",
    "describe_node",
]


# -- document order ---------------------------------------------------------

def reference_order_key(node: Node) -> tuple:
    """Recompute *node*'s document-order key without touching any cache.

    Matches the scheme of :meth:`repro.xml.dom.Node.document_order_key`
    exactly: a detached node keys to ``()``, children of a document
    start at 0, children of an element at 2 (slots 0 and 1 are reserved
    for namespace nodes and attributes of that element).
    """
    if isinstance(node, NamespaceNode):
        return reference_order_key(node.owner) + (0, node.prefix_name)
    if isinstance(node, Attribute):
        owner = node.parent
        if not isinstance(owner, Element):
            return ()
        position = next(
            i for i, a in enumerate(owner.attributes) if a is node)
        return reference_order_key(owner) + (1, position)
    parent = node.parent
    if parent is None:
        return ()
    base = 2 if isinstance(parent, Element) else 0
    position = next(
        i for i, c in enumerate(parent.children) if c is node)
    return reference_order_key(parent) + (base + position,)


def reference_sort(nodes: Sequence[Node]) -> list[Node]:
    """Document-order sort with identity dedup, via reference keys only."""
    unique = {id(node): node for node in nodes}
    return sorted(unique.values(), key=reference_order_key)


# -- namespace resolution ---------------------------------------------------

def reference_lookup_namespace(element: Element, prefix: str) -> str | None:
    """Cache-free ancestor walk matching ``Element.lookup_namespace``."""
    if prefix == "xml":
        return XML_NAMESPACE
    if prefix == "xmlns":
        return XMLNS_NAMESPACE
    node: Node | None = element
    while isinstance(node, Element):
        if prefix in node.namespace_declarations:
            return node.namespace_declarations[prefix] or None
        node = node.parent
    return None


# -- tree iteration ---------------------------------------------------------

def iter_tree_nodes(root: Node, *, attributes: bool = True) -> Iterator[Node]:
    """Yield *root* and every descendant in document order.

    Attribute nodes are yielded right after their owner element (before
    its children) when *attributes* is true; namespace declarations are
    skipped, matching the XPath attribute axis.
    """
    yield root
    if attributes and isinstance(root, Element):
        for attr in root.attributes:
            if not attr.is_namespace_decl:
                yield attr
    if isinstance(root, (Document, Element)):
        for child in root.children:
            yield from iter_tree_nodes(child, attributes=attributes)


def describe_node(node: Node) -> str:
    """A short human-readable locator for failure reports."""
    if isinstance(node, Document):
        return "/"
    if isinstance(node, Attribute):
        owner = node.parent
        owner_text = describe_node(owner) if owner is not None else "?"
        return f"{owner_text}/@{node.name}"
    if isinstance(node, NamespaceNode):
        return f"{describe_node(node.owner)}/namespace::{node.prefix_name}"
    if isinstance(node, Element):
        parent = node.parent
        if parent is None:
            return f"<{node.name}> (detached)"
        siblings = [c for c in parent.children
                    if isinstance(c, Element) and c.name == node.name]
        ordinal = next(i for i, s in enumerate(siblings, 1) if s is node)
        prefix = "" if isinstance(parent, Document) else describe_node(parent)
        return f"{prefix}/{node.name}[{ordinal}]"
    parent = node.parent
    prefix = describe_node(parent) if parent is not None else ""
    return f"{prefix}/{node.kind}()"


# -- XPath ------------------------------------------------------------------

class ReferenceXPathEvaluator(XPathEvaluator):
    """An evaluator with every node-set shortcut removed.

    After *every* step the intermediate node-set is deduplicated and
    re-sorted with :func:`reference_order_key` — no order-preservation
    reasoning, no singleton shortcuts, no ``//name`` fusion, no inlined
    fast-path name test.  Union and filter expressions likewise sort via
    reference keys.  Semantics (predicates evaluated in axis order, the
    reverse-axis position rules) are unchanged, so the result must equal
    the optimized evaluator's result node for node.
    """

    def _apply_steps(self, steps: Sequence[Step], start: list[Node],
                     context: Context) -> list[Node]:
        current = reference_sort(start)
        for step in steps:
            gathered: list[Node] = []
            seen: set[int] = set()
            for node in current:
                for result in self._apply_step(step, node, context):
                    if id(result) not in seen:
                        seen.add(id(result))
                        gathered.append(result)
            current = reference_sort(gathered)
        return current

    def _apply_step(self, step: Step, node: Node,
                    context: Context) -> list[Node]:
        axis = AXES.get(step.axis)
        if axis is None:
            raise XPathNameError(f"unknown axis {step.axis!r}")
        principal = principal_node_kind(step.axis)
        candidates = [
            n for n in axis(node)
            if self._node_test(step.test, n, principal, context)
        ]
        reverse = step.axis in REVERSE_AXES
        for predicate in step.predicates:
            candidates = self._filter(candidates, predicate, context,
                                      reverse=reverse)
        return candidates

    def _eval_union(self, expr: UnionExpr, context: Context) -> object:
        left = self.evaluate_node_set(expr.left, context)
        right = self.evaluate_node_set(expr.right, context)
        return reference_sort(left + right)

    def _eval_filter(self, expr: FilterExpr, context: Context) -> object:
        nodes = reference_sort(self.evaluate_node_set(expr.primary, context))
        for predicate in expr.predicates:
            nodes = self._filter(nodes, predicate, context, reverse=False)
        return nodes

    # The base dispatch table holds raw function objects, so the union
    # and filter overrides above only take effect through a merged copy.
    _DISPATCH = dict(XPathEvaluator._DISPATCH)
    _DISPATCH[UnionExpr] = _eval_union
    _DISPATCH[FilterExpr] = _eval_filter


def reference_evaluate(expression: str, context_node: Node,
                       **kwargs: object) -> object:
    """Evaluate *expression* with the reference evaluator."""
    context = Context(node=context_node, **kwargs)  # type: ignore[arg-type]
    return ReferenceXPathEvaluator().evaluate(
        parse_xpath(expression), context)


# -- template dispatch ------------------------------------------------------

def reference_find_rule(rules, node: Node, context: Context):
    """Linear scan of the precedence-sorted rule list (no index)."""
    for rule in rules:
        if rule.pattern.matches(node, context):
            return rule
    return None


def template_dispatch_disagreements(transformer, source: Document,
                                    modes: Sequence[str | None] | None = None
                                    ) -> list[dict]:
    """Compare indexed vs linear template dispatch over a whole document.

    For every node of *source* and every mode of *transformer*, the
    first match from the ``_RuleIndex``-backed lookup must be the same
    rule object a linear scan of the sorted rule list finds.  Returns a
    list of disagreement records (empty when the index is faithful).
    """
    from ..xslt.engine import ResultDocument, TransformResult, _Run

    result = TransformResult(document=ResultDocument(),
                             output=transformer.stylesheet.output)
    run = _Run(transformer, source, result, {})
    run.bootstrap_globals()

    if modes is None:
        modes = sorted(transformer._rules_by_mode,
                       key=lambda m: (m is not None, m or ""))
    disagreements: list[dict] = []
    for mode in modes:
        rules = transformer._rules_by_mode.get(mode, [])
        for node in iter_tree_nodes(source):
            indexed = run._find_rule(node, mode, run.global_frame)
            context = run._context(node, 1, 1, run.global_frame)
            expected = reference_find_rule(rules, node, context)
            if indexed is not expected:
                disagreements.append({
                    "mode": mode,
                    "node": describe_node(node),
                    "indexed": None if indexed is None
                    else indexed.pattern.text,
                    "reference": None if expected is None
                    else expected.pattern.text,
                })
    return disagreements
