"""Seed-replayable random workload generators.

Every generator is a pure function of a ``random.Random`` instance, so
the CLI (``python -m repro.testkit.run``) can reproduce any failing
iteration from ``(seed, iteration)`` alone.  The Hypothesis strategies
in :mod:`repro.testkit.strategies` are thin wrappers over these same
functions, which keeps the shrinking path and the fuzzing path on
identical generation code.

Three workload families:

* :func:`random_model` — GOLD models honouring the §2 metamodel
  constraints (one {OID} per carrier, rooted acyclic hierarchies,
  additivity only over shared dimensions, well-formed cubes), so the
  pipeline harness can demand a *clean* run end to end;
* :func:`random_document` / :func:`random_mutations` — generic XML
  trees plus mutation scripts (append/insert/remove/reattach/…) that
  hammer the version-stamped cache invalidation of the DOM;
* :func:`random_xpath` — expressions built from a grammar whose every
  production is supported by both the optimized and the reference
  evaluator;
* :func:`random_model_edit_script` — designer-shaped edit scripts over
  a model document (renames, flag toggles, measure adds, whole-unit
  clone/drop) that drive the incremental-republish differential.
"""

from __future__ import annotations

import random
import string
from typing import Sequence

from ..mdm.builder import ModelBuilder
from ..mdm.enums import AggregationKind, Multiplicity
from ..mdm.model import GoldModel
from ..xml.dom import (
    Comment,
    Document,
    DOMError,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)
from .reference import iter_tree_nodes

__all__ = [
    "random_model",
    "random_document",
    "random_mutations",
    "apply_mutation",
    "random_model_edit_script",
    "apply_model_edit",
    "random_xpath",
    "MUTATION_KINDS",
    "MODEL_EDIT_KINDS",
    "DOCUMENT_TAGS",
    "DOCUMENT_ATTRS",
]

#: Text alphabet matching the existing round-trip property tests:
#: markup characters stress escaping, but no raw newlines/tabs, which
#: the XML attribute-value normalization would rewrite on reparse.
_TEXT_ALPHABET = string.ascii_letters + string.digits + " '&<>\""

_AGGREGATIONS = tuple(AggregationKind)

#: Vocabulary for the generic XML documents (small on purpose, so that
#: generated XPath name tests actually hit something).
DOCUMENT_TAGS = ("a", "b", "c", "item", "row")
DOCUMENT_ATTRS = ("id", "name", "k")
_NS_PREFIXES = ("p", "q", "")
_NS_URIS = ("urn:x", "urn:y", "")


def _random_text(rng: random.Random, max_length: int = 12) -> str:
    length = rng.randrange(max_length + 1)
    return "".join(rng.choice(_TEXT_ALPHABET) for _ in range(length))


def _random_name(rng: random.Random, prefix: str, index: int) -> str:
    return f"{prefix}{index}_" + "".join(
        rng.choice(string.ascii_lowercase) for _ in range(rng.randrange(1, 5)))


# -- GOLD models ------------------------------------------------------------

def random_model(rng: random.Random, *, max_facts: int = 2,
                 max_dimensions: int = 3, max_levels: int = 3,
                 max_measures: int = 3, max_cubes: int = 2) -> GoldModel:
    """A random GOLD model that satisfies every §2 semantic constraint.

    Hierarchy edges are generated only from the dimension root or from a
    lower-indexed level to a higher-indexed one, which guarantees a DAG
    rooted in the dimension class; every attribute carrier gets exactly
    one {OID} attribute and one {D} descriptor; additivity rules and
    dice groupings only reference dimensions the fact actually shares.
    """
    builder = ModelBuilder(
        _random_name(rng, "Model", rng.randrange(100)),
        description=_random_text(rng))

    dimension_builders = []
    level_names: list[list[str]] = []
    for d in range(rng.randrange(1, max_dimensions + 1)):
        dimension = builder.dimension(
            _random_name(rng, "Dim", d), is_time=(d == 0),
            description=_random_text(rng))
        dimension.attribute(f"d{d}_id", type_="Number", oid=True)
        dimension.attribute(f"d{d}_name", descriptor=True)
        if rng.random() < 0.3:
            dimension.method(f"d{d}_op", return_type="String")
        names: list[str] = []
        for lv in range(rng.randrange(0, max_levels + 1)):
            name = _random_name(rng, f"D{d}L", lv)
            (dimension.level(name, description=_random_text(rng))
             .attribute(f"{name}_id", type_="Number", oid=True)
             .attribute(f"{name}_name", descriptor=True)
             .done())
            names.append(name)
        # Rooted DAG: each level gets at least one incoming edge, either
        # from the dimension class itself or from a strictly lower level.
        for index, name in enumerate(names):
            if index == 0 or rng.random() < 0.5:
                dimension.relate_root(
                    name, completeness=rng.choice((None, True, False)))
            else:
                source = names[rng.randrange(index)]
                strict = rng.random() < 0.8
                dimension.relate(
                    source, name,
                    role_a=(Multiplicity.ONE if strict
                            else Multiplicity.MANY),
                    role_b=Multiplicity.MANY,
                    completeness=rng.choice((None, True)))
        if rng.random() < 0.25:
            (dimension.level(_random_name(rng, f"D{d}Cat", 0),
                             categorization=True)
             .attribute(f"d{d}_extra")
             .done())
        dimension_builders.append(dimension)
        level_names.append(names)

    fact_builders = []
    for f in range(rng.randrange(1, max_facts + 1)):
        fact = builder.fact(_random_name(rng, "Fact", f),
                            description=_random_text(rng))
        measures = []
        for m in range(rng.randrange(1, max_measures + 1)):
            name = _random_name(rng, f"f{f}m", m)
            derived = rng.random() < 0.2
            fact.measure(name, derived=derived,
                         derivation_rule="a * b" if derived else "")
            measures.append(name)
        if rng.random() < 0.5:
            fact.degenerate(f"f{f}_ticket")
        if rng.random() < 0.2:
            fact.method(f"f{f}_op")
        shared = [d for d in dimension_builders if rng.random() < 0.8]
        if not shared:
            shared = [rng.choice(dimension_builders)]
        for dimension in shared:
            if rng.random() < 0.2:
                fact.many_to_many(dimension)
            else:
                fact.uses(dimension)
            if rng.random() < 0.4:
                allowed = [k for k in _AGGREGATIONS if rng.random() < 0.5]
                fact.additivity(rng.choice(measures), dimension,
                                is_not=not allowed and rng.random() < 0.5,
                                allow=allowed)
        fact_builders.append((fact, measures, shared))

    for c in range(rng.randrange(0, max_cubes + 1)):
        fact, measures, shared = rng.choice(fact_builders)
        diceable = [
            (dimension, level_names[dimension_builders.index(dimension)])
            for dimension in shared
            if level_names[dimension_builders.index(dimension)]
        ]
        dice_dimension = None
        if diceable and rng.random() < 0.7:
            dice_dimension, names = rng.choice(diceable)
        # A cube aggregation must be permitted by the measure's
        # additivity rules along every diced dimension (§2); a measure
        # whose rule forbids everything cannot appear in the cube.
        candidates: list[tuple[str, AggregationKind]] = []
        for measure in measures:
            allowed = set(_AGGREGATIONS)
            if dice_dimension is not None:
                allowed &= fact.fact.attribute(measure).allowed_aggregations(
                    dice_dimension.dimension.id)
            if allowed:
                candidates.append(
                    (measure, rng.choice(sorted(allowed,
                                                key=lambda k: k.value))))
        if not candidates:
            continue
        chosen = [mc for mc in candidates if rng.random() < 0.6] \
            or [candidates[0]]
        cube = builder.cube(_random_name(rng, "Cube", c), fact,
                            measures=[m for m, _ in chosen],
                            aggregations=[a for _, a in chosen],
                            description=_random_text(rng))
        if dice_dimension is not None:
            from ..mdm.cubes import DiceGrouping

            level = dice_dimension.dimension.level(rng.choice(names))
            builder.replace_cube(cube, cube.dice(
                [DiceGrouping(dice_dimension.dimension.id, level.id)]))

    return builder.build()


# -- generic XML documents --------------------------------------------------

def _fill_element(rng: random.Random, element: Element, depth: int,
                  max_children: int) -> None:
    for name in DOCUMENT_ATTRS:
        if rng.random() < 0.4:
            element.set_attribute(name, _random_text(rng, 6))
    if rng.random() < 0.15:
        prefix = rng.choice(_NS_PREFIXES)
        uri = rng.choice(_NS_URIS)
        if prefix or uri:
            element.declare_namespace(prefix, uri or "urn:default")
    if depth <= 0:
        return
    for _ in range(rng.randrange(max_children + 1)):
        roll = rng.random()
        if roll < 0.55:
            child = Element(rng.choice(DOCUMENT_TAGS))
            element.append_child(child)
            _fill_element(rng, child, depth - 1, max_children)
        elif roll < 0.85:
            element.append_child(Text(_random_text(rng) or "t"))
        elif roll < 0.95:
            element.append_child(Comment(_random_text(rng, 6)))
        else:
            element.append_child(
                ProcessingInstruction("pi", _random_text(rng, 6)))


def random_document(rng: random.Random, *, max_depth: int = 4,
                    max_children: int = 4) -> Document:
    """A random generic XML document (elements, text, comments, PIs)."""
    document = Document()
    if rng.random() < 0.2:
        document.append_child(Comment("prolog"))
    root = Element(rng.choice(DOCUMENT_TAGS))
    document.append_child(root)
    _fill_element(rng, root, max_depth, max_children)
    if rng.random() < 0.1:
        document.append_child(ProcessingInstruction("end", "marker"))
    return document


# -- DOM mutation scripts ---------------------------------------------------

#: Every mutating entry point of the DOM (plus the documented
#: direct-splice contract) appears here, so a stale-cache bug in any one
#: of them is reachable from a generated script.
MUTATION_KINDS = (
    "append", "insert", "remove", "reattach", "reorder",
    "set_attr", "remove_attr", "declare_ns", "splice",
)


def random_mutations(rng: random.Random, count: int = 16
                     ) -> list[tuple[str, int, int, int]]:
    """A replayable mutation script: ``(kind, a, b, c)`` opcode tuples.

    The integer operands are resolved against the *current* tree state
    by :func:`apply_mutation` (modulo the number of available targets),
    so the same script is meaningful on any document pool and the
    script alone fully determines the mutations.
    """
    big = 1 << 30
    return [
        (rng.choice(MUTATION_KINDS), rng.randrange(big), rng.randrange(big),
         rng.randrange(big))
        for _ in range(count)
    ]


def _parents(document: Document) -> list[Node]:
    return [n for n in iter_tree_nodes(document, attributes=False)
            if isinstance(n, (Document, Element))]


def _elements(document: Document) -> list[Element]:
    return [n for n in iter_tree_nodes(document, attributes=False)
            if isinstance(n, Element)]


def apply_mutation(pool: Sequence[Document],
                   op: tuple[str, int, int, int]) -> str:
    """Apply one opcode to the document pool; returns a description.

    Structurally impossible picks (text under a document, a second root
    element, moving a node into its own subtree) raise ``DOMError``
    inside the DOM and are reported as no-ops — real call sites hit the
    same guards, so skipping keeps the script aligned with reality.
    """
    kind, a, b, c = op
    document = pool[a % len(pool)]
    try:
        if kind == "append":
            parents = _parents(document)
            parent = parents[b % len(parents)]
            choice = c % 3
            if choice == 0:
                child: Node = Element(DOCUMENT_TAGS[c % len(DOCUMENT_TAGS)])
            elif choice == 1:
                child = Text(f"t{c % 100}")
            else:
                child = Comment(f"c{c % 100}")
            parent.append_child(child)
            return f"append {child.kind} under {parent.kind}"
        if kind == "insert":
            parents = [p for p in _parents(document) if p.children]
            if not parents:
                return "insert: no-op (no populated parents)"
            parent = parents[b % len(parents)]
            reference = parent.children[c % len(parent.children)]
            parent.insert_before(
                Element(DOCUMENT_TAGS[c % len(DOCUMENT_TAGS)]), reference)
            return f"insert element before child {c % len(parent.children)}"
        if kind == "remove":
            parents = [p for p in _parents(document) if p.children]
            if not parents:
                return "remove: no-op (no populated parents)"
            parent = parents[b % len(parents)]
            child = parent.children[c % len(parent.children)]
            parent.remove_child(child)
            return f"remove {child.kind} from {parent.kind}"
        if kind == "reattach":
            target_doc = pool[(a + 1) % len(pool)]
            movable = [e for e in _elements(document)
                       if e.parent is not None]
            if not movable:
                return "reattach: no-op (no movable elements)"
            element = movable[b % len(movable)]
            targets = _parents(target_doc)
            target = targets[c % len(targets)]
            target.append_child(element)
            return f"reattach <{element.name}> into other document"
        if kind == "reorder":
            parents = [p for p in _parents(document)
                       if len(p.children) >= 2]
            if not parents:
                return "reorder: no-op"
            parent = parents[b % len(parents)]
            child = parent.children[c % len(parent.children)]
            first = parent.children[0]
            if child is first:
                return "reorder: no-op (already first)"
            parent.remove_child(child)
            parent.insert_before(child, first)
            return f"reorder {child.kind} to front"
        if kind == "set_attr":
            elements = _elements(document)
            if not elements:
                return "set_attr: no-op"
            element = elements[b % len(elements)]
            name = DOCUMENT_ATTRS[c % len(DOCUMENT_ATTRS)]
            element.set_attribute(name, f"v{c % 10}")
            return f"set @{name} on <{element.name}>"
        if kind == "remove_attr":
            elements = [e for e in _elements(document) if e.attributes]
            if not elements:
                return "remove_attr: no-op"
            element = elements[b % len(elements)]
            attr = element.attributes[c % len(element.attributes)]
            element.remove_attribute(attr.name)
            return f"remove @{attr.name} from <{element.name}>"
        if kind == "declare_ns":
            elements = _elements(document)
            if not elements:
                return "declare_ns: no-op"
            element = elements[b % len(elements)]
            prefix = _NS_PREFIXES[c % len(_NS_PREFIXES)]
            uri = _NS_URIS[(c // 3) % len(_NS_URIS)]
            element.declare_namespace(prefix, uri)
            return f"declare xmlns:{prefix or ''}={uri!r} on <{element.name}>"
        if kind == "splice":
            parents = [p for p in _parents(document)
                       if len(p.children) >= 2]
            if not parents:
                return "splice: no-op"
            parent = parents[b % len(parents)]
            # The documented contract for direct children manipulation:
            # callers must invoke _children_changed() themselves.
            parent.children.reverse()
            parent._children_changed()
            return f"splice-reverse children of {parent.kind}"
        raise ValueError(f"unknown mutation kind {kind!r}")
    except DOMError as exc:
        return f"{kind}: no-op ({exc})"


# -- GOLD model edit scripts ------------------------------------------------

#: Designer-shaped edits over a model *document*, spanning every
#: incremental-republish regime: attribute tweaks inside one unit
#: (dirty-page republish), model-level toggles (everything dirties),
#: and whole-unit clone/drop (structural → full-publish fallback).
MODEL_EDIT_KINDS = (
    "rename", "describe", "toggle", "add_measure", "drop_child",
    "clone_unit", "drop_unit",
)

#: Unit-rooting tags, mirrored from :mod:`repro.web.incremental` (a
#: value import would drag the publishing stack into the generators).
_UNIT_TAGS = ("factclass", "dimclass", "cubeclass", "asoclevel", "catlevel")


def random_model_edit_script(rng: random.Random, count: int = 6
                             ) -> list[tuple[str, int, int, int]]:
    """A replayable model edit script: ``(kind, a, b, c)`` opcode tuples.

    Like :func:`random_mutations`, the integer operands are resolved
    against the *current* model by :func:`apply_model_edit`, so the
    script alone (plus the starting model) fully determines the edits.
    """
    big = 1 << 30
    return [
        (rng.choice(MODEL_EDIT_KINDS), rng.randrange(big),
         rng.randrange(big), rng.randrange(big))
        for _ in range(count)
    ]


def _unused_id(elements: Sequence[Element], candidate: str) -> str:
    """*candidate*, suffixed until it collides with no existing @id.

    Duplicate ids would collide page hrefs (every unit publishes to
    ``{@id}.html``), turning an edit into a publish error instead of a
    model variation.
    """
    existing = {e.get_attribute("id") for e in elements}
    while candidate in existing:
        candidate += "x"
    return candidate


def _clone_element(element: Element) -> Element:
    clone = Element(element.name)
    for attribute in element.attributes:
        clone.set_attribute(attribute.name, attribute.value)
    for child in element.children:
        if isinstance(child, Element):
            clone.append_child(_clone_element(child))
    return clone


def apply_model_edit(model: GoldModel,
                     op: tuple[str, int, int, int]) -> tuple[GoldModel, str]:
    """Apply one edit opcode to *model*; returns ``(new_model, what)``.

    The edit happens on the serialized document (the form a web-based
    editor would manipulate, §5) and is parsed back through
    :func:`~repro.mdm.xml_io.document_to_model`; an edit the parser
    rejects is reported as a no-op, keeping scripts aligned with what
    the CASE tool would actually accept.
    """
    from ..mdm.errors import ModelStructureError
    from ..mdm.xml_io import document_to_model, model_to_document

    kind, a, b, c = op
    document = model_to_document(model)
    root = document.root_element
    assert root is not None
    elements = list(root.iter_elements())
    units = [e for e in elements if e.name in _UNIT_TAGS]

    if kind == "rename":
        named = [e for e in elements if e.get_attribute("name") is not None]
        target = named[a % len(named)]
        target.set_attribute("name", f"Renamed {b % 50}")
        description = f"rename <{target.name}> to 'Renamed {b % 50}'"
    elif kind == "describe":
        target = ([root] + units)[a % (len(units) + 1)]
        target.set_attribute("description", f"edited description {b % 50}")
        description = f"describe <{target.name}>"
    elif kind == "toggle":
        flags: list[tuple[Element, str]] = [
            (root, "showatts"), (root, "showmethods")]
        flags.extend((e, "atomic") for e in elements
                     if e.name == "factatt")
        target, name = flags[a % len(flags)]
        flipped = "no" if target.get_attribute(name) == "yes" else "yes"
        target.set_attribute(name, flipped)
        description = f"toggle @{name} on <{target.name}> to {flipped}"
    elif kind == "add_measure":
        facts = [e for e in elements if e.name == "factclass"]
        fact = facts[a % len(facts)]
        atts = fact.find("factatts")
        if atts is None:
            atts = Element("factatts")
            fact.append_child(atts)
        new_id = _unused_id(elements, f"genm{b % 1000}")
        measure = Element("factatt")
        measure.set_attribute("id", new_id)
        measure.set_attribute("name", f"Generated Measure {b % 1000}")
        measure.set_attribute("type", "Number")
        measure.set_attribute("isoid", "no")
        measure.set_attribute("isderived", "no")
        measure.set_attribute("atomic", "yes")
        atts.append_child(measure)
        description = f"add factatt {new_id} to {fact.get_attribute('id')}"
    elif kind == "drop_child":
        droppable = [e for e in elements
                     if e.name in ("factatt", "additivity", "method",
                                   "sharedagg")
                     and e.parent is not None]
        if not droppable:
            return model, "drop_child: no-op (nothing droppable)"
        target = droppable[a % len(droppable)]
        target.parent.remove_child(target)
        description = f"drop <{target.name}> " \
                      f"(id={target.get_attribute('id')})"
    elif kind == "clone_unit":
        cubes = [e for e in elements if e.name == "cubeclass"]
        if not cubes:
            return model, "clone_unit: no-op (no cube classes)"
        source = cubes[a % len(cubes)]
        new_id = _unused_id(elements, f"genc{b % 1000}")
        clone = _clone_element(source)
        clone.set_attribute("id", new_id)
        clone.set_attribute("name", f"Cloned Cube {b % 1000}")
        source.parent.append_child(clone)
        description = f"clone cubeclass {source.get_attribute('id')} " \
                      f"as {new_id}"
    elif kind == "drop_unit":
        cubes = [e for e in elements if e.name == "cubeclass"]
        if not cubes:
            return model, "drop_unit: no-op (no cube classes)"
        target = cubes[a % len(cubes)]
        container = target.parent
        container.remove_child(target)
        if not any(isinstance(child, Element)
                   for child in container.children):
            container.parent.remove_child(container)
        description = f"drop cubeclass {target.get_attribute('id')}"
    else:
        raise ValueError(f"unknown model edit kind {kind!r}")

    try:
        return document_to_model(document), description
    except ModelStructureError as exc:
        return model, f"{kind}: no-op ({exc})"


# -- XPath expressions ------------------------------------------------------

_AXIS_POOL = (
    "child", "child", "child", "descendant", "descendant-or-self",
    "self", "parent", "ancestor", "ancestor-or-self",
    "following-sibling", "preceding-sibling", "following", "preceding",
    "attribute", "namespace",
)


def _random_predicate(rng: random.Random,
                      element_names: Sequence[str],
                      attr_names: Sequence[str]) -> str:
    roll = rng.randrange(8)
    if roll == 0:
        return f"[{rng.randrange(1, 4)}]"
    if roll == 1:
        return "[last()]"
    if roll == 2:
        return f"[position() != {rng.randrange(1, 4)}]"
    if roll == 3:
        return f"[@{rng.choice(attr_names)}]"
    if roll == 4:
        return f"[{rng.choice(element_names)}]"
    if roll == 5:
        return f"[@{rng.choice(attr_names)} = 'v{rng.randrange(10)}']"
    if roll == 6:
        return f"[not(self::{rng.choice(element_names)})]"
    return "[count(child::*) > 1]"


def _random_step(rng: random.Random, element_names: Sequence[str],
                 attr_names: Sequence[str]) -> str:
    axis = rng.choice(_AXIS_POOL)
    if axis == "attribute":
        test = rng.choice(tuple(attr_names) + ("*",))
    elif axis == "namespace":
        test = rng.choice(("*", "node()"))
    else:
        roll = rng.randrange(10)
        if roll < 6:
            test = rng.choice(element_names)
        elif roll < 7:
            test = "*"
        elif roll < 8:
            test = "node()"
        elif roll < 9:
            test = "text()"
        else:
            test = "comment()"
    step = f"{axis}::{test}"
    if axis != "namespace" and rng.random() < 0.4:
        step += _random_predicate(rng, element_names, attr_names)
    return step


def random_xpath(rng: random.Random, *,
                 element_names: Sequence[str] = DOCUMENT_TAGS,
                 attr_names: Sequence[str] = DOCUMENT_ATTRS,
                 max_steps: int = 3) -> str:
    """A random XPath expression over the generic-document vocabulary.

    Produces location paths (relative, absolute and ``//``-abbreviated),
    unions, and occasional scalar wrappers (``count``/``sum``), all
    within the XPath 1.0 subset both evaluators implement.
    """
    def path() -> str:
        steps = [_random_step(rng, element_names, attr_names)
                 for _ in range(rng.randrange(1, max_steps + 1))]
        separators = [rng.choice(("/", "//")) for _ in steps[1:]]
        text = steps[0]
        for separator, step in zip(separators, steps[1:]):
            text += separator + step
        lead = rng.randrange(3)
        if lead == 0:
            return "/" + text
        if lead == 1:
            return "//" + text
        return text

    expression = path()
    if rng.random() < 0.25:
        expression = f"{expression} | {path()}"
    if rng.random() < 0.15:
        wrapper = rng.choice(("count", "string", "boolean"))
        expression = f"{wrapper}({expression})"
    return expression
