"""Differential conformance tooling for the paper's pipeline.

Three layers (see DESIGN.md §9):

* :mod:`repro.testkit.reference` — deliberately naive, cache-free
  oracles for document order, namespace resolution, XPath evaluation
  and template dispatch;
* :mod:`repro.testkit.generators` / :mod:`repro.testkit.strategies` —
  seed-replayable random workloads (GOLD models, DOM mutation scripts,
  XPath expressions) and their Hypothesis wrappers;
* :mod:`repro.testkit.differential` / :mod:`repro.testkit.pipeline` —
  the comparisons themselves, plus the end-to-end model pipeline
  harness, with a CLI entry point in :mod:`repro.testkit.run`::

      python -m repro.testkit.run --seed 0 --budget 30
"""

from .differential import (
    check_document,
    dispatch_differential,
    namespace_mismatches,
    order_key_mismatches,
    run_mutation_differential,
    warm_caches,
    xpath_differential,
)
from .generators import (
    apply_mutation,
    random_document,
    random_model,
    random_mutations,
    random_xpath,
)
from .pipeline import PipelineFailure, PipelineReport, run_pipeline
from .reference import (
    ReferenceXPathEvaluator,
    reference_evaluate,
    reference_find_rule,
    reference_lookup_namespace,
    reference_order_key,
    reference_sort,
    template_dispatch_disagreements,
)

__all__ = [
    "reference_order_key",
    "reference_sort",
    "reference_lookup_namespace",
    "ReferenceXPathEvaluator",
    "reference_evaluate",
    "reference_find_rule",
    "template_dispatch_disagreements",
    "random_model",
    "random_document",
    "random_mutations",
    "apply_mutation",
    "random_xpath",
    "order_key_mismatches",
    "namespace_mismatches",
    "check_document",
    "warm_caches",
    "run_mutation_differential",
    "xpath_differential",
    "dispatch_differential",
    "PipelineFailure",
    "PipelineReport",
    "run_pipeline",
]
