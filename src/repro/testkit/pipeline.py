"""End-to-end pipeline harness for generated GOLD models.

Drives one model through the full paper toolchain —

    builder → XML serialize → reparse → round-trip compare
            → XSD validate → XSLT publish (×2) → link check

— collecting every property violation into a :class:`PipelineReport`
instead of stopping at the first.  The stages mirror the paper's §3–§4
claims: the document validates against the generated XSD, the XML is a
faithful serialization of the model, and publishing is deterministic
(byte-stable across repeated runs) with a fully connected link graph.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from ..mdm.model import GoldModel
from ..obs.recorder import RECORDER
from ..mdm.schema_gen import gold_schema
from ..mdm.validate import validate_model
from ..mdm.xml_io import document_to_model, model_to_xml
from ..web.linkcheck import check_site
from ..web.publisher import publish_multi_page, publish_single_page
from ..xml.parser import parse
from ..xsd.validator import validate
from .differential import check_document, dispatch_differential

__all__ = ["PipelineFailure", "PipelineReport", "run_pipeline"]


@dataclass
class PipelineFailure:
    """One violated pipeline property."""

    stage: str
    detail: str

    def as_dict(self) -> dict:
        return {"check": "pipeline", "stage": self.stage,
                "detail": self.detail}


@dataclass
class PipelineReport:
    """Outcome of one full pipeline run."""

    model_name: str = ""
    stages_run: list[str] = field(default_factory=list)
    failures: list[PipelineFailure] = field(default_factory=list)
    #: Free-form stage facts (page counts, link totals, XML size).
    info: dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def fail(self, stage: str, detail: str) -> None:
        self.failures.append(PipelineFailure(stage, detail))


@contextmanager
def _stage(report: PipelineReport, name: str):
    """Record stage *name* as run and time it as a ``pipeline.*`` span."""
    report.stages_run.append(name)
    with RECORDER.span(f"pipeline.{name}"):
        yield


def run_pipeline(model: GoldModel, *, publish: bool = True,
                 check_links: bool = True,
                 differential: bool = True) -> PipelineReport:
    """Run *model* through the full toolchain and report every violation."""
    report = PipelineReport(model_name=model.name)

    with _stage(report, "semantic-validate"):
        semantic = validate_model(model)
        for issue in semantic.errors:
            report.fail("semantic-validate", issue.message)
    if not semantic.valid:
        # A semantically broken model makes every downstream failure
        # uninformative noise; stop here.
        return report

    with _stage(report, "serialize"):
        xml = model_to_xml(model)
        report.info["xml_bytes"] = len(xml.encode("utf-8"))

    with _stage(report, "reparse"):
        try:
            document = parse(xml)
        except Exception as exc:
            report.fail("reparse",
                        f"serialized model does not reparse: {exc}")
            return report

    with _stage(report, "roundtrip"):
        reread = document_to_model(document)
        if model_to_xml(reread) != xml:
            report.fail("roundtrip",
                        "model → XML → model → XML is not a fixpoint")
        if reread.summary() != model.summary():
            report.fail("roundtrip",
                        f"summary changed across round-trip: "
                        f"{model.summary()} != {reread.summary()}")

    with _stage(report, "xsd-validate"):
        # Validation may patch schema defaults into the tree, so it gets
        # its own parse; the round-trip comparison above stays byte-exact.
        validation = validate(parse(xml), gold_schema())
        for issue in validation.errors:
            report.fail("xsd-validate", f"{issue.path}: {issue.message}")

    if differential:
        with _stage(report, "differential"):
            for mismatch in check_document(document):
                report.fail("differential",
                            f"{mismatch['check']} disagrees at "
                            f"{mismatch['node']}")
            for record in dispatch_differential(document):
                report.fail("differential",
                            f"template dispatch ({record['stylesheet']}, "
                            f"mode {record['mode']!r}) disagrees at "
                            f"{record['node']}")

    if publish:
        from ..web.publisher import PROFILE_PAGE

        for mode, publisher in (("multi", publish_multi_page),
                                ("single", publish_single_page)):
            with _stage(report, f"publish-{mode}"):
                site = publisher(model)
                again = publisher(model)
            # The profile page (present only while the recorder is on)
            # reports timings, which legitimately differ between the two
            # publishes; every model page must still be byte-stable.
            if {k: v for k, v in site.pages.items() if k != PROFILE_PAGE} \
                    != {k: v for k, v in again.pages.items()
                        if k != PROFILE_PAGE}:
                changed = sorted(
                    name for name in set(site.pages) | set(again.pages)
                    if name != PROFILE_PAGE and
                    site.pages.get(name) != again.pages.get(name))
                report.fail(f"publish-{mode}",
                            f"re-publish is not byte-stable: {changed}")
            report.info[f"pages_{mode}"] = site.page_count
            if check_links:
                links = check_site(site)
                report.info[f"links_{mode}"] = links.total_links
                for page, href in links.broken_pages:
                    report.fail(f"publish-{mode}",
                                f"broken link {href!r} on {page}")
                for page, href in links.broken_anchors:
                    report.fail(f"publish-{mode}",
                                f"broken anchor {href!r} on {page}")
                for orphan in links.orphans:
                    report.fail(f"publish-{mode}",
                                f"orphan page {orphan!r} (unreachable "
                                f"from index.html)")

    return report
