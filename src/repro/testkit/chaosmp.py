"""Worker-kill chaos for the pre-fork server.

Usage::

    python -m repro.testkit.chaosmp --seed 0 --budget 30 --workers 2

The single-process chaos harness (:mod:`repro.testkit.chaos`) injects
*faults*; this harness injects *death*.  Every round SIGKILLs a random
worker of a live :class:`~repro.server.workers.MultiWorkerServer`
mid-traffic — no fault plan is active, the kill IS the chaos — and
checks the fleet-level invariants:

* **no hangs, no torn bytes**: every in-flight request either completes
  with bytes byte-identical to some expected version (oracles are the
  same offline renderings the single-process harness uses) or dies with
  a *clean* transport error (connection reset by the dying worker); a
  client read timeout is always a violation;
* **survivors stay correct**: requests landing on surviving workers
  keep serving current-version bytes throughout the storm;
* **respawn is warm**: the supervisor forks a replacement under the
  same worker id, and the replacement serves the site straight from the
  on-disk artifact store — its site cache reports zero rebuilds and at
  least one disk hit (it never re-renders what the fleet already
  rendered);
* **recovery is total**: with the fleet whole again, every model byte,
  site page, and OLAP query result is current, unmarked, and
  byte-identical to the offline oracle, and ``/metrics`` reports the
  full worker count again.

Rounds are deterministic per ``(seed, index)``; violations are written
as JSON reproducers replayable with ``--seed S --start R --rounds 1``.
"""

from __future__ import annotations

import argparse
import hashlib
import http.client
import json
import os
import random
import sys
import threading
import time

from ..faults import FAULTS
from ..server import MultiWorkerServer
from .chaos import (
    CHAOS_DATASET,
    ModelTracker,
    _query_string,
    default_trackers,
    parse_metrics,
)
from .run import _write_reproducers

__all__ = ["run_round", "main"]


def _sha(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def round_rng(seed: int, index: int) -> random.Random:
    return random.Random(f"chaosmp:{seed}:{index}")


def _request(port: int, method: str, path: str,
             body: bytes | None = None,
             timeout_s: float = 30.0) -> tuple[int, bytes, dict]:
    """One exchange on a fresh connection (re-rolls the worker)."""
    conn = http.client.HTTPConnection("127.0.0.1", port,
                                      timeout=timeout_s)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        headers = {key.lower(): value
                   for key, value in response.getheaders()}
        return response.status, response.read(), headers
    finally:
        conn.close()


class _HttpStore:
    """Adapter so :class:`ModelTracker` flips versions over the wire.

    The single-process harness pokes ``server.app.store`` directly; here
    the stores live in forked workers, so a flip is an HTTP PUT — which
    also exercises the cross-worker publish path every round.
    """

    def __init__(self, port: int) -> None:
        self.port = port

    def put(self, name: str, xml_bytes: bytes) -> None:
        status, body, _ = _request(
            self.port, "PUT", f"/models/{name}", xml_bytes)
        assert status in (200, 201), (status, body[:200])


def _materialize(port: int, tracker: ModelTracker) -> list[dict]:
    """Serve every current page once so its artifact reaches the store.

    Run before the kill: the respawn-warm invariant (zero rebuilds in
    the replacement) is only meaningful once the current version's
    artifacts exist on disk for the replacement to adopt.
    """
    failures: list[dict] = []
    for page, expected in sorted(tracker.current_pages.items()):
        path = f"/site/{tracker.name}/{page}"
        status, body, _ = _request(port, "GET", path)
        if status != 200 or body != expected:
            failures.append({
                "check": "materialize", "model": tracker.name,
                "path": path,
                "detail": f"status {status} sha {_sha(body)[:12]} "
                          f"want {_sha(expected)[:12]}"})
    return failures


def _check_body(kind: str, path: str, status: int, body: bytes,
                tracker: ModelTracker) -> dict | None:
    """Hammer invariants for one completed exchange (no fault plan:
    the only legal non-200 is an overload shed)."""
    if status == 503:
        return None
    if status != 200:
        return {"check": "unexpected-status", "path": path,
                "detail": f"status {status}"}
    if kind == "model":
        if body not in tracker.xml_history:
            return {"check": "torn-model-bytes", "path": path,
                    "detail": f"unexpected sha {_sha(body)[:12]}"}
        return None
    digest = _sha(body)
    expected = tracker.query_shas if kind == "query" \
        else tracker.page_shas
    if digest not in expected:
        return {"check": f"torn-{kind}-bytes", "path": path,
                "detail": f"unexpected sha {digest[:12]}"}
    return None


def _hammer(server: MultiWorkerServer, trackers: list[ModelTracker],
            seed: int, index: int, clients: int, requests: int,
            victim: int) -> tuple[list[dict], dict]:
    """Concurrent readers on fresh connections; mid-phase, SIGKILL the
    victim worker.  Requests in flight on the dying worker may fail
    with a clean transport error — never a hang, never torn bytes."""
    failures: list[dict] = []
    counts = {"requests": 0, "drops": 0, "shed": 0}
    lock = threading.Lock()

    def worker(worker_id: int) -> None:
        rng = random.Random(f"chaosmp:{seed}:{index}:client{worker_id}")
        for _ in range(requests):
            tracker = rng.choice(trackers)
            kind = rng.choice(["model", "page", "page", "query"])
            if kind == "model":
                path = f"/models/{tracker.name}"
            elif kind == "query":
                params = rng.choice(tracker.queries)
                path = (f"/olap/{tracker.name}/query?"
                        f"{_query_string(**params)}")
            else:
                page = rng.choice(sorted(tracker.current_pages))
                path = f"/site/{tracker.name}/{page}"
            record: dict | None = None
            try:
                status, body, _ = _request(server.port, "GET", path,
                                           timeout_s=30.0)
            except TimeoutError:
                record = {"check": "hung-connection", "path": path,
                          "detail": "client read timed out"}
            except (ConnectionError, http.client.HTTPException,
                    OSError):
                # Clean drop: the kernel reset the connection when the
                # victim died mid-exchange.  Legal during a kill round
                # (counted, not a violation) — unlike a hang above.
                with lock:
                    counts["drops"] += 1
            else:
                record = _check_body(kind, path, status, body, tracker)
                if status == 503:
                    with lock:
                        counts["shed"] += 1
            with lock:
                counts["requests"] += 1
                if record is not None:
                    failures.append(record)

    threads = [threading.Thread(target=worker, args=(worker_id,))
               for worker_id in range(clients)]
    for thread in threads:
        thread.start()
    time.sleep(0.05)
    shot = server.kill_worker(victim)
    for thread in threads:
        thread.join(timeout=90)
        if thread.is_alive():
            failures.append({"check": "hung-worker",
                             "detail": "hammer client did not finish"})
    counts["shot_pid"] = shot
    return failures, counts


def _await_respawn(server: MultiWorkerServer, shot: int,
                   respawns_before: int,
                   timeout_s: float = 30.0) -> dict | None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        pids = server.worker_pids()
        if (len(pids) == server.workers and shot not in pids
                and server.respawns > respawns_before):
            return None
        time.sleep(0.05)
    return {"check": "no-respawn",
            "detail": f"pids {server.worker_pids()} after {timeout_s}s "
                      f"(shot {shot}, respawns {server.respawns})"}


def _respawn_warm_check(server: MultiWorkerServer, victim: int,
                        shot: int, tracker: ModelTracker,
                        timeout_s: float = 30.0) -> dict | None:
    """The replacement worker must serve from the artifact store: its
    site cache shows zero rebuilds and (once a site request lands on
    it) at least one disk hit.  A single rebuild is an immediate
    violation — it re-rendered what the fleet already rendered."""
    page = sorted(tracker.current_pages)[0]
    deadline = time.monotonic() + timeout_s
    seen: dict | None = None
    while time.monotonic() < deadline:
        # Fresh connections re-roll the reuseport hash until both the
        # site request and the stats scrape land on the replacement.
        _request(server.port, "GET", f"/site/{tracker.name}/{page}")
        status, body, _ = _request(server.port, "GET", "/stats")
        if status != 200:
            continue
        payload = json.loads(body)
        if payload["worker"]["id"] != victim or \
                payload["worker"]["pid"] == shot:
            continue
        seen = payload
        site = payload["site_cache"]
        if site["rebuilds"] > 0:
            return {"check": "respawn-rerendered",
                    "detail": f"replacement pid "
                              f"{payload['worker']['pid']} rebuilt "
                              f"{site['rebuilds']} time(s)", "site": site}
        if site["disk_hits"] >= 1:
            return None
    detail = "replacement never answered /stats" if seen is None else \
        f"no disk hit within {timeout_s}s: {seen['site_cache']}"
    return {"check": "respawn-not-warm", "detail": detail}


def _recovery_sweep(server: MultiWorkerServer,
                    trackers: list[ModelTracker],
                    passes: int = 2) -> list[dict]:
    """Fleet whole again: several passes of everything (fresh
    connections spread them across every worker, replacement included)
    must serve current, unmarked, byte-identical responses."""
    failures: list[dict] = []
    for _ in range(passes):
        for tracker in trackers:
            status, body, _ = _request(
                server.port, "GET", f"/models/{tracker.name}")
            if status != 200 or body != tracker.current_xml:
                failures.append({
                    "check": "recovery-model", "model": tracker.name,
                    "detail": f"status {status}"})
            for page, expected in sorted(tracker.current_pages.items()):
                path = f"/site/{tracker.name}/{page}"
                status, body, headers = _request(server.port, "GET", path)
                stale = headers.get("x-goldcase-stale")
                if status != 200 or body != expected or stale:
                    failures.append({
                        "check": "recovery-page", "model": tracker.name,
                        "page": page,
                        "detail": f"status {status} stale={stale} "
                                  f"sha {_sha(body)[:12]} "
                                  f"want {_sha(expected)[:12]}"})
            for encoded, expected in sorted(
                    tracker.current_queries.items()):
                path = f"/olap/{tracker.name}/query?{encoded}"
                status, body, headers = _request(server.port, "GET", path)
                stale = headers.get("x-goldcase-stale")
                if status != 200 or body != expected or stale:
                    failures.append({
                        "check": "recovery-query", "model": tracker.name,
                        "query": encoded,
                        "detail": f"status {status} stale={stale} "
                                  f"sha {_sha(body)[:12]} "
                                  f"want {_sha(expected)[:12]}"})
    return failures


def _fleet_metrics_check(server: MultiWorkerServer,
                         timeout_s: float = 30.0) -> dict | None:
    """/metrics must report the full fleet again after the respawn."""
    wanted = float(server.workers)
    deadline = time.monotonic() + timeout_s
    last: dict[str, float] = {}
    while time.monotonic() < deadline:
        status, body, _ = _request(server.port, "GET", "/metrics")
        if status == 200:
            try:
                last = parse_metrics(body.decode("utf-8"))
            except ValueError as exc:
                return {"check": "metrics-unparseable",
                        "detail": str(exc)}
            if last.get("goldcase_fleet_workers") == wanted:
                return None
        time.sleep(0.1)
    return {"check": "fleet-metrics",
            "detail": f"goldcase_fleet_workers never returned to "
                      f"{wanted}: {last.get('goldcase_fleet_workers')}"}


def run_round(server: MultiWorkerServer, trackers: list[ModelTracker],
              seed: int, index: int, *, clients: int = 6,
              requests: int = 15) -> tuple[list[dict], dict]:
    """One kill round; returns (failure records, counters)."""
    rng = round_rng(seed, index)
    failures: list[dict] = []
    store = _HttpStore(server.port)

    # Mutate (fleet whole): one model advances a version over HTTP,
    # then its artifacts are materialized so the respawn can be warm.
    target = rng.choice(trackers)
    target.advance(store)
    failures.extend(_materialize(server.port, target))

    # Hammer + mid-phase SIGKILL of a random worker.
    victim = rng.randrange(server.workers)
    respawns_before = server.respawns
    hammered, counts = _hammer(server, trackers, seed, index,
                               clients, requests, victim)
    failures.extend(hammered)

    # Respawn: same worker id, new pid, warmed from the store.
    problem = _await_respawn(server, counts["shot_pid"], respawns_before)
    if problem is not None:
        failures.append(problem)
    else:
        problem = _respawn_warm_check(
            server, victim, counts["shot_pid"], target)
        if problem is not None:
            failures.append(problem)
        failures.extend(_recovery_sweep(server, trackers))
        problem = _fleet_metrics_check(server)
        if problem is not None:
            failures.append(problem)

    counts["victim"] = victim
    for record in failures:
        record.setdefault("seed", seed)
        record.setdefault("round", index)
        record.setdefault("victim", victim)
    return failures, counts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit.chaosmp",
        description="Worker-kill chaos: SIGKILL random workers of a "
                    "live pre-fork fleet under traffic.")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; round r uses RNG(chaosmp:seed:r)")
    parser.add_argument("--budget", type=float, default=30.0,
                        help="time budget in seconds (default 30)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="run exactly N rounds, ignoring --budget")
    parser.add_argument("--start", type=int, default=0,
                        help="first round index (replay)")
    parser.add_argument("--workers", type=int, default=2,
                        help="fleet width (default 2)")
    parser.add_argument("--clients", type=int, default=6,
                        help="concurrent clients per round (default 6)")
    parser.add_argument("--requests", type=int, default=15,
                        help="requests per client per round (default 15)")
    parser.add_argument("--store-dir", default=None,
                        help="build-store directory (default: a "
                             "fresh temporary directory)")
    parser.add_argument("--failures-dir", default="chaosmp-failures",
                        help="directory for JSON reproducers")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if not hasattr(os, "fork"):
        print("chaosmp: SKIP — platform has no fork()")
        return 0

    started = time.monotonic()
    FAULTS.deactivate()  # oracles must render fault-free
    trackers = default_trackers()
    all_failures: list[dict] = []
    totals = {"requests": 0, "drops": 0, "shed": 0, "kills": 0}
    completed = 0
    index = args.start

    import tempfile
    store_dir = args.store_dir or tempfile.mkdtemp(
        prefix="goldcase-chaosmp-")
    with MultiWorkerServer(store_dir, workers=args.workers,
                           dataset=CHAOS_DATASET) as server:
        store = _HttpStore(server.port)
        for tracker in trackers:
            tracker.bootstrap(store)
            failures = _materialize(server.port, tracker)
            assert not failures, failures
        while True:
            if args.rounds is not None:
                if completed >= args.rounds:
                    break
            elif completed > 0 and \
                    time.monotonic() - started >= args.budget:
                break
            failures, counts = run_round(
                server, trackers, args.seed, index,
                clients=args.clients, requests=args.requests)
            completed += 1
            totals["requests"] += counts["requests"]
            totals["drops"] += counts["drops"]
            totals["shed"] += counts["shed"]
            totals["kills"] += 1
            if failures:
                all_failures.extend(failures)
                print(f"round {index}: {len(failures)} violation(s)",
                      file=sys.stderr)
                for record in failures[:5]:
                    print(f"  {json.dumps(record, sort_keys=True)}",
                          file=sys.stderr)
            elif not args.quiet:
                print(f"round {index}: ok — killed worker "
                      f"{counts['victim']} (pid {counts['shot_pid']}), "
                      f"{counts['requests']} requests, "
                      f"{counts['drops']} clean drops, "
                      f"{counts['shed']} shed")
            index += 1

    elapsed = time.monotonic() - started
    summary = (f"{completed} rounds, {totals['kills']} kills, "
               f"{totals['requests']} requests, {totals['drops']} "
               f"clean drops, {totals['shed']} shed, {elapsed:.1f}s")
    if all_failures:
        bad = sorted({record["round"] for record in all_failures})
        path = _write_reproducers(
            args.failures_dir, args.seed, all_failures)
        print(f"chaosmp: FAIL — {len(all_failures)} violation(s) "
              f"across rounds {bad}; {summary}; reproducers: {path}")
        print(f"replay one with: python -m repro.testkit.chaosmp "
              f"--seed {args.seed} --start {bad[0]} --rounds 1")
        return 1
    print(f"chaosmp: OK — 0 violations; {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
