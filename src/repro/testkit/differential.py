"""Differential checks: optimized engine vs the reference oracles.

Each function returns a list of failure records (dicts); an empty list
means the optimized implementation agreed with the cache-free oracle
everywhere.  Records are plain JSON-serializable data so the CLI can
dump them as reproducers.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..xml.dom import Document, Element, NamespaceNode, Node
from ..xpath.errors import XPathError
from ..xpath.evaluator import evaluate
from .generators import apply_mutation
from .reference import (
    describe_node,
    iter_tree_nodes,
    reference_evaluate,
    reference_lookup_namespace,
    reference_order_key,
    reference_sort,
    template_dispatch_disagreements,
)

__all__ = [
    "order_key_mismatches",
    "namespace_mismatches",
    "check_document",
    "warm_caches",
    "run_mutation_differential",
    "xpath_differential",
    "dispatch_differential",
    "sort_differential",
    "compiled_differential",
    "incremental_differential",
    "GENERIC_DIFFERENTIAL_XSL",
]

#: Prefixes probed on every element during namespace differentials (the
#: generator's vocabulary plus the always-bound ``xml``).
_PROBE_PREFIXES = ("", "p", "q", "xml")


def order_key_mismatches(root: Node) -> list[dict]:
    """Compare cached vs recomputed order keys for every node under *root*."""
    mismatches = []
    for node in iter_tree_nodes(root):
        optimized = node.document_order_key()
        reference = reference_order_key(node)
        if optimized != reference:
            mismatches.append({
                "check": "document-order-key",
                "node": describe_node(node),
                "optimized": list(optimized),
                "reference": list(reference),
            })
    return mismatches


def namespace_mismatches(root: Node,
                         prefixes: Sequence[str] = _PROBE_PREFIXES
                         ) -> list[dict]:
    """Compare cached vs recomputed namespace resolution per element."""
    mismatches = []
    for node in iter_tree_nodes(root, attributes=False):
        if not isinstance(node, Element):
            continue
        probe = set(prefixes) | set(node.namespace_declarations)
        for prefix in sorted(probe):
            optimized = node.lookup_namespace(prefix)
            reference = reference_lookup_namespace(node, prefix)
            if optimized != reference:
                mismatches.append({
                    "check": "namespace-lookup",
                    "node": describe_node(node),
                    "prefix": prefix,
                    "optimized": optimized,
                    "reference": reference,
                })
    return mismatches


def check_document(root: Node) -> list[dict]:
    """All per-document differential checks at once."""
    return order_key_mismatches(root) + namespace_mismatches(root)


def warm_caches(root: Node) -> None:
    """Populate every order-key and namespace cache under *root*.

    Mutation differentials call this *before* each mutation so any
    missing invalidation leaves a provably stale cache behind rather
    than an innocently empty one.
    """
    for node in iter_tree_nodes(root):
        node.document_order_key()
        if isinstance(node, Element):
            for prefix in _PROBE_PREFIXES:
                node.lookup_namespace(prefix)


def run_mutation_differential(documents: Sequence[Document],
                              operations: Sequence[tuple[str, int, int, int]]
                              ) -> list[dict]:
    """Apply a mutation script, re-checking every document after each op.

    Caches are deliberately warmed before every mutation: the check is
    not "does the engine compute correct keys" (that is a single-shot
    property) but "does every mutating method invalidate what it must".
    """
    failures = []
    for step, op in enumerate(operations):
        for document in documents:
            warm_caches(document)
        description = apply_mutation(documents, op)
        for index, document in enumerate(documents):
            for mismatch in check_document(document):
                mismatch.update({
                    "step": step,
                    "op": list(op),
                    "mutation": description,
                    "document": index,
                })
                failures.append(mismatch)
    return failures


def _result_token(value: object) -> object:
    """A comparable token for one XPath result item.

    Namespace nodes are materialized fresh on every axis traversal, so
    identity comparison would always fail for them; they compare by
    (owner, prefix, uri) instead.
    """
    if isinstance(value, NamespaceNode):
        return ("namespace", id(value.owner), value.prefix_name, value.uri)
    return id(value)


def xpath_differential(document: Document,
                       expressions: Sequence[str]) -> list[dict]:
    """Evaluate each expression with both evaluators and compare."""
    failures = []
    for expression in expressions:
        try:
            optimized = evaluate(expression, document)
            optimized_error = None
        except XPathError as exc:
            optimized, optimized_error = None, type(exc).__name__
        try:
            reference = reference_evaluate(expression, document)
            reference_error = None
        except XPathError as exc:
            reference, reference_error = None, type(exc).__name__

        if optimized_error or reference_error:
            if optimized_error != reference_error:
                failures.append({
                    "check": "xpath",
                    "expression": expression,
                    "optimized": optimized_error,
                    "reference": reference_error,
                })
            continue

        if isinstance(optimized, list) and isinstance(reference, list):
            agree = [_result_token(n) for n in optimized] == \
                [_result_token(n) for n in reference]
        elif isinstance(optimized, float) and isinstance(reference, float):
            agree = optimized == reference or (
                math.isnan(optimized) and math.isnan(reference))
        else:
            agree = optimized == reference
        if not agree:
            failures.append({
                "check": "xpath",
                "expression": expression,
                "optimized": _describe_value(optimized),
                "reference": _describe_value(reference),
            })
    return failures


def _describe_value(value: object) -> object:
    if isinstance(value, list):
        return [describe_node(n) for n in value]
    return value


def dispatch_differential(document: Document) -> list[dict]:
    """Indexed vs linear template dispatch, over both paper stylesheets."""
    from ..web.publisher import _transformer
    from ..web.stylesheets import MULTI_PAGE_XSL, SINGLE_PAGE_XSL

    failures = []
    for name, text in (("multi", MULTI_PAGE_XSL),
                       ("single", SINGLE_PAGE_XSL)):
        for record in template_dispatch_disagreements(
                _transformer(text), document):
            record.update({"check": "template-dispatch", "stylesheet": name})
            failures.append(record)
    return failures


def sort_differential(root: Node, shuffles: int,
                      rng) -> list[dict]:
    """Shuffle the node list and compare both document-order sorts."""
    from ..xml.dom import sort_document_order

    nodes = list(iter_tree_nodes(root))
    failures = []
    for _ in range(shuffles):
        shuffled = list(nodes)
        rng.shuffle(shuffled)
        optimized = sort_document_order(shuffled)
        reference = reference_sort(shuffled)
        if [id(n) for n in optimized] != [id(n) for n in reference]:
            failures.append({
                "check": "sort-document-order",
                "optimized": [describe_node(n) for n in optimized],
                "reference": [describe_node(n) for n in reference],
            })
    return failures


def _page_divergences(incremental_pages: dict, cold_pages: dict,
                      skip: frozenset) -> list[dict]:
    """Byte-level divergence records between two published sites."""
    records = []
    for href in sorted((set(incremental_pages) | set(cold_pages)) - skip):
        left = incremental_pages.get(href)
        right = cold_pages.get(href)
        if left == right:
            continue
        record = {"page": href}
        if left is None or right is None:
            record["missing_in"] = "incremental" if left is None else "cold"
        else:
            offset = _first_divergence(left, right)
            record.update({
                "offset": offset,
                "incremental": left[offset:offset + 120],
                "cold": right[offset:offset + 120],
            })
        records.append(record)
    return records


def incremental_differential(model, edits: Sequence[tuple[str, int, int, int]]
                             ) -> list[dict]:
    """Replay an edit script, proving every incremental republish
    byte-identical to a cold publish of the same model.

    Chained deliberately: each step's incremental output (bytes *and*
    refreshed dependency index) becomes the next step's baseline, so a
    single page that is stale-but-plausible poisons every later step —
    exactly how a CASE tool session would compound the bug.  Odd steps
    round-trip the index through its JSON form first — the dotfile
    scenario — so both diff paths run in every script: the in-memory
    model diff (with its in-place DOM patching) on even steps, the
    serialized-baseline document diff on odd ones.  The first record
    for a step names the edit and the diverging page, which is the
    whole reproducer: ``(seed, iteration, step)`` replays it.
    """
    from ..web.incremental import (
        DependencyIndex,
        publish_with_index,
        republish_incremental,
    )
    from ..web.publisher import PROFILE_PAGE, publish_multi_page
    from .generators import apply_model_edit

    # The profile page is additive instrumentation (timings differ run
    # to run by design); everything else must match to the byte.
    skip = frozenset({PROFILE_PAGE})
    failures: list[dict] = []

    site, index = publish_with_index(model)
    for record in _page_divergences(dict(site.pages),
                                    dict(publish_multi_page(model).pages),
                                    skip):
        record.update({"check": "tracked-publish", "model": model.name})
        failures.append(record)

    current = model
    previous_pages = dict(site.pages)
    for step, op in enumerate(edits):
        current, description = apply_model_edit(current, op)
        if step % 2 == 1:
            index = DependencyIndex.from_json(index.to_json())
        new_site, index, info = republish_incremental(
            current, previous_pages, index)
        cold = publish_multi_page(current)
        for record in _page_divergences(dict(new_site.pages),
                                        dict(cold.pages), skip):
            record.update({
                "check": "incremental-byte-identity",
                "step": step,
                "op": list(op),
                "edit": description,
                "mode": info["mode"],
                "fallback_reason": info["reason"],
                "model": current.name,
            })
            failures.append(record)
        previous_pages = dict(new_site.pages)
    return failures


#: Stylesheets exercised by :func:`compiled_differential` on *generic*
#: documents (the mutation pool), where the shipped GOLD sheets would
#: match nothing: an elementwise identity, an HTML tree walk, and a
#: text extraction — one per output method the streaming serializer
#: implements.
_XSLNS = 'xmlns:xsl="http://www.w3.org/1999/XSL/Transform"'
GENERIC_DIFFERENTIAL_XSL = {
    "identity-xml": f"""<xsl:stylesheet version="1.0" {_XSLNS}>
      <xsl:output method="xml" omit-xml-declaration="yes"/>
      <xsl:template match="@* | node()">
        <xsl:copy><xsl:apply-templates select="@* | node()"/></xsl:copy>
      </xsl:template>
    </xsl:stylesheet>""",
    "walk-html": f"""<xsl:stylesheet version="1.0" {_XSLNS}>
      <xsl:output method="html"/>
      <xsl:template match="/">
        <ul><xsl:apply-templates select="*"/></ul>
      </xsl:template>
      <xsl:template match="*">
        <li><b><xsl:value-of select="name()"/></b>
          <xsl:for-each select="@*"> <i>{{name()}}={{.}}</i></xsl:for-each>
          <xsl:if test="*"><ul><xsl:apply-templates select="*"/></ul></xsl:if>
        </li>
      </xsl:template>
    </xsl:stylesheet>""",
    "values-text": f"""<xsl:stylesheet version="1.0" {_XSLNS}>
      <xsl:output method="text"/>
      <xsl:template match="/"><xsl:for-each select="//*">
        <xsl:value-of select="name()"/>=<xsl:value-of select="."/>
      </xsl:for-each></xsl:template>
    </xsl:stylesheet>""",
}


def _first_divergence(compiled: str, interpreted: str) -> int:
    for index, (left, right) in enumerate(zip(compiled, interpreted)):
        if left != right:
            return index
    return min(len(compiled), len(interpreted))


def _shipped_stylesheets(document: Document) -> list[tuple]:
    """(name, text, resolver, params) for every shipped stylesheet."""
    from ..web.stylesheets import (
        MULTI_PAGE_XSL,
        PRESENTATION_XSL,
        SINGLE_PAGE_XSL,
        stylesheet_resolver,
    )
    from ..web.xslfo import MODEL_FO_XSL

    entries = [
        ("multi", MULTI_PAGE_XSL, stylesheet_resolver, None),
        ("single", SINGLE_PAGE_XSL, stylesheet_resolver, None),
        ("fo", MODEL_FO_XSL, stylesheet_resolver, None),
    ]
    fact = next((element for element in document.iter_elements()
                 if element.name == "factclass"), None)
    if fact is not None and fact.get_attribute("id"):
        entries.append(("presentation", PRESENTATION_XSL,
                        stylesheet_resolver,
                        {"factclass": fact.get_attribute("id")}))
    return entries


def compiled_differential(document: Document, *,
                          stylesheets: dict | None = None) -> list[dict]:
    """Compiled streaming renderer vs the DOM interpreter, byte-for-byte.

    With *stylesheets* omitted, *document* is taken to be a GOLD model
    document and every shipped stylesheet runs over it (the
    presentation sheet with the first fact class as its parameter);
    pass :data:`GENERIC_DIFFERENTIAL_XSL` for arbitrary documents.
    The compiled path must also actually engage — a silent interpreter
    fallback on a shipped sheet is itself a failure, because it would
    hollow out every other record this function could produce.
    """
    from ..xslt import CompiledTransformer, compile_stylesheet

    if stylesheets is None:
        entries = _shipped_stylesheets(document)
    else:
        entries = [(name, text, None, None)
                   for name, text in stylesheets.items()]
    failures = []
    for name, text, resolver, params in entries:
        transformer = CompiledTransformer(
            compile_stylesheet(text, resolver=resolver))
        rendered = transformer.render(document, params)
        reference = transformer.transform(document, params).serialize_all()
        if not rendered.used_compiled:
            failures.append({
                "check": "compiled-fallback", "stylesheet": name,
                "error": transformer._compile_error,
            })
            continue
        for href in sorted(set(rendered.pages) | set(reference)):
            compiled_page = rendered.pages.get(href)
            interpreted_page = reference.get(href)
            if compiled_page == interpreted_page:
                continue
            record = {
                "check": "compiled-transform", "stylesheet": name,
                "page": href or "<principal>",
            }
            if compiled_page is None or interpreted_page is None:
                record["missing_in"] = "compiled" \
                    if compiled_page is None else "interpreted"
            else:
                offset = _first_divergence(compiled_page, interpreted_page)
                record.update({
                    "offset": offset,
                    "compiled": compiled_page[offset:offset + 120],
                    "interpreted": interpreted_page[offset:offset + 120],
                })
            failures.append(record)
        if list(rendered.messages) != list(
                transformer.transform(document, params).messages):
            failures.append({"check": "compiled-messages",
                             "stylesheet": name})
    return failures
