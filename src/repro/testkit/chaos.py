"""Fault-injection chaos harness for the model-repository server.

Usage::

    python -m repro.testkit.chaos --seed 0 --budget 30

Boots a real :class:`~repro.server.httpd.ModelServer` and replays
seed-derived rounds against it.  Each round is determined by
``(seed, index)`` and has four beats:

1. **Mutate** (faults off): one model advances a version; expected page
   bytes for the new version are computed offline first, so every byte
   the server may legitimately serve is known in advance.
2. **Coalesce check** (faults off): a barrier burst against the stale
   page must trigger exactly one rebuild and one shared body.
3. **Hammer** (faults on): a randomized :class:`FaultPlan` — rebuild
   failures, per-page render failures, incremental-diff failures,
   OLAP execution/generation failures, transport delays and drops — is
   activated while concurrent :class:`RepositoryClient` workers fetch
   models, pages, OLAP query results, and health, and a mid-phase
   version flip forces rebuilds to happen *under* the faults.  Warm rebuilds route through the incremental republisher
   (the cache already holds the previous build plus its dependency
   index), so the flip exercises the diff path specifically.
4. **Recover** (faults off): every resource must come back fresh,
   current, and unmarked.

Invariants checked on every response:

* no hung connections — a client socket timeout is always a violation;
* no 5xx the active fault plan cannot explain;
* served bytes are never torn: every 200 body — page *or* OLAP query
  result — is byte-identical to an expected rendering of some version,
  and after recovery it is the *current* version with no staleness
  marker;
* rebuild coalescing holds (one build per burst);
* the telemetry surface stays up: ``/metrics`` is scraped mid-storm
  and after recovery, must stay serveable and parseable, and its
  ``_total`` counters must never step backwards across scrapes (the
  rolling ring may reclaim buckets, the lifetime counters may not);
  ``/dashboard`` must render once faults are off.

Violations are written as JSON reproducers (like ``repro.testkit.run``)
to ``--failures-dir`` and can be replayed with
``--seed S --start R --rounds 1``.  Each response-level record carries
the ``X-Goldcase-Request-Id`` of the offending exchange, so a failure
can be joined against the server's access log (``--access-log``).
"""

from __future__ import annotations

import argparse
import hashlib
import http.client
import json
import os
import random
import sys
import threading
import time

from urllib.parse import urlencode

from ..faults import FAULTS, FaultPlan
from ..mdm import model_to_xml, sales_model, two_facts_model
from ..olap.service import DatasetConfig, OlapService
from ..server import ModelRepositoryApp, ModelServer
from ..web import RepositoryClient, RetriesExhausted, RetryPolicy

__all__ = ["ModelTracker", "parse_metrics", "run_round", "main"]

#: Points a random plan may draw from, with the modes that keep the
#: server *degradable*: store faults are excluded because the harness
#: flips versions through the store directly and must know they landed.
FAULT_MENU = (
    ("cache.rebuild", "raise"),
    ("cache.rebuild", "delay"),
    ("publish.page", "raise"),
    ("publish.diff", "raise"),
    ("xslt.transform", "raise"),
    ("olap.execute", "raise"),
    ("olap.execute", "delay"),
    ("olap.generate", "raise"),
    ("httpd.read", "delay"),
    ("httpd.write", "delay"),
    ("httpd.read", "raise"),
    ("httpd.write", "raise"),
)

#: Points whose ``raise`` mode surfaces as a dropped connection rather
#: than an HTTP status — the only sanctioned cause of transport errors.
TRANSPORT_POINTS = frozenset({"httpd.read", "httpd.write"})

#: Points whose ``raise`` mode may surface as a 500 (cold build) —
#: normally absorbed into a stale 200, but never guaranteed to be.
BUILD_POINTS = frozenset({"cache.rebuild", "publish.page",
                          "publish.diff", "xslt.transform"})

#: Points whose ``raise`` mode may surface as a 500 on query paths
#: (cold materialization) — warm queries degrade to a marked-stale 200.
#: ``xslt.transform`` belongs here too: the XML rendering of every
#: materialization runs through the same XSLT engine as the site pages.
OLAP_POINTS = frozenset({"olap.execute", "olap.generate",
                         "xslt.transform"})

#: Shrunken synthetic datasets so per-version oracle precomputation and
#: under-fault regeneration stay cheap; the live server under test and
#: the offline oracle renderer must share this config byte-for-byte.
CHAOS_DATASET = DatasetConfig(members_per_level=4, rows_per_fact=300)


def _sha(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def parse_metrics(text: str) -> dict[str, float]:
    """Prometheus text exposition → ``{series-with-labels: value}``.

    Raises ValueError on a malformed sample line, which the probe
    reports as a violation — /metrics must stay parseable mid-storm.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        if not key:
            raise ValueError(f"malformed metrics line {line!r}")
        samples[key] = float(value)
    return samples


def _metrics_violations(previous: dict[str, float],
                        current: dict[str, float]) -> list[str]:
    """Counters that stepped backwards (or vanished) between scrapes."""
    problems = []
    for key, before in previous.items():
        if not key.startswith("goldcase_") or "_total" not in key:
            continue
        after = current.get(key)
        if after is None:
            problems.append(f"{key} vanished (was {before})")
        elif after < before:
            problems.append(f"{key} went backwards: {before} -> {after}")
    return problems


def _metrics_probe(server: "ModelServer", plan: FaultPlan | None,
                   state: dict, *, phase: str) -> list[dict]:
    """Scrape ``/metrics`` and apply the telemetry invariants.

    *state* carries the previous scrape's samples across calls (and
    rounds), so monotonicity is checked over the whole run.  During the
    hammer phase the scrape rides a retrying client; a dropped scrape
    is only tolerated when the active plan contains transport
    ``raise`` faults — the only sanctioned cause of drops.
    """
    failures: list[dict] = []
    policy = RetryPolicy(retries=2, base_delay_s=0.01, max_delay_s=0.2)
    with RepositoryClient(server.host, server.port, timeout_s=10.0,
                          policy=policy) as client:
        try:
            response = client.request("GET", "/metrics")
        except RetriesExhausted as exc:
            transport_raises = plan is not None and any(
                spec.mode == "raise" and point in TRANSPORT_POINTS
                for point, spec in plan.specs.items())
            if not transport_raises:
                failures.append({"check": "metrics-unscrapeable",
                                 "phase": phase, "detail": str(exc)})
            return failures
    if response.status != 200:
        failures.append({"check": "metrics-status", "phase": phase,
                         "request_id": response.request_id,
                         "detail": f"status {response.status}"})
        return failures
    try:
        samples = parse_metrics(response.body.decode("utf-8"))
    except ValueError as exc:
        failures.append({"check": "metrics-unparseable", "phase": phase,
                         "request_id": response.request_id,
                         "detail": str(exc)})
        return failures
    previous = state.get("samples")
    if previous is not None:
        for problem in _metrics_violations(previous, samples):
            failures.append({"check": "metrics-monotonicity",
                             "phase": phase,
                             "request_id": response.request_id,
                             "detail": problem})
    state["samples"] = samples
    return failures


def _expected_pages(xml_bytes: bytes) -> dict[str, bytes]:
    """Render the site for *xml_bytes* offline: the oracle bytes.

    Must run with faults deactivated — the offline app shares the
    process-global registry with the server under test.
    """
    assert not FAULTS.enabled, "oracle rendering must be fault-free"
    app = ModelRepositoryApp()
    response = app.handle("PUT", "/models/m", {}, xml_bytes)
    assert response.status == 201, response.status
    assert app.handle("GET", "/site/m/index.html").status == 200
    entry = app.cache.peek("m", "multi")
    pages = {}
    for page in entry.etags:
        body = app.handle("GET", f"/site/m/{page}")
        assert body.status == 200
        pages[page] = body.body
    return pages


def _query_string(**params) -> str:
    """urlencode with list values repeating the parameter."""
    pairs: list[tuple[str, str]] = []
    for key, value in params.items():
        if isinstance(value, (list, tuple)):
            pairs += [(key, str(item)) for item in value]
        else:
            pairs.append((key, str(value)))
    return urlencode(pairs)


def _expected_queries(xml_bytes: bytes,
                      queries: tuple[dict, ...]) -> dict[str, bytes]:
    """Execute the tracker's OLAP queries offline: the oracle bytes.

    Query results are deterministic per (model content hash, data seed,
    query), so an offline app with the same :data:`CHAOS_DATASET` yields
    exactly the bytes the live server may serve.  The record name does
    not matter: the rendering embeds the model's *XML* name.
    """
    assert not FAULTS.enabled, "oracle execution must be fault-free"
    app = ModelRepositoryApp(olap=OlapService(dataset=CHAOS_DATASET))
    response = app.handle("PUT", "/models/m", {}, xml_bytes)
    assert response.status == 201, response.status
    bodies: dict[str, bytes] = {}
    for params in queries:
        encoded = _query_string(**params)
        result = app.handle("GET", f"/olap/m/query?{encoded}")
        assert result.status == 200, (result.status, result.body)
        bodies[encoded] = result.body
    return bodies


class ModelTracker:
    """One model's version history and every byte it may serve."""

    def __init__(self, name: str, base_xml: bytes, marker: bytes,
                 queries: tuple[dict, ...] = ()) -> None:
        self.name = name
        self.base_xml = base_xml
        self.marker = marker
        assert marker in base_xml
        self.version = 0
        self.current_xml = base_xml
        self.current_pages: dict[str, bytes] = {}
        #: OLAP query parameter dicts the hammer fires via
        #: :meth:`RepositoryClient.query_cube`; oracle bodies are keyed
        #: by their urlencoded form (see :func:`_query_string`).
        self.queries = queries
        self.current_queries: dict[str, bytes] = {}
        #: Every XML body ever current (raw-model responses must match).
        self.xml_history: set[bytes] = {base_xml}
        #: SHA-256 of every expected page rendering, all versions.
        self.page_shas: set[str] = set()
        #: SHA-256 of every expected query rendering, all versions.
        self.query_shas: set[str] = set()
        self._pending: tuple[int, bytes, dict[str, bytes],
                             dict[str, bytes]] | None = None

    def bootstrap(self, store) -> None:
        """Install version 0 in the server and record its oracle."""
        self.current_pages = _expected_pages(self.base_xml)
        self.page_shas.update(_sha(b) for b in self.current_pages.values())
        self.current_queries = _expected_queries(self.base_xml,
                                                 self.queries)
        self.query_shas.update(
            _sha(b) for b in self.current_queries.values())
        store.put(self.name, self.base_xml)

    def _xml_for(self, version: int) -> bytes:
        if version == 0:
            return self.base_xml
        stamp = self.marker + f" r{version}".encode("ascii")
        return self.base_xml.replace(self.marker, stamp)

    def precompute_next(self) -> None:
        """Render the next version's oracle (faults must be off).

        History is extended *now*, before the flip, so hammer workers
        racing a mid-phase flip never see bytes ahead of the oracle.
        """
        if self._pending is not None:
            return
        version = self.version + 1
        xml = self._xml_for(version)
        pages = _expected_pages(xml)
        queries = _expected_queries(xml, self.queries)
        self.xml_history.add(xml)
        self.page_shas.update(_sha(b) for b in pages.values())
        self.query_shas.update(_sha(b) for b in queries.values())
        self._pending = (version, xml, pages, queries)

    def flip(self, store) -> None:
        """Make the precomputed version current in the live server."""
        assert self._pending is not None, "flip() without precompute_next()"
        version, xml, pages, queries = self._pending
        self._pending = None
        store.put(self.name, xml)
        self.version, self.current_xml = version, xml
        self.current_pages, self.current_queries = pages, queries

    def advance(self, store) -> None:
        self.precompute_next()
        self.flip(store)


def default_trackers() -> list[ModelTracker]:
    sales_queries = (
        dict(cube="c46-dice-slice", seed=1),
        dict(fact="Sales", measure="qty:SUM", dice="Time@Month", seed=1),
        dict(fact="Sales", measure="inventory:MAX,qty:SUM",
             dice="Store@City,Time@Month", seed=2),
        dict(fact="Sales", measure="qty:SUM", dice="Product@Family",
             slice='Product.product_name NOTEQ "unknown"', seed=1),
    )
    retail_queries = (
        dict(fact="Sales", measure="qty:SUM,amount:SUM",
             dice="Time@Month", seed=1),
        dict(fact="Inventory", measure="stock_level:AVG",
             dice="Product", seed=1),
    )
    return [
        ModelTracker("sales", model_to_xml(sales_model()).encode("utf-8"),
                     b"Sales DW", queries=sales_queries),
        ModelTracker("retail",
                     model_to_xml(two_facts_model()).encode("utf-8"),
                     b"Retail DW", queries=retail_queries),
    ]


def round_rng(seed: int, index: int) -> random.Random:
    return random.Random(f"chaos:{seed}:{index}")


def random_plan(rng: random.Random) -> FaultPlan:
    """A seeded plan of 1–3 distinct faults from the menu."""
    plan = FaultPlan(seed=rng.randrange(2 ** 32))
    for point, mode in rng.sample(FAULT_MENU, rng.randint(1, 3)):
        if plan.spec(point) is not None:
            continue
        if mode == "delay":
            plan.add(point, "delay",
                     rate=rng.choice([0.2, 0.5, 1.0]),
                     delay_s=rng.uniform(0.002, 0.03))
        elif point in TRANSPORT_POINTS:
            # Drops are disruptive: probabilistic and budgeted.
            plan.add(point, "raise", rate=rng.uniform(0.05, 0.3),
                     times=rng.randint(1, 6))
        else:
            plan.add(point, "raise", rate=rng.choice([0.1, 0.5, 1.0]))
    return plan


def _coalescing_burst(app: ModelRepositoryApp, tracker: ModelTracker,
                      clients: int) -> list[dict]:
    """Barrier burst against a stale page: one rebuild, one body."""
    before = app.cache.stats()["rebuilds"]
    barrier = threading.Barrier(clients)
    responses: list = [None] * clients

    def fetch(slot: int) -> None:
        barrier.wait()
        responses[slot] = app.handle(
            "GET", f"/site/{tracker.name}/index.html")

    threads = [threading.Thread(target=fetch, args=(slot,))
               for slot in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)

    failures = []
    rebuilds = app.cache.stats()["rebuilds"] - before
    if rebuilds > 1:
        failures.append({"check": "coalescing",
                         "model": tracker.name,
                         "detail": f"{rebuilds} rebuilds for one burst"})
    statuses = {r.status for r in responses if r is not None}
    bodies = {r.body for r in responses if r is not None}
    if None in responses or statuses != {200} or len(bodies) != 1:
        failures.append({
            "check": "coalescing-responses", "model": tracker.name,
            "detail": f"statuses={sorted(statuses)} "
                      f"distinct_bodies={len(bodies)} "
                      f"hung={responses.count(None)}"})
    return failures


def _check_response(kind: str, path: str, response,
                    tracker: ModelTracker, plan: FaultPlan) -> dict | None:
    """Apply the hammer-phase invariants to one completed exchange."""
    raise_points = {point for point, spec in plan.specs.items()
                    if spec.mode == "raise"}
    if kind == "health":
        if response.status not in (200, 503):
            return {"check": "health-status", "path": path,
                    "detail": f"status {response.status}"}
        return None
    if response.status == 503:
        return None  # overload shed: legal whenever a plan is active
    if response.status == 500:
        # A 500 is explained only by faults on the path that served it:
        # build faults never leak into query responses and vice versa.
        explaining = OLAP_POINTS if kind == "query" else BUILD_POINTS
        if raise_points & explaining:
            return None
        return {"check": "unexplained-5xx", "path": path,
                "detail": f"500 with plan {sorted(plan.specs)}"}
    if response.status != 200:
        return {"check": "unexpected-status", "path": path,
                "detail": f"status {response.status}"}
    if kind == "model":
        if response.body not in tracker.xml_history:
            return {"check": "torn-model-bytes", "path": path,
                    "detail": f"unexpected sha {_sha(response.body)[:12]}"}
        return None
    digest = _sha(response.body)
    if kind == "query":
        if digest not in tracker.query_shas:
            return {"check": "torn-query-bytes", "path": path,
                    "stale": response.header("X-Goldcase-Stale"),
                    "detail": f"unexpected sha {digest[:12]}"}
        return None
    if digest not in tracker.page_shas:
        return {"check": "torn-page-bytes", "path": path,
                "stale": response.header("X-Goldcase-Stale"),
                "detail": f"unexpected sha {digest[:12]}"}
    return None


def _hammer(server: ModelServer, trackers: list[ModelTracker],
            plan: FaultPlan, seed: int, index: int, clients: int,
            requests: int, flip: ModelTracker,
            metrics_state: dict) -> tuple[list[dict], dict]:
    """Concurrent clients under the active plan, plus a mid-phase flip."""
    failures: list[dict] = []
    counts = {"requests": 0, "queries": 0, "stale": 0, "shed": 0,
              "drops": 0, "retries": 0}
    lock = threading.Lock()

    def worker(worker_id: int) -> None:
        rng = random.Random(f"chaos:{seed}:{index}:client{worker_id}")
        policy = RetryPolicy(retries=2, base_delay_s=0.01, max_delay_s=0.2)
        with RepositoryClient(server.host, server.port, timeout_s=10.0,
                              policy=policy, rng=rng) as client:
            for _ in range(requests):
                tracker = rng.choice(trackers)
                kind = rng.choice(
                    ["model", "index", "page", "query", "health"])
                if kind == "model":
                    path = f"/models/{tracker.name}"
                elif kind == "health":
                    path = f"/health/{tracker.name}"
                elif kind == "index":
                    path = f"/site/{tracker.name}/index.html"
                elif kind == "query":
                    params = rng.choice(tracker.queries)
                    path = (f"/olap/{tracker.name}/query?"
                            f"{_query_string(**params)}")
                else:
                    page = rng.choice(sorted(tracker.current_pages))
                    path = f"/site/{tracker.name}/{page}"
                record: dict | None = None
                try:
                    if kind == "query":
                        response = client.query_cube(tracker.name, params)
                    else:
                        response = client.request("GET", path)
                except TimeoutError:
                    record = {"check": "hung-connection", "path": path,
                              "detail": "client read timed out"}
                    response = None
                except RetriesExhausted as exc:
                    response = None
                    with lock:
                        counts["drops"] += 1
                    if not ({point for point, spec in plan.specs.items()
                             if spec.mode == "raise"} & TRANSPORT_POINTS):
                        record = {"check": "unexplained-drop",
                                  "path": path, "detail": str(exc)}
                else:
                    record = _check_response(
                        kind, path, response, tracker, plan)
                if record is not None and response is not None:
                    # Join key into the server's access log.
                    record["request_id"] = response.request_id
                with lock:
                    counts["requests"] += 1
                    if kind == "query":
                        counts["queries"] += 1
                    if response is not None:
                        counts["retries"] += response.retries
                        if response.status == 503 and kind != "health":
                            counts["shed"] += 1
                        if response.header("X-Goldcase-Stale") == "true":
                            counts["stale"] += 1
                    if record is not None:
                        failures.append(record)

    threads = [threading.Thread(target=worker, args=(worker_id,))
               for worker_id in range(clients)]
    for thread in threads:
        thread.start()
    # Mid-phase: force rebuilds to happen *under* the active faults.
    time.sleep(0.05)
    flip.flip(server.app.store)
    # Scrape the telemetry surface while the storm is still raging:
    # /metrics must stay up and monotonic under active faults.
    failures.extend(_metrics_probe(
        server, plan, metrics_state, phase="hammer"))
    for thread in threads:
        thread.join(timeout=60)
        if thread.is_alive():
            failures.append({"check": "hung-worker",
                             "detail": "hammer worker did not finish"})
    return failures, counts


def _recovery_sweep(server: ModelServer,
                    trackers: list[ModelTracker]) -> list[dict]:
    """Faults off: everything must be current, fresh, and healthy."""
    failures: list[dict] = []
    connection = http.client.HTTPConnection(
        server.host, server.port, timeout=30)

    def fetch(path: str):
        connection.request("GET", path)
        response = connection.getresponse()
        return response, response.read()

    try:
        response, body = fetch("/dashboard")
        if response.status != 200 or b"goldcase ops" not in body:
            failures.append({
                "check": "recovery-dashboard",
                "detail": f"status {response.status}"})
        for tracker in trackers:
            response, body = fetch(f"/models/{tracker.name}")
            if response.status != 200 or body != tracker.current_xml:
                failures.append({
                    "check": "recovery-model", "model": tracker.name,
                    "detail": f"status {response.status}"})
            for page, expected in sorted(tracker.current_pages.items()):
                response, body = fetch(f"/site/{tracker.name}/{page}")
                stale = response.getheader("X-Goldcase-Stale")
                if response.status != 200 or body != expected or stale:
                    failures.append({
                        "check": "recovery-page", "model": tracker.name,
                        "page": page,
                        "detail": f"status {response.status} stale={stale} "
                                  f"sha {_sha(body)[:12]} "
                                  f"want {_sha(expected)[:12]}"})
            for encoded, expected in sorted(
                    tracker.current_queries.items()):
                response, body = fetch(
                    f"/olap/{tracker.name}/query?{encoded}")
                stale = response.getheader("X-Goldcase-Stale")
                if response.status != 200 or body != expected or stale:
                    failures.append({
                        "check": "recovery-query", "model": tracker.name,
                        "query": encoded,
                        "detail": f"status {response.status} stale={stale} "
                                  f"sha {_sha(body)[:12]} "
                                  f"want {_sha(expected)[:12]}"})
            response, body = fetch(f"/health/{tracker.name}")
            if response.status != 200:
                failures.append({
                    "check": "recovery-health", "model": tracker.name,
                    "detail": f"status {response.status}: "
                              f"{body.decode('utf-8', 'replace')[:200]}"})
    finally:
        connection.close()
    return failures


def run_round(server: ModelServer, trackers: list[ModelTracker],
              seed: int, index: int, *, clients: int = 6,
              requests: int = 20,
              metrics_state: dict | None = None) -> tuple[list[dict], dict]:
    """One chaos round; returns (failure records, counters)."""
    rng = round_rng(seed, index)
    failures: list[dict] = []
    if metrics_state is None:
        metrics_state = {}

    FAULTS.deactivate()
    target = rng.choice(trackers)
    target.advance(server.app.store)
    flip = rng.choice(trackers)
    flip.precompute_next()

    failures.extend(_coalescing_burst(server.app, target, clients))

    plan = random_plan(rng)
    FAULTS.activate(plan)
    try:
        hammered, counts = _hammer(server, trackers, plan, seed, index,
                                   clients, requests, flip, metrics_state)
        failures.extend(hammered)
    finally:
        fired = FAULTS.fired()
        FAULTS.deactivate()
    counts["faults_fired"] = sum(fired.values())

    failures.extend(_recovery_sweep(server, trackers))
    # Faults are off: the scrape must succeed and stay monotonic
    # relative to the mid-storm scrape.
    failures.extend(_metrics_probe(
        server, None, metrics_state, phase="recovery"))

    for record in failures:
        record.setdefault("seed", seed)
        record.setdefault("round", index)
        record.setdefault("plan", plan.describe())
    return failures, counts


def _write_reproducers(directory: str, seed: int,
                       failures: list[dict]) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"seed{seed}-chaos-failures.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(failures, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit.chaos",
        description="Chaos harness: randomized fault schedules against "
                    "a live model-repository server.")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; round r uses RNG(chaos:seed:r)")
    parser.add_argument("--budget", type=float, default=30.0,
                        help="time budget in seconds (default 30)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="run exactly N rounds, ignoring --budget")
    parser.add_argument("--start", type=int, default=0,
                        help="first round index (for replaying one "
                             "failing round)")
    parser.add_argument("--clients", type=int, default=6,
                        help="concurrent clients per round (default 6)")
    parser.add_argument("--requests", type=int, default=20,
                        help="requests per client per round (default 20)")
    parser.add_argument("--failures-dir", default="chaos-failures",
                        help="directory for JSON reproducers of violations")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-round progress output")
    args = parser.parse_args(argv)

    started = time.monotonic()
    FAULTS.deactivate()  # a GOLDCASE_FAULTS env plan would skew oracles
    trackers = default_trackers()
    all_failures: list[dict] = []
    totals = {"requests": 0, "queries": 0, "stale": 0, "shed": 0,
              "drops": 0, "retries": 0, "faults_fired": 0}
    completed = 0
    index = args.start
    metrics_state: dict = {}
    # The live server must share the oracle's (shrunken) dataset config,
    # or query bodies would never match the offline renderings.
    app = ModelRepositoryApp(olap=OlapService(dataset=CHAOS_DATASET))
    with ModelServer(app) as server:
        for tracker in trackers:
            tracker.bootstrap(server.app.store)
            # Warm the cache so round 1 measures degradation, not
            # cold-start builds.
            assert server.app.handle(
                "GET", f"/site/{tracker.name}/index.html").status == 200
        try:
            while True:
                if args.rounds is not None:
                    if completed >= args.rounds:
                        break
                elif completed > 0 and \
                        time.monotonic() - started >= args.budget:
                    break
                failures, counts = run_round(
                    server, trackers, args.seed, index,
                    clients=args.clients, requests=args.requests,
                    metrics_state=metrics_state)
                completed += 1
                for key, value in counts.items():
                    totals[key] += value
                if failures:
                    all_failures.extend(failures)
                    print(f"round {index}: {len(failures)} violation(s)",
                          file=sys.stderr)
                    for record in failures[:5]:
                        print(f"  {json.dumps(record, sort_keys=True)}",
                              file=sys.stderr)
                elif not args.quiet:
                    print(f"round {index}: ok — "
                          f"{counts['requests']} requests "
                          f"({counts['queries']} queries), "
                          f"{counts['faults_fired']} faults fired, "
                          f"{counts['stale']} stale, "
                          f"{counts['shed']} shed, "
                          f"{counts['drops']} drops")
                index += 1
        finally:
            FAULTS.deactivate()

    elapsed = time.monotonic() - started
    summary = (f"{completed} rounds, {totals['requests']} requests "
               f"({totals['queries']} queries), "
               f"{totals['faults_fired']} faults fired, "
               f"{totals['stale']} stale, {totals['shed']} shed, "
               f"{totals['drops']} drops, {elapsed:.1f}s")
    if all_failures:
        bad = sorted({record["round"] for record in all_failures})
        all_failures.append({
            "check": "cache-stats", "seed": args.seed, "round": -1,
            "stats": server.app.cache.stats(), "totals": totals,
        })
        path = _write_reproducers(
            args.failures_dir, args.seed, all_failures)
        print(f"chaos: FAIL — {len(all_failures) - 1} violation(s) "
              f"across rounds {bad}; {summary}; reproducers: {path}")
        print(f"replay one with: python -m repro.testkit.chaos "
              f"--seed {args.seed} --start {bad[0]} --rounds 1")
        return 1
    print(f"chaos: OK — 0 violations; {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
