"""Hypothesis strategies wrapping the rng-driven generators.

``st.randoms(use_true_random=False)`` yields ``random.Random`` instances
whose output is controlled (and shrunk) by the Hypothesis engine, so
these strategies reuse the exact generation code the CLI fuzzer runs —
one corpus definition, two harnesses.
"""

from __future__ import annotations

from hypothesis import strategies as st

from .generators import (
    random_document,
    random_model,
    random_model_edit_script,
    random_mutations,
    random_xpath,
)

__all__ = [
    "gold_models",
    "documents",
    "mutation_scripts",
    "model_edit_scripts",
    "xpath_expressions",
]


def _rngs():
    return st.randoms(use_true_random=False)


def gold_models(**kwargs):
    """Strategy producing semantically valid random GOLD models."""
    return _rngs().map(lambda rng: random_model(rng, **kwargs))


def documents(**kwargs):
    """Strategy producing random generic XML documents."""
    return _rngs().map(lambda rng: random_document(rng, **kwargs))


def mutation_scripts(min_size: int = 1, max_size: int = 24):
    """Strategy producing replayable DOM mutation scripts."""
    return st.builds(
        lambda rng, count: random_mutations(rng, count),
        _rngs(), st.integers(min_value=min_size, max_value=max_size))


def model_edit_scripts(min_size: int = 1, max_size: int = 8):
    """Strategy producing replayable GOLD-model edit scripts."""
    return st.builds(
        lambda rng, count: random_model_edit_script(rng, count),
        _rngs(), st.integers(min_value=min_size, max_value=max_size))


def xpath_expressions(**kwargs):
    """Strategy producing random XPath 1.0 expressions."""
    return _rngs().map(lambda rng: random_xpath(rng, **kwargs))
