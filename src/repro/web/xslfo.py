"""XSL Formatting Objects output (paper §6 future work).

§6: "With respect to the presentation, XSL FO can be used to specify in
deeper detail the pagination, layout, and styling information that will
be applied to XML documents.  However, to the best of our knowledge,
there are no current tools that completely provide support for XSL FO."

This module supplies both halves:

* :data:`MODEL_FO_XSL` — an XSLT stylesheet transforming a goldmodel
  document into an XSL-FO document (``fo:root`` / ``fo:layout-master-set``
  / ``fo:page-sequence`` with blocks and tables for the fact and
  dimension classes);
* :class:`FoRenderer` — the "tool that provides support for XSL FO":
  a paginating text renderer interpreting the FO subset the stylesheet
  emits (``fo:block`` with ``font-size``/``space-before``,
  ``fo:table``/``fo:table-row``/``fo:table-cell``, ``break-before``),
  producing fixed-width text pages.

The pipeline ``model → FO document → paginated pages`` is the §6 vision
end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mdm.model import GoldModel
from ..mdm.xml_io import model_to_document
from ..xml.dom import Document, Element, Text
from ..xslt import Transformer, compile_stylesheet
from .stylesheets import stylesheet_resolver

__all__ = ["MODEL_FO_XSL", "FoPage", "FoRenderer", "model_to_fo",
           "render_fo_pages", "FO_NAMESPACE"]

FO_NAMESPACE = "http://www.w3.org/1999/XSL/Format"

#: Transforms a goldmodel document into an XSL-FO document.
MODEL_FO_XSL = """<?xml version="1.0"?>
<xsl:stylesheet version="1.0"
    xmlns:xsl="http://www.w3.org/1999/XSL/Transform"
    xmlns:fo="http://www.w3.org/1999/XSL/Format">
  <xsl:output method="xml" indent="no"/>
  <xsl:key name="dimclass" match="dimclass" use="@id"/>

  <xsl:template match="/">
    <fo:root>
      <fo:layout-master-set>
        <fo:simple-page-master master-name="model-page"
            page-height="29.7cm" page-width="21cm" margin="2cm">
          <fo:region-body/>
        </fo:simple-page-master>
      </fo:layout-master-set>
      <fo:page-sequence master-reference="model-page">
        <fo:flow flow-name="xsl-region-body">
          <fo:block font-size="18pt" font-weight="bold">
            Multidimensional model: <xsl:value-of select="goldmodel/@name"/>
          </fo:block>
          <fo:block>
            Created <xsl:value-of select="goldmodel/@creationdate"/>
            — <xsl:value-of select="goldmodel/@description"/>
          </fo:block>
          <xsl:apply-templates
              select="goldmodel/factclasses/factclass"/>
          <xsl:apply-templates select="goldmodel/dimclasses/dimclass"/>
        </fo:flow>
      </fo:page-sequence>
    </fo:root>
  </xsl:template>

  <xsl:template match="factclass">
    <fo:block font-size="14pt" font-weight="bold" break-before="page">
      Fact class: <xsl:value-of select="@name"/>
    </fo:block>
    <xsl:if test="factatts/factatt">
      <fo:table>
        <fo:table-header>
          <fo:table-row>
            <fo:table-cell>measure</fo:table-cell>
            <fo:table-cell>type</fo:table-cell>
            <fo:table-cell>constraints</fo:table-cell>
          </fo:table-row>
        </fo:table-header>
        <fo:table-body>
          <xsl:for-each select="factatts/factatt">
            <fo:table-row>
              <fo:table-cell><xsl:value-of select="@name"/></fo:table-cell>
              <fo:table-cell><xsl:value-of select="@type"/></fo:table-cell>
              <fo:table-cell>
                <xsl:if test="@isoid = 'true'">{OID} </xsl:if>
                <xsl:if test="@isderived = 'true'">derived</xsl:if>
              </fo:table-cell>
            </fo:table-row>
          </xsl:for-each>
        </fo:table-body>
      </fo:table>
    </xsl:if>
    <xsl:if test="sharedaggs/sharedagg">
      <fo:block space-before="6pt" font-weight="bold">Dimensions</fo:block>
      <xsl:for-each select="sharedaggs/sharedagg">
        <fo:block>
          - <xsl:value-of select="key('dimclass', @dimclass)/@name"/>
          (<xsl:value-of select="@rolea"/>:<xsl:value-of select="@roleb"/>)
        </fo:block>
      </xsl:for-each>
    </xsl:if>
  </xsl:template>

  <xsl:template match="dimclass">
    <fo:block font-size="14pt" font-weight="bold" break-before="page">
      Dimension class: <xsl:value-of select="@name"/>
    </fo:block>
    <xsl:for-each select="dimatts/dimatt">
      <fo:block>
        * <xsl:value-of select="@name"/>
        <xsl:if test="@oid = 'true'"> {OID}</xsl:if>
        <xsl:if test="@d = 'true'"> {D}</xsl:if>
      </fo:block>
    </xsl:for-each>
    <xsl:for-each select="asoclevels/asoclevel | catlevels/catlevel">
      <fo:block space-before="6pt">
        Level: <xsl:value-of select="@name"/>
      </fo:block>
    </xsl:for-each>
  </xsl:template>

</xsl:stylesheet>
"""


def model_to_fo(model: GoldModel) -> Document:
    """Transform *model* into an XSL-FO document."""
    sheet = compile_stylesheet(MODEL_FO_XSL)
    result = Transformer(sheet).transform(model_to_document(model))
    return result.document


@dataclass
class FoPage:
    """One rendered page of fixed-width text."""

    number: int
    lines: list[str] = field(default_factory=list)

    def text(self) -> str:
        return "\n".join(self.lines)


class FoRenderer:
    """A paginating renderer for the FO subset :data:`MODEL_FO_XSL` emits.

    Interprets ``fo:block`` (with ``font-size`` scaling into underlines,
    ``space-before`` into blank lines, ``break-before="page"`` into page
    breaks) and ``fo:table`` rows into aligned columns.  Page height
    comes from the ``fo:simple-page-master`` (1 cm ≈ 2 lines).
    """

    def __init__(self, *, width: int = 72) -> None:
        self.width = width

    def render(self, fo_document: Document) -> list[FoPage]:
        """Render *fo_document* into text pages."""
        root = fo_document.root_element
        if root is None or root.local_name != "root" or \
                root.namespace_uri != FO_NAMESPACE:
            raise ValueError("not an XSL-FO document (fo:root expected)")
        page_height = self._page_height(root)
        pages: list[FoPage] = [FoPage(number=1)]

        def emit(line: str, *, allow_break: bool = True) -> None:
            page = pages[-1]
            if allow_break and len(page.lines) >= page_height:
                pages.append(FoPage(number=len(pages) + 1))
                page = pages[-1]
            page.lines.append(line[:self.width])

        def page_break() -> None:
            if pages[-1].lines:
                pages.append(FoPage(number=len(pages) + 1))

        for flow in self._flows(root):
            self._render_children(flow, emit, page_break)
        return [page for page in pages if page.lines]

    # -- structure -----------------------------------------------------------

    def _page_height(self, root: Element) -> int:
        for element in root.iter_elements():
            if element.local_name == "simple-page-master":
                height = element.get_attribute("page-height", "29.7cm")
                try:
                    centimetres = float(height.replace("cm", ""))
                except ValueError:
                    centimetres = 29.7
                return max(4, int(centimetres * 2))
        return 60

    def _flows(self, root: Element):
        for element in root.iter_elements():
            if element.local_name == "flow" and \
                    element.namespace_uri == FO_NAMESPACE:
                yield element

    def _render_children(self, parent: Element, emit, page_break) -> None:
        for child in parent.children:
            if not isinstance(child, Element) or \
                    child.namespace_uri != FO_NAMESPACE:
                continue
            if child.local_name == "block":
                self._render_block(child, emit, page_break)
            elif child.local_name == "table":
                self._render_table(child, emit)

    def _render_block(self, block: Element, emit, page_break) -> None:
        if block.get_attribute("break-before") == "page":
            page_break()
        space_before = block.get_attribute("space-before", "0pt") or "0pt"
        if space_before != "0pt":
            emit("")
        text = " ".join(block.text_content().split())
        font_size = block.get_attribute("font-size", "10pt") or "10pt"
        emit(text)
        try:
            points = float(font_size.replace("pt", ""))
        except ValueError:
            points = 10.0
        if points >= 14:
            underline = "=" if points >= 18 else "-"
            emit(underline * min(self.width, max(1, len(text))))

    def _render_table(self, table: Element, emit) -> None:
        rows: list[list[str]] = []
        for row in table.iter_elements():
            if row.local_name != "table-row":
                continue
            cells = [
                " ".join(cell.text_content().split())
                for cell in row.children
                if isinstance(cell, Element) and
                cell.local_name == "table-cell"
            ]
            rows.append(cells)
        if not rows:
            return
        columns = max(len(row) for row in rows)
        widths = [
            max((len(row[i]) for row in rows if i < len(row)), default=0)
            for i in range(columns)
        ]
        for index, row in enumerate(rows):
            padded = [
                (row[i] if i < len(row) else "").ljust(widths[i])
                for i in range(columns)
            ]
            emit("  ".join(padded).rstrip())
            if index == 0:
                emit("  ".join("-" * w for w in widths))


def render_fo_pages(model: GoldModel, *, width: int = 72) -> list[FoPage]:
    """The full §6 pipeline: model → XSL-FO → paginated text pages."""
    return FoRenderer(width=width).render(model_to_fo(model))
