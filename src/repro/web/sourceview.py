"""The browser source view of an XML document (paper Fig. 4).

Fig. 4 shows the CASE-tool document in Microsoft Internet Explorer
*without* a stylesheet: IE renders XML as a colourised, indented source
tree (tags brown, attribute names red, values blue, with ``-``
collapse markers on elements that have children).  The paper notes the
browser "brings the possibility to validate an XML document against a
DTD, but not against an XML Schema; in addition, the XML document is not
presented in a pretty way" — motivating the XSLT pipeline of §4.

:func:`render_source_view` reproduces that rendering as a standalone
HTML page, so the reproduction has the same "before" artefact the paper
contrasts its stylesheets against.
"""

from __future__ import annotations

from io import StringIO

from ..xml.dom import (
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)
from ..xml.escaping import escape_text

__all__ = ["render_source_view", "SOURCE_VIEW_CSS"]

#: The IE5-ish colour scheme of Fig. 4.
SOURCE_VIEW_CSS = """\
body { font-family: monospace; background: white; color: black; }
.xml-decl { color: blue; }
.tag { color: #990000; }
.attr-name { color: #CC0000; }
.attr-value { color: #0000CC; }
.text { color: black; font-weight: bold; }
.comment { color: #808080; font-style: italic; }
.pi { color: #CC6600; }
.marker { color: #CC0000; font-weight: bold; text-decoration: none; }
div.children { margin-left: 1.6em; }
"""


def render_source_view(document: Document, *,
                       title: str = "XML source view") -> str:
    """Render *document* as an IE-style colourised source page."""
    out = StringIO()
    out.write("<html><head>")
    out.write(f"<title>{escape_text(title)}</title>")
    out.write(f"<style>{SOURCE_VIEW_CSS}</style>")
    out.write("</head><body>")
    out.write('<div class="xml-decl">&lt;?xml version="')
    out.write(escape_text(document.version))
    out.write('" ?&gt;</div>')
    for child in document.children:
        _render_node(child, out)
    out.write("</body></html>")
    return out.getvalue()


def _render_node(node: Node, out: StringIO) -> None:
    if isinstance(node, Element):
        _render_element(node, out)
    elif isinstance(node, Text):
        if node.data.strip():
            out.write(f'<span class="text">'
                      f"{escape_text(node.data.strip())}</span>")
    elif isinstance(node, Comment):
        out.write(f'<div class="comment">&lt;!--'
                  f"{escape_text(node.data)}--&gt;</div>")
    elif isinstance(node, ProcessingInstruction):
        data = f" {escape_text(node.data)}" if node.data else ""
        out.write(f'<div class="pi">&lt;?{escape_text(node.target)}'
                  f"{data}?&gt;</div>")


def _render_element(element: Element, out: StringIO) -> None:
    has_children = any(
        not (isinstance(c, Text) and not c.data.strip())
        for c in element.children)
    marker = ('<span class="marker">-</span> ' if has_children else
              "&nbsp;&nbsp;")
    out.write(f"<div>{marker}")
    out.write(f'<span class="tag">&lt;{escape_text(element.name)}</span>')
    for attr in element.attributes:
        out.write(f' <span class="attr-name">'
                  f"{escape_text(attr.name)}</span>=")
        out.write(f'<span class="attr-value">'
                  f'"{escape_text(attr.value)}"</span>')
    if not has_children:
        out.write('<span class="tag"> /&gt;</span></div>')
        return
    out.write('<span class="tag">&gt;</span>')
    out.write('<div class="children">')
    for child in element.children:
        _render_node(child, out)
    out.write("</div>")
    out.write(f'<span class="tag">&lt;/{escape_text(element.name)}'
              "&gt;</span></div>")
