"""Rendering an XML Schema as a tree (paper Fig. 2).

The paper presents its XML Schema as a labelled tree: every node is an
element, dashed lines mark optional subelements, and multiplicity
modifiers (``minOccurs``/``maxOccurs``) annotate the edges.  This module
renders the same view as text::

    goldmodel
    ├── factclasses
    │   └── factclass 1..*
    │       ├╌╌ factatts 0..1
    ...

and as an HTML page (nested lists), with user-defined simple types
shaded/starred like the figure's shadowed boxes.
"""

from __future__ import annotations

from io import StringIO

from ..xsd.components import (
    AnyWildcard,
    ComplexType,
    ElementDecl,
    ModelGroup,
    Particle,
)
from ..xsd.schema import Schema
from ..xsd.simpletypes import ListType, SimpleType, UnionType

__all__ = ["render_schema_tree", "render_schema_tree_html", "TreeNode",
           "schema_tree"]


class TreeNode:
    """One node of the rendered tree."""

    __slots__ = ("label", "occurs", "optional", "children", "type_note")

    def __init__(self, label: str, occurs: str, optional: bool,
                 type_note: str = "") -> None:
        self.label = label
        self.occurs = occurs
        self.optional = optional
        self.type_note = type_note
        self.children: list[TreeNode] = []

    def line(self) -> str:
        """The node's text: name, occurrence, and type annotation."""
        parts = [self.label]
        if self.occurs and self.occurs != "1..1":
            parts.append(self.occurs.replace("..", "..").replace(
                "..None", "..*"))
        if self.type_note:
            parts.append(f"[{self.type_note}]")
        return " ".join(parts)


def schema_tree(schema: Schema) -> list[TreeNode]:
    """Build the tree structure for every global element of *schema*."""
    names = {id(t): name for name, t in schema.types.items()}
    roots = []
    for decl in schema.elements.values():
        roots.append(_element_node(decl, "1..1", False, names, set()))
    return roots


def _occurs_label(particle: Particle) -> str:
    high = "*" if particle.max_occurs is None else str(particle.max_occurs)
    return f"{particle.min_occurs}..{high}"


def _element_node(decl: ElementDecl, occurs: str, optional: bool,
                  names: dict[int, str], seen: set[int]) -> TreeNode:
    etype = decl.type
    type_note = ""
    if etype is not None and id(etype) in names and \
            not isinstance(etype, ComplexType):
        # User-defined simple type: the figure's shadowed boxes.
        type_note = f"*{names[id(etype)]}*"
    elif isinstance(etype, (SimpleType, ListType, UnionType)):
        type_note = etype.describe()
    node = TreeNode(decl.label if hasattr(decl, "label") else decl.name,
                    occurs, optional, type_note)
    if isinstance(etype, ComplexType) and etype.content is not None:
        if id(etype) in seen:
            node.type_note = "(recursive)"
            return node
        seen = seen | {id(etype)}
        _particle_children(etype.content, node, names, seen)
    return node


def _particle_children(particle: Particle, parent: TreeNode,
                       names: dict[int, str], seen: set[int]) -> None:
    term = particle.term
    if isinstance(term, ElementDecl):
        optional = particle.min_occurs == 0
        parent.children.append(_element_node(
            term, _occurs_label(particle), optional, names, seen))
    elif isinstance(term, AnyWildcard):
        parent.children.append(TreeNode(
            "(any)", _occurs_label(particle), particle.min_occurs == 0))
    elif isinstance(term, ModelGroup):
        if term.kind != "sequence" or particle.min_occurs != 1 or \
                particle.max_occurs != 1:
            group = TreeNode(f"({term.kind})", _occurs_label(particle),
                             particle.min_occurs == 0)
            parent.children.append(group)
            parent = group
        for child in term.particles:
            _particle_children(child, parent, names, seen)


def render_schema_tree(schema: Schema) -> str:
    """Render the Fig. 2 tree as text with box-drawing connectors.

    Optional elements use dashed connectors (``╌``), mirroring the
    figure's dashed lines.
    """
    out = StringIO()
    for root in schema_tree(schema):
        out.write(root.line() + "\n")
        _render_children(root, "", out)
    if schema.types:
        out.write("\nuser-defined simple types:\n")
        for name, definition in schema.types.items():
            if not isinstance(definition, ComplexType):
                out.write(f"  *{name}* = {definition.describe()}\n")
    return out.getvalue()


def _render_children(node: TreeNode, prefix: str, out: StringIO) -> None:
    count = len(node.children)
    for index, child in enumerate(node.children):
        last = index == count - 1
        connector = "└" if last else "├"
        dash = "╌╌" if child.optional else "──"
        out.write(f"{prefix}{connector}{dash} {child.line()}\n")
        extension = "    " if last else "│   "
        _render_children(child, prefix + extension, out)


def render_schema_tree_html(schema: Schema, *,
                            title: str = "XML Schema tree") -> str:
    """Render the tree as an HTML page with nested lists."""
    out = StringIO()
    out.write("<html><head><title>")
    out.write(title)
    out.write("</title></head><body bgcolor=\"mintcream\">")
    out.write(f"<h1>{title}</h1>")
    for root in schema_tree(schema):
        out.write("<ul>")
        _render_html_node(root, out)
        out.write("</ul>")
    out.write("</body></html>")
    return out.getvalue()


def _render_html_node(node: TreeNode, out: StringIO) -> None:
    style = " style=\"border:1px dashed gray\"" if node.optional else ""
    out.write(f"<li{style}><code>{node.line()}</code>")
    if node.children:
        out.write("<ul>")
        for child in node.children:
            _render_html_node(child, out)
        out.write("</ul>")
    out.write("</li>")
