"""Client-side vs server-side transformation (paper §6).

§6: "we run the transformation process using a client-server technology,
i.e. the XSLT stylesheet is applied to the XML document in the server
and the HTML is returned to the client browser.  In the future, when the
browsers completely support XML and XSLT, the transformation will be
able to be performed in the browser."

This module implements both deployment modes over the same engine:

* :func:`server_side` — what the paper did: transform on the "server",
  return finished HTML;
* :func:`client_bundle` — what the paper anticipated: ship the raw XML
  (with an ``xml-stylesheet`` processing instruction) plus the
  stylesheet, and let the "browser" transform;
* :class:`BrowserSimulator` — the client: reads the bundle, follows the
  PI, runs the transformation locally;
* :class:`RepositoryClient` — a resilient HTTP client for the model-
  repository server (DESIGN.md §12): retries connection failures and
  503 overload sheds with jittered exponential backoff, honouring
  ``Retry-After``.  Deterministic when given a seeded RNG, which is how
  the chaos runner replays client behaviour from a seed.  Every
  *logical* request carries one ``X-Goldcase-Request-Id`` minted from
  that same RNG and reused across its retries, so server access-log
  lines group an entire retry storm under a single id (DESIGN.md §15).

A test asserts the two modes produce identical HTML — the property that
makes the §6 migration safe.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass
from random import Random
from urllib.parse import quote, urlencode

from ..mdm.model import GoldModel
from ..mdm.xml_io import model_to_document
from ..obs.ids import RequestIdGenerator
from ..xml.dom import ProcessingInstruction
from ..xml.parser import parse as parse_xml
from ..xml.serializer import serialize
from ..xslt import Transformer, compile_stylesheet
from .stylesheets import SINGLE_PAGE_XSL, stylesheet_resolver

__all__ = ["ClientBundle", "server_side", "client_bundle",
           "BrowserSimulator", "ClientResponse", "RepositoryClient",
           "RetriesExhausted", "RetryPolicy"]


@dataclass
class ClientBundle:
    """What the server ships for client-side transformation."""

    #: The XML document text, carrying an xml-stylesheet PI.
    document_xml: str
    #: Stylesheet files keyed by href (the PI's target plus includes).
    stylesheets: dict[str, str]

    @property
    def stylesheet_href(self) -> str:
        """The href named in the document's xml-stylesheet PI."""
        document = parse_xml(self.document_xml)
        for child in document.children:
            if isinstance(child, ProcessingInstruction) and \
                    child.target == "xml-stylesheet":
                return _pseudo_attribute(child.data, "href")
        raise ValueError("bundle document has no xml-stylesheet PI")


def server_side(model: GoldModel,
                stylesheet: str = SINGLE_PAGE_XSL) -> str:
    """The paper's deployment: transform on the server, ship HTML."""
    sheet = compile_stylesheet(stylesheet, resolver=stylesheet_resolver)
    result = Transformer(sheet).transform(model_to_document(model))
    return result.serialize()


def client_bundle(model: GoldModel,
                  stylesheet: str = SINGLE_PAGE_XSL,
                  href: str = "goldmodel.xsl") -> ClientBundle:
    """The §6 deployment: ship XML + stylesheet, transform client-side."""
    document = model_to_document(model)
    pi = ProcessingInstruction(
        "xml-stylesheet", f'type="text/xsl" href="{href}"')
    document.insert_before(pi, document.root_element)
    return ClientBundle(
        document_xml=serialize(document),
        stylesheets={href: stylesheet, "common.xsl":
                     stylesheet_resolver("common.xsl")},
    )


class BrowserSimulator:
    """A browser that 'completely supports XML and XSLT' (paper §6)."""

    def render(self, bundle: ClientBundle) -> str:
        """Follow the xml-stylesheet PI and transform locally."""
        href = bundle.stylesheet_href
        try:
            stylesheet_text = bundle.stylesheets[href]
        except KeyError:
            raise ValueError(
                f"bundle is missing the stylesheet {href!r}") from None
        sheet = compile_stylesheet(
            stylesheet_text,
            resolver=lambda include: bundle.stylesheets[include])
        document = parse_xml(bundle.document_xml)
        return Transformer(sheet).transform(document).serialize()


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for transient server failures.

    Attempt *n* (0-based) sleeps ``base_delay_s * 2**n``, scaled by a
    jitter factor drawn uniformly from [0.5, 1.0) so a herd of retrying
    clients decorrelates instead of re-arriving in lockstep; a 503's
    ``Retry-After`` raises the floor of the computed delay.
    """

    retries: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0

    def delay_s(self, attempt: int, rng: Random,
                retry_after_s: float | None = None) -> float:
        delay = min(self.max_delay_s, self.base_delay_s * (2 ** attempt))
        delay *= 0.5 + rng.random() / 2.0
        if retry_after_s is not None:
            delay = max(delay, min(retry_after_s, self.max_delay_s))
        return delay


@dataclass(frozen=True)
class ClientResponse:
    """One completed exchange: status, headers, body, retry count."""

    status: int
    headers: dict[str, str]
    body: bytes
    retries: int = 0

    def header(self, name: str) -> str | None:
        wanted = name.lower()
        for key, value in self.headers.items():
            if key.lower() == wanted:
                return value
        return None

    @property
    def request_id(self) -> str | None:
        """The exchange's ``X-Goldcase-Request-Id`` (echoed by the
        server, or minted by it for transport-level rejections)."""
        return self.header("X-Goldcase-Request-Id")


class RetriesExhausted(Exception):
    """Every attempt failed at the transport level (no HTTP response)."""

    def __init__(self, method: str, path: str, attempts: int,
                 cause: Exception) -> None:
        super().__init__(
            f"{method} {path} failed after {attempts} attempt(s): {cause!r}")
        self.attempts = attempts
        self.cause = cause


class RepositoryClient:
    """An HTTP client for the repository server that degrades gracefully.

    Connection errors and 503 responses (the cache's overload shed) are
    retried per the :class:`RetryPolicy`; other statuses — including
    500s — are returned to the caller untouched, because retrying a
    deterministic failure only amplifies load.  One connection is kept
    alive across requests and transparently re-established after a
    server-side close (the hardened handler closes on transport
    errors).
    """

    def __init__(self, host: str, port: int, *, timeout_s: float = 10.0,
                 policy: RetryPolicy | None = None,
                 rng: Random | None = None, sleep=time.sleep) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.policy = policy or RetryPolicy()
        self._rng = rng or Random()
        self._sleep = sleep
        self._connection: http.client.HTTPConnection | None = None
        # Ids share the client's RNG stream, so a seeded chaos client
        # mints the same ids on replay (the reproducer names them).
        self._request_ids = RequestIdGenerator(rng=self._rng)

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "RepositoryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _exchange(self, method: str, path: str, body: bytes | None,
                  headers: dict[str, str]) -> ClientResponse:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s)
        connection = self._connection
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()  # keep-alive: always drain
        except Exception:
            # The connection state is unknown; rebuild it next attempt.
            self.close()
            raise
        return ClientResponse(
            status=response.status,
            headers=dict(response.getheaders()), body=payload)

    def request(self, method: str, path: str, *, body: bytes | None = None,
                headers: dict[str, str] | None = None) -> ClientResponse:
        """Perform one request, retrying sheds and transport failures.

        Raises :class:`RetriesExhausted` only when every attempt died
        without an HTTP response; socket timeouts are *not* retried —
        a hung server is something callers (the chaos runner's hung-
        connection invariant) must see.
        """
        attempts = self.policy.retries + 1
        last_error: Exception | None = None
        response: ClientResponse | None = None
        # One id per *logical* request: every retry resends it, so the
        # server logs the whole storm under a single identity.
        send_headers = dict(headers or {})
        send_headers.setdefault(
            "X-Goldcase-Request-Id", self._request_ids())
        for attempt in range(attempts):
            retry_after: float | None = None
            try:
                response = self._exchange(method, path, body, send_headers)
            except TimeoutError:
                raise
            except (OSError, http.client.HTTPException) as exc:
                last_error = exc
                response = None
            if response is not None:
                if response.status != 503:
                    return ClientResponse(
                        response.status, response.headers, response.body,
                        retries=attempt)
                header = response.header("Retry-After")
                try:
                    retry_after = float(header) if header else None
                except ValueError:
                    retry_after = None
            if attempt + 1 < attempts:
                self._sleep(self.policy.delay_s(
                    attempt, self._rng, retry_after))
        if response is not None:  # a 503 that outlived the retry budget
            return ClientResponse(response.status, response.headers,
                                  response.body, retries=attempts - 1)
        raise RetriesExhausted(method, path, attempts, last_error)

    def query_cube(self, model: str, params: dict | None = None, *,
                   body: dict | None = None, format: str | None = None,
                   headers: dict[str, str] | None = None) -> ClientResponse:
        """Run an OLAP query against ``/olap/<model>/query``.

        With *params* the query goes out as a GET with urlencoded
        parameters (list values repeat the parameter, which is how
        multiple ``slice`` predicates travel); with *body* it goes out
        as a POST carrying the JSON query form.  Either way the full
        retry policy applies — an OLAP query is idempotent, so resending
        after a shed or transport failure is always safe.
        """
        if params is not None and body is not None:
            raise ValueError("pass params (GET) or body (POST), not both")
        pairs: list[tuple[str, str]] = []
        for key, value in (params or {}).items():
            if isinstance(value, (list, tuple)):
                pairs += [(key, str(item)) for item in value]
            else:
                pairs.append((key, str(value)))
        if format is not None:
            pairs.append(("format", format))
        path = f"/olap/{quote(model)}/query"
        if pairs:
            path += "?" + urlencode(pairs)
        if body is not None:
            send = dict(headers or {})
            send.setdefault("Content-Type", "application/json")
            return self.request("POST", path,
                                body=json.dumps(body).encode("utf-8"),
                                headers=send)
        return self.request("GET", path, headers=headers)

    def olap_stats(self, model: str, *,
                   headers: dict[str, str] | None = None) -> ClientResponse:
        """Fetch ``/olap/<model>/stats`` (aggregate/dataset cache state)."""
        return self.request(
            "GET", f"/olap/{quote(model)}/stats", headers=headers)


def _pseudo_attribute(data: str, name: str) -> str:
    """Extract a pseudo-attribute from xml-stylesheet PI data."""
    import re

    match = re.search(rf'{name}\s*=\s*["\']([^"\']*)["\']', data)
    if not match:
        raise ValueError(
            f"xml-stylesheet PI has no {name!r} pseudo-attribute")
    return match.group(1)
