"""Client-side vs server-side transformation (paper §6).

§6: "we run the transformation process using a client-server technology,
i.e. the XSLT stylesheet is applied to the XML document in the server
and the HTML is returned to the client browser.  In the future, when the
browsers completely support XML and XSLT, the transformation will be
able to be performed in the browser."

This module implements both deployment modes over the same engine:

* :func:`server_side` — what the paper did: transform on the "server",
  return finished HTML;
* :func:`client_bundle` — what the paper anticipated: ship the raw XML
  (with an ``xml-stylesheet`` processing instruction) plus the
  stylesheet, and let the "browser" transform;
* :class:`BrowserSimulator` — the client: reads the bundle, follows the
  PI, runs the transformation locally.

A test asserts the two modes produce identical HTML — the property that
makes the §6 migration safe.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mdm.model import GoldModel
from ..mdm.xml_io import model_to_document
from ..xml.dom import ProcessingInstruction
from ..xml.parser import parse as parse_xml
from ..xml.serializer import serialize
from ..xslt import Transformer, compile_stylesheet
from .stylesheets import SINGLE_PAGE_XSL, stylesheet_resolver

__all__ = ["ClientBundle", "server_side", "client_bundle",
           "BrowserSimulator"]


@dataclass
class ClientBundle:
    """What the server ships for client-side transformation."""

    #: The XML document text, carrying an xml-stylesheet PI.
    document_xml: str
    #: Stylesheet files keyed by href (the PI's target plus includes).
    stylesheets: dict[str, str]

    @property
    def stylesheet_href(self) -> str:
        """The href named in the document's xml-stylesheet PI."""
        document = parse_xml(self.document_xml)
        for child in document.children:
            if isinstance(child, ProcessingInstruction) and \
                    child.target == "xml-stylesheet":
                return _pseudo_attribute(child.data, "href")
        raise ValueError("bundle document has no xml-stylesheet PI")


def server_side(model: GoldModel,
                stylesheet: str = SINGLE_PAGE_XSL) -> str:
    """The paper's deployment: transform on the server, ship HTML."""
    sheet = compile_stylesheet(stylesheet, resolver=stylesheet_resolver)
    result = Transformer(sheet).transform(model_to_document(model))
    return result.serialize()


def client_bundle(model: GoldModel,
                  stylesheet: str = SINGLE_PAGE_XSL,
                  href: str = "goldmodel.xsl") -> ClientBundle:
    """The §6 deployment: ship XML + stylesheet, transform client-side."""
    document = model_to_document(model)
    pi = ProcessingInstruction(
        "xml-stylesheet", f'type="text/xsl" href="{href}"')
    document.insert_before(pi, document.root_element)
    return ClientBundle(
        document_xml=serialize(document),
        stylesheets={href: stylesheet, "common.xsl":
                     stylesheet_resolver("common.xsl")},
    )


class BrowserSimulator:
    """A browser that 'completely supports XML and XSLT' (paper §6)."""

    def render(self, bundle: ClientBundle) -> str:
        """Follow the xml-stylesheet PI and transform locally."""
        href = bundle.stylesheet_href
        try:
            stylesheet_text = bundle.stylesheets[href]
        except KeyError:
            raise ValueError(
                f"bundle is missing the stylesheet {href!r}") from None
        sheet = compile_stylesheet(
            stylesheet_text,
            resolver=lambda include: bundle.stylesheets[include])
        document = parse_xml(bundle.document_xml)
        return Transformer(sheet).transform(document).serialize()


def _pseudo_attribute(data: str, name: str) -> str:
    """Extract a pseudo-attribute from xml-stylesheet PI data."""
    import re

    match = re.search(rf'{name}\s*=\s*["\']([^"\']*)["\']', data)
    if not match:
        raise ValueError(
            f"xml-stylesheet PI has no {name!r} pseudo-attribute")
    return match.group(1)
