"""Publishing models to the web (§4): run XSLT, write the HTML site.

Two pipelines, matching the paper's §4:

* :func:`publish_multi_page` — XSLT 1.1 ``xsl:document``: the principal
  output becomes ``index.html`` and each fact class, dimension class,
  classification level, cube class, and additivity popup gets its own
  page (1 + facts + measures-with-additivity + dims + levels + cubes
  pages in total);
* :func:`publish_single_page` — XSLT 1.0: everything in one
  ``index.html`` with internal anchors.

Both write a small CSS file (the paper uses CSS for display control) and
return a :class:`Site` mapping filenames to HTML text, which can also be
written to disk with :meth:`Site.write_to`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..mdm.model import GoldModel
from ..mdm.xml_io import model_to_document
from ..xslt import Stylesheet, Transformer, compile_stylesheet
from .stylesheets import (
    MULTI_PAGE_XSL,
    SINGLE_PAGE_XSL,
    stylesheet_resolver,
)

__all__ = ["Site", "publish_multi_page", "publish_single_page",
           "DEFAULT_CSS"]

#: Stylesheet for the generated pages (the paper notes CSS "gives us more
#: control over how pages are displayed").
DEFAULT_CSS = """\
body { font-family: Verdana, Arial, sans-serif; margin: 2em; }
h1 { border-bottom: 2px solid #008080; color: #004040; }
h2 { color: #006060; }
table { border-collapse: collapse; }
td, th { padding: 2px 8px; border: 1px solid #808080; }
a { color: #0000A0; }
"""


@dataclass
class Site:
    """A generated HTML site: filename → content."""

    pages: dict[str, str] = field(default_factory=dict)
    messages: list[str] = field(default_factory=list)

    @property
    def page_count(self) -> int:
        """Number of HTML pages (excludes the CSS file)."""
        return sum(1 for name in self.pages if name.endswith(".html"))

    def page(self, name: str) -> str:
        """Content of page *name* (raises KeyError when absent)."""
        return self.pages[name]

    def write_to(self, directory: str | os.PathLike) -> list[str]:
        """Write every file under *directory*; returns the paths written."""
        os.makedirs(directory, exist_ok=True)
        written = []
        for name, content in sorted(self.pages.items()):
            path = os.path.join(directory, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(content)
            written.append(path)
        return written


_compiled_cache: dict[str, Stylesheet] = {}
_transformer_cache: dict[str, Transformer] = {}


def _compiled(text: str) -> Stylesheet:
    sheet = _compiled_cache.get(text)
    if sheet is None:
        sheet = compile_stylesheet(text, resolver=stylesheet_resolver)
        _compiled_cache[text] = sheet
    return sheet


def _transformer(text: str) -> Transformer:
    """A cached Transformer per stylesheet text.

    Transformers are stateless across runs (per-transformation state
    lives in an internal run object), so the serving scenario — repeated
    publishes of changing models — reuses one instance and skips both
    stylesheet compilation and template-dispatch index construction.
    """
    transformer = _transformer_cache.get(text)
    if transformer is None:
        transformer = Transformer(_compiled(text))
        _transformer_cache[text] = transformer
    return transformer


def publish_multi_page(model: GoldModel, *,
                       stylesheet: str = MULTI_PAGE_XSL) -> Site:
    """Generate the linked multi-page site (Fig. 6) for *model*."""
    document = model_to_document(model)
    result = _transformer(stylesheet).transform(document)
    site = Site(messages=list(result.messages))
    rendered = result.serialize_all()
    site.pages["index.html"] = rendered.pop("")
    for href, content in rendered.items():
        site.pages[href] = content
    site.pages["gold.css"] = DEFAULT_CSS
    return site


def publish_single_page(model: GoldModel, *,
                        stylesheet: str = SINGLE_PAGE_XSL) -> Site:
    """Generate the one-page site with internal anchors for *model*."""
    document = model_to_document(model)
    result = _transformer(stylesheet).transform(document)
    site = Site(messages=list(result.messages))
    site.pages["index.html"] = result.serialize()
    site.pages["gold.css"] = DEFAULT_CSS
    return site
