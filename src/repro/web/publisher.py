"""Publishing models to the web (§4): run XSLT, write the HTML site.

Two pipelines, matching the paper's §4:

* :func:`publish_multi_page` — XSLT 1.1 ``xsl:document``: the principal
  output becomes ``index.html`` and each fact class, dimension class,
  classification level, cube class, and additivity popup gets its own
  page (1 + facts + measures-with-additivity + dims + levels + cubes
  pages in total);
* :func:`publish_single_page` — XSLT 1.0: everything in one
  ``index.html`` with internal anchors.

Both write a small CSS file (the paper uses CSS for display control) and
return a :class:`Site` mapping filenames to HTML text, which can also be
written to disk with :meth:`Site.write_to`.

Either pipeline may run *tracked*: when :mod:`repro.xml.tracking` has a
:class:`~repro.xml.tracking.ReadTracker` installed, both the interpreter
and the compiled engine record which model units each emitted page read
(and honor the tracker's page filter, skipping clean page bodies), which
is what powers :mod:`repro.web.incremental`'s diff-driven republish.
Tracking is ambient — nothing here changes signature or behavior when no
tracker is installed, and a tracked publish is byte-identical to a plain
one.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

from ..faults import FAULTS, fault_point
from ..mdm.model import GoldModel
from ..mdm.xml_io import model_to_document
from ..obs.recorder import RECORDER as _REC
from ..xml.dom import Document
from ..xslt import (
    CompiledTransformer,
    Stylesheet,
    Transformer,
    compile_enabled,
    compile_stylesheet,
)
from ..xslt.output import serialize_result
from .stylesheets import (
    MULTI_PAGE_XSL,
    SINGLE_PAGE_XSL,
    stylesheet_resolver,
)

__all__ = ["Site", "publish_multi_page", "publish_single_page",
           "DEFAULT_CSS", "PROFILE_PAGE", "publisher_cache_info",
           "clear_publisher_caches"]

#: Filename of the additive profile page emitted while profiling is on.
PROFILE_PAGE = "profile.html"

_PAGE_FAULT = fault_point(
    "publish.page", "raise/delay while serializing one published page "
                    "(publisher.py)")

#: Stylesheet for the generated pages (the paper notes CSS "gives us more
#: control over how pages are displayed").
DEFAULT_CSS = """\
body { font-family: Verdana, Arial, sans-serif; margin: 2em; }
h1 { border-bottom: 2px solid #008080; color: #004040; }
h2 { color: #006060; }
table { border-collapse: collapse; }
td, th { padding: 2px 8px; border: 1px solid #808080; }
a { color: #0000A0; }
"""


@dataclass
class Site:
    """A generated HTML site: filename → content."""

    pages: dict[str, str] = field(default_factory=dict)
    messages: list[str] = field(default_factory=list)

    @property
    def page_count(self) -> int:
        """Number of HTML pages (excludes the CSS file)."""
        return sum(1 for name in self.pages if name.endswith(".html"))

    def page(self, name: str) -> str:
        """Content of page *name* (raises KeyError when absent)."""
        return self.pages[name]

    def write_to(self, directory: str | os.PathLike) -> list[str]:
        """Write every file under *directory*; returns the paths written."""
        os.makedirs(directory, exist_ok=True)
        written = []
        for name, content in sorted(self.pages.items()):
            path = os.path.join(directory, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(content)
            written.append(path)
        return written


class _StatsCache:
    """A keyed build cache with ``functools.lru_cache``-style introspection.

    ``cache_info()`` exposes hits/misses/currsize so the observability
    layer can report publisher-cache hit rates, and ``clear()`` lets
    benchmark harnesses measure cold-start costs between runs — both
    were impossible with the bare module-level dicts this replaces.

    Thread safety: the model-repository server publishes from
    concurrent request handlers, so the bare check-then-act this class
    once used could compile the same stylesheet twice (wasted work) and
    tear its hit/miss counters.  ``get`` now holds the cache lock
    across lookup *and* build: a compile is guaranteed to happen once
    per key, concurrent requesters for a cold key block until it is
    built and then share the one instance.  The held-during-build lock
    is deliberate — there are two stylesheets in total, so contention
    exists only for the first publish after a cold start, and the warm
    path pays one uncontended dict lookup under the lock per publish
    (not per page).  Pinned by tests/web/test_publisher_threadsafety.py.
    """

    __slots__ = ("_build", "_entries", "_lock", "hits", "misses")

    def __init__(self, build) -> None:
        self._build = build
        self._entries: dict[str, object] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: str):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                entry = self._entries[key] = self._build(key)
            else:
                self.hits += 1
            return entry

    def cache_info(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "currsize": len(self._entries),
                "maxsize": None,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


_compiled_cache = _StatsCache(
    lambda text: compile_stylesheet(text, resolver=stylesheet_resolver))

#: Transformers are stateless across runs (per-transformation state
#: lives in an internal run object), so the serving scenario — repeated
#: publishes of changing models — reuses one instance and skips both
#: stylesheet compilation and template-dispatch index construction.
_transformer_cache = _StatsCache(
    lambda text: Transformer(_compiled(text)))

#: Compiled transformers carry the ahead-of-time lowered closures (see
#: repro.xslt.compile); cached separately so toggling ``--no-compile``
#: back and forth never evicts either engine.
_compiled_transformer_cache = _StatsCache(
    lambda text: CompiledTransformer(_compiled(text)))


def _compiled(text: str) -> Stylesheet:
    return _compiled_cache.get(text)


def _transformer(text: str) -> Transformer:
    """A cached Transformer per stylesheet text (see _transformer_cache)."""
    return _transformer_cache.get(text)


def _compiled_transformer(text: str) -> CompiledTransformer:
    """A cached CompiledTransformer per stylesheet text."""
    return _compiled_transformer_cache.get(text)


def publisher_cache_info() -> dict[str, dict]:
    """Hit/miss/size statistics for the publisher's stylesheet caches."""
    return {
        "publisher.stylesheet": _compiled_cache.cache_info(),
        "publisher.transformer": _transformer_cache.cache_info(),
        "publisher.compiled_transformer":
            _compiled_transformer_cache.cache_info(),
    }


def clear_publisher_caches() -> None:
    """Drop compiled stylesheets and transformers (benchmark cold-start)."""
    _compiled_cache.clear()
    _transformer_cache.clear()
    _compiled_transformer_cache.clear()


def _attach_profile(site: Site) -> None:
    """Append the HTML profile page while profiling is enabled.

    Strictly additive: every model page is already rendered and the
    trace is snapshotted before this transform runs, so enabling
    profiling never changes the bytes of any other page (pinned by
    tests/web/test_golden_outputs.py).
    """
    from ..obs.htmlreport import render_profile_html

    site.pages[PROFILE_PAGE] = render_profile_html()


def publish_multi_page(model: GoldModel, *,
                       stylesheet: str = MULTI_PAGE_XSL,
                       document: "Document | None" = None) -> Site:
    """Generate the linked multi-page site (Fig. 6) for *model*.

    ``document`` lets a caller that already serialized *model* (the
    incremental republisher diffs it first) reuse the DOM instead of
    rebuilding it; it must be ``model_to_document(model)``.
    """
    with _REC.span("publish.multi_page", model=model.name):
        if document is None:
            document = model_to_document(model)
        if compile_enabled():
            with _REC.span("publish.transform"):
                rendered = _compiled_transformer(stylesheet).render(document)
            site = Site(messages=list(rendered.messages))
            with _REC.span("publish.page", page="index.html"):
                if FAULTS.enabled:
                    FAULTS.hit(_PAGE_FAULT)
                site.pages["index.html"] = rendered.pages[""]
            for href, page in rendered.pages.items():
                if href == "":
                    continue
                with _REC.span("publish.page", page=href):
                    if FAULTS.enabled:
                        FAULTS.hit(_PAGE_FAULT)
                    site.pages[href] = page
            site.pages["gold.css"] = DEFAULT_CSS
        else:
            with _REC.span("publish.transform"):
                result = _transformer(stylesheet).transform(document)
            site = Site(messages=list(result.messages))
            with _REC.span("publish.page", page="index.html"):
                if FAULTS.enabled:
                    FAULTS.hit(_PAGE_FAULT)
                site.pages["index.html"] = result.serialize()
            for href, secondary in result.documents.items():
                with _REC.span("publish.page", page=href):
                    if FAULTS.enabled:
                        FAULTS.hit(_PAGE_FAULT)
                    site.pages[href] = serialize_result(
                        secondary, result.output)
            site.pages["gold.css"] = DEFAULT_CSS
    if _REC.enabled:
        _attach_profile(site)
    return site


def publish_single_page(model: GoldModel, *,
                        stylesheet: str = SINGLE_PAGE_XSL) -> Site:
    """Generate the one-page site with internal anchors for *model*."""
    with _REC.span("publish.single_page", model=model.name):
        document = model_to_document(model)
        if compile_enabled():
            with _REC.span("publish.transform"):
                rendered = _compiled_transformer(stylesheet).render(document)
            site = Site(messages=list(rendered.messages))
            with _REC.span("publish.page", page="index.html"):
                if FAULTS.enabled:
                    FAULTS.hit(_PAGE_FAULT)
                site.pages["index.html"] = rendered.pages[""]
        else:
            with _REC.span("publish.transform"):
                result = _transformer(stylesheet).transform(document)
            site = Site(messages=list(result.messages))
            with _REC.span("publish.page", page="index.html"):
                if FAULTS.enabled:
                    FAULTS.hit(_PAGE_FAULT)
                site.pages["index.html"] = result.serialize()
        site.pages["gold.css"] = DEFAULT_CSS
    if _REC.enabled:
        _attach_profile(site)
    return site
