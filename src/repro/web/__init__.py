"""The presentation layer (§4): XSLT stylesheets, site publishing,
per-fact-class presentations, schema tree view, and link checking.
"""

from .client import (
    BrowserSimulator,
    ClientBundle,
    ClientResponse,
    RepositoryClient,
    RetriesExhausted,
    RetryPolicy,
    client_bundle,
    server_side,
)
from .linkcheck import LinkReport, check_site
from .presentations import (
    presentation_for,
    presentations_by_parameter,
    presentations_by_stylesheet,
)
from .publisher import (
    DEFAULT_CSS,
    Site,
    publish_multi_page,
    publish_single_page,
)
from .stylesheets import (
    COMMON_XSL,
    MULTI_PAGE_XSL,
    PRESENTATION_XSL,
    SINGLE_PAGE_XSL,
    stylesheet_resolver,
)
from .sourceview import SOURCE_VIEW_CSS, render_source_view
from .xslfo import (
    FoPage,
    FoRenderer,
    MODEL_FO_XSL,
    model_to_fo,
    render_fo_pages,
)
from .treeview import (
    render_schema_tree,
    render_schema_tree_html,
    schema_tree,
)

__all__ = [
    "FoPage",
    "FoRenderer",
    "MODEL_FO_XSL",
    "model_to_fo",
    "render_fo_pages",
    "BrowserSimulator",
    "ClientBundle",
    "ClientResponse",
    "RepositoryClient",
    "RetriesExhausted",
    "RetryPolicy",
    "client_bundle",
    "server_side",
    "SOURCE_VIEW_CSS",
    "render_source_view",
    "LinkReport",
    "check_site",
    "presentation_for",
    "presentations_by_parameter",
    "presentations_by_stylesheet",
    "DEFAULT_CSS",
    "Site",
    "publish_multi_page",
    "publish_single_page",
    "COMMON_XSL",
    "MULTI_PAGE_XSL",
    "PRESENTATION_XSL",
    "SINGLE_PAGE_XSL",
    "stylesheet_resolver",
    "render_schema_tree",
    "render_schema_tree_html",
    "schema_tree",
]
