"""Different presentations of one model (Fig. 5, §4).

The paper's Fig. 5 shows a single XML document (a model with two fact
classes sharing dimensions) transformed into *different presentations* —
one HTML page per fact class showing only the information relevant to
that fact class.  Footnote 8 notes both implementation options:

* :func:`presentations_by_parameter` — one stylesheet receiving a
  ``factclass`` parameter, applied once per fact class;
* :func:`presentations_by_stylesheet` — one (generated) stylesheet per
  presentation, each with the fact class id baked in.

Both produce the same pages; a test asserts it.
"""

from __future__ import annotations

from ..mdm.model import GoldModel
from ..mdm.xml_io import model_to_document
from ..xslt import Transformer, compile_stylesheet
from .publisher import DEFAULT_CSS, Site
from .stylesheets import PRESENTATION_XSL, stylesheet_resolver

__all__ = ["presentations_by_parameter", "presentations_by_stylesheet",
           "presentation_for"]


def presentation_for(model: GoldModel, fact_ref: str) -> str:
    """The HTML presentation of one fact class of *model*."""
    fact = model.fact_class(fact_ref)
    document = model_to_document(model)
    sheet = compile_stylesheet(PRESENTATION_XSL,
                               resolver=stylesheet_resolver)
    result = Transformer(sheet).transform(document,
                                          params={"factclass": fact.id})
    return result.serialize()


def presentations_by_parameter(model: GoldModel) -> Site:
    """One presentation page per fact class via the parameterised sheet."""
    document = model_to_document(model)
    sheet = compile_stylesheet(PRESENTATION_XSL,
                               resolver=stylesheet_resolver)
    transformer = Transformer(sheet)
    site = Site()
    for fact in model.facts:
        result = transformer.transform(document,
                                       params={"factclass": fact.id})
        site.pages[f"presentation-{fact.id}.html"] = result.serialize()
    site.pages["gold.css"] = DEFAULT_CSS
    return site


def presentations_by_stylesheet(model: GoldModel) -> Site:
    """One presentation page per fact class via per-fact stylesheets.

    Each generated stylesheet fixes the parameter's default value, which
    is exactly how one would maintain one stylesheet per presentation.
    """
    document = model_to_document(model)
    site = Site()
    for fact in model.facts:
        specialised = PRESENTATION_XSL.replace(
            "<xsl:param name=\"factclass\" select=\"''\"/>",
            f"<xsl:param name=\"factclass\" select=\"'{fact.id}'\"/>")
        sheet = compile_stylesheet(specialised,
                                   resolver=stylesheet_resolver)
        result = Transformer(sheet).transform(document)
        site.pages[f"presentation-{fact.id}.html"] = result.serialize()
    site.pages["gold.css"] = DEFAULT_CSS
    return site
