"""The XSLT stylesheets of §4.

Three stylesheets reproduce the paper's two processing approaches plus
the parameterised-presentation variant of footnote 8:

* :data:`MULTI_PAGE_XSL` — XSLT 1.1 with ``xsl:document`` (the Instant
  Saxon approach): a collection of linked HTML pages — the model
  overview (Fig. 6.1), one page per fact class (Fig. 6.2), floating
  additivity pages (Fig. 6.3), one page per dimension class (Fig. 6.4)
  and per classification level;
* :data:`SINGLE_PAGE_XSL` — XSLT 1.0 (the MSXML approach): one HTML page
  with internal ``#anchor`` links carrying the same information;
* :data:`PRESENTATION_XSL` — a single stylesheet taking a ``factclass``
  parameter and emitting the presentation for that fact class only,
  omitting dimensions it does not share (Fig. 5).

All three include :data:`COMMON_XSL` (via ``xsl:include``), which holds
the shared row templates — look of the tables follows the paper's
fragments (``bgcolor="#00FFFF"`` rows, ``mintcream`` pages).
"""

from __future__ import annotations

__all__ = ["COMMON_XSL", "MULTI_PAGE_XSL", "SINGLE_PAGE_XSL",
           "PRESENTATION_XSL", "stylesheet_resolver"]

#: Shared templates included by every presentation stylesheet.
COMMON_XSL = """<?xml version="1.0"?>
<xsl:stylesheet version="1.1"
    xmlns:xsl="http://www.w3.org/1999/XSL/Transform">

  <xsl:key name="dimclass" match="dimclass" use="@id"/>
  <xsl:key name="factclass" match="factclass" use="@id"/>
  <xsl:key name="level" match="asoclevel | catlevel" use="@id"/>
  <xsl:key name="anylevel" match="asoclevel | catlevel | dimclass"
           use="@id"/>

  <!-- One measure row; mirrors the paper's factatt template. -->
  <xsl:template match="factatt" mode="row">
    <tr bgcolor="#00FFFF">
      <td><font size="2"><xsl:value-of select="@name"/></font></td>
      <td><font size="2"><xsl:value-of select="@type"/></font></td>
      <td><font size="2"><xsl:value-of select="@isoid"/></font></td>
      <td><font size="2"><xsl:value-of select="@isderived"/></font></td>
      <td><font size="2"><xsl:value-of select="@atomic"/></font></td>
      <td><font size="2"><xsl:value-of select="@derivationrule"/></font></td>
      <td><font size="2"><xsl:value-of select="@description"/></font></td>
    </tr>
  </xsl:template>

  <xsl:template match="dimatt" mode="row">
    <tr bgcolor="#00FFFF">
      <td><font size="2"><xsl:value-of select="@name"/></font></td>
      <td><font size="2"><xsl:value-of select="@type"/></font></td>
      <td><font size="2">
        <xsl:if test="@oid = 'true'">{OID}</xsl:if>
        <xsl:if test="@d = 'true'">{D}</xsl:if>
      </font></td>
      <td><font size="2"><xsl:value-of select="@description"/></font></td>
    </tr>
  </xsl:template>

  <xsl:template match="method" mode="row">
    <tr bgcolor="#E0FFFF">
      <td><font size="2">
        <xsl:value-of select="@name"/>
        <xsl:text>(</xsl:text>
        <xsl:for-each select="param">
          <xsl:if test="position() &gt; 1">, </xsl:if>
          <xsl:value-of select="@name"/> : <xsl:value-of select="@type"/>
        </xsl:for-each>
        <xsl:text>) : </xsl:text>
        <xsl:value-of select="@returntype"/>
      </font></td>
      <td><font size="2"><xsl:value-of select="@visibility"/></font></td>
    </tr>
  </xsl:template>

  <!-- The textual form of one additivity rule (Fig. 6.3 content). -->
  <xsl:template match="additivity" mode="describe">
    <li>
      <b><xsl:value-of select="key('dimclass', @dimclass)/@name"/></b>
      <xsl:text>: </xsl:text>
      <xsl:choose>
        <xsl:when test="@isnot = 'true'">not additive</xsl:when>
        <xsl:otherwise>
          <xsl:if test="@issum = 'true'"> SUM</xsl:if>
          <xsl:if test="@ismax = 'true'"> MAX</xsl:if>
          <xsl:if test="@ismin = 'true'"> MIN</xsl:if>
          <xsl:if test="@isavg = 'true'"> AVG</xsl:if>
          <xsl:if test="@iscount = 'true'"> COUNT</xsl:if>
        </xsl:otherwise>
      </xsl:choose>
    </li>
  </xsl:template>

  <!-- Relation row: the multiplicity/strictness/completeness summary. -->
  <xsl:template match="relationasoc" mode="row">
    <xsl:param name="linker" select="'page'"/>
    <tr bgcolor="#00FFFF">
      <td><font size="2">
        <xsl:choose>
          <xsl:when test="$linker = 'anchor'">
            <a href="#{@child}">
              <xsl:value-of select="key('anylevel', @child)/@name"/>
            </a>
          </xsl:when>
          <xsl:otherwise>
            <a href="{@child}.html">
              <xsl:value-of select="key('anylevel', @child)/@name"/>
            </a>
          </xsl:otherwise>
        </xsl:choose>
      </font></td>
      <td><font size="2">
        <xsl:value-of select="@rolea"/> : <xsl:value-of select="@roleb"/>
      </font></td>
      <td><font size="2">
        <xsl:choose>
          <xsl:when test="@rolea = 'M' and @roleb = 'M'">non-strict</xsl:when>
          <xsl:otherwise>strict</xsl:otherwise>
        </xsl:choose>
        <xsl:if test="@completeness = 'true'"> {completeness}</xsl:if>
      </font></td>
    </tr>
  </xsl:template>

  <!-- General model information table (Fig. 6.1). -->
  <xsl:template name="model-info">
    <table border="1" cellspacing="0">
      <tr><td><b>Name</b></td>
          <td><xsl:value-of select="/goldmodel/@name"/></td></tr>
      <tr><td><b>Creation date</b></td>
          <td><xsl:value-of select="/goldmodel/@creationdate"/></td></tr>
      <tr><td><b>Last modified</b></td>
          <td><xsl:value-of select="/goldmodel/@lastmodified"/></td></tr>
      <tr><td><b>Description</b></td>
          <td><xsl:value-of select="/goldmodel/@description"/></td></tr>
      <tr><td><b>Responsible</b></td>
          <td><xsl:value-of select="/goldmodel/@responsible"/></td></tr>
    </table>
  </xsl:template>

  <!-- Measures table of one fact class. -->
  <xsl:template name="fact-measures">
    <xsl:param name="linker" select="'page'"/>
    <xsl:if test="factatts/factatt and /goldmodel/@showatts = 'true'">
      <h3>Measures</h3>
      <table border="1" cellspacing="0">
        <tr bgcolor="#C0C0C0">
          <th>name</th><th>type</th><th>OID</th><th>derived</th>
          <th>atomic</th><th>derivation rule</th><th>description</th>
        </tr>
        <xsl:for-each select="factatts/factatt">
          <xsl:choose>
            <xsl:when test="additivity">
              <tr bgcolor="#00FFFF">
                <td><font size="2">
                  <xsl:choose>
                    <xsl:when test="$linker = 'anchor'">
                      <a href="#{@id}-additivity">
                        <xsl:value-of select="@name"/></a>
                    </xsl:when>
                    <xsl:otherwise>
                      <a href="{@id}-additivity.html">
                        <xsl:value-of select="@name"/></a>
                    </xsl:otherwise>
                  </xsl:choose>
                </font></td>
                <td><font size="2"><xsl:value-of select="@type"/></font></td>
                <td><font size="2"><xsl:value-of select="@isoid"/></font></td>
                <td><font size="2">
                  <xsl:value-of select="@isderived"/></font></td>
                <td><font size="2"><xsl:value-of select="@atomic"/></font></td>
                <td><font size="2">
                  <xsl:value-of select="@derivationrule"/></font></td>
                <td><font size="2">
                  <xsl:value-of select="@description"/></font></td>
              </tr>
            </xsl:when>
            <xsl:otherwise>
              <xsl:apply-templates select="." mode="row"/>
            </xsl:otherwise>
          </xsl:choose>
        </xsl:for-each>
      </table>
    </xsl:if>
  </xsl:template>

  <!-- Methods table of any class. -->
  <xsl:template name="class-methods">
    <xsl:if test="methods/method and /goldmodel/@showmethods = 'true'">
      <h3>Methods</h3>
      <table border="1" cellspacing="0">
        <tr bgcolor="#C0C0C0"><th>signature</th><th>visibility</th></tr>
        <xsl:apply-templates select="methods/method" mode="row"/>
      </table>
    </xsl:if>
  </xsl:template>

  <!-- Shared aggregations table of one fact class (Fig. 6.2). -->
  <xsl:template name="fact-aggregations">
    <xsl:param name="linker" select="'page'"/>
    <xsl:if test="sharedaggs/sharedagg">
      <h3>Shared aggregations</h3>
      <table border="1" cellspacing="0">
        <tr bgcolor="#C0C0C0">
          <th>dimension</th><th>roles</th><th>kind</th>
        </tr>
        <xsl:for-each select="sharedaggs/sharedagg">
          <tr bgcolor="#00FFFF">
            <td><font size="2">
              <xsl:choose>
                <xsl:when test="$linker = 'anchor'">
                  <a href="#{@dimclass}">
                    <xsl:value-of
                        select="key('dimclass', @dimclass)/@name"/></a>
                </xsl:when>
                <xsl:otherwise>
                  <a href="{@dimclass}.html">
                    <xsl:value-of
                        select="key('dimclass', @dimclass)/@name"/></a>
                </xsl:otherwise>
              </xsl:choose>
            </font></td>
            <td><font size="2">
              <xsl:value-of select="@rolea"/> :
              <xsl:value-of select="@roleb"/>
            </font></td>
            <td><font size="2">
              <xsl:choose>
                <xsl:when test="@rolea = 'M' and @roleb = 'M'">
                  many-to-many</xsl:when>
                <xsl:otherwise>many-to-one</xsl:otherwise>
              </xsl:choose>
            </font></td>
          </tr>
        </xsl:for-each>
      </table>
    </xsl:if>
  </xsl:template>

  <!-- Attribute + relation body shared by dimensions and levels. -->
  <xsl:template name="dim-attributes">
    <xsl:if test="dimatts/dimatt and /goldmodel/@showatts = 'true'">
      <h3>Attributes</h3>
      <table border="1" cellspacing="0">
        <tr bgcolor="#C0C0C0">
          <th>name</th><th>type</th><th>constraints</th><th>description</th>
        </tr>
        <xsl:apply-templates select="dimatts/dimatt" mode="row"/>
      </table>
    </xsl:if>
  </xsl:template>

  <xsl:template name="dim-relations">
    <xsl:param name="linker" select="'page'"/>
    <xsl:if test="relationasocs/relationasoc">
      <h3>Association relationships</h3>
      <table border="1" cellspacing="0">
        <tr bgcolor="#C0C0C0">
          <th>rolls up to</th><th>multiplicity</th><th>constraints</th>
        </tr>
        <xsl:apply-templates select="relationasocs/relationasoc" mode="row">
          <xsl:with-param name="linker" select="$linker"/>
        </xsl:apply-templates>
      </table>
    </xsl:if>
  </xsl:template>

</xsl:stylesheet>
"""

#: XSLT 1.1 multi-page site (Instant Saxon approach; Figs. 6.1–6.4).
MULTI_PAGE_XSL = """<?xml version="1.0"?>
<xsl:stylesheet version="1.1"
    xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:include href="common.xsl"/>
  <xsl:output method="html" indent="no"/>

  <xsl:template match="/">
    <html>
      <head>
        <title><xsl:value-of select="goldmodel/@name"/></title>
        <link rel="stylesheet" type="text/css" href="gold.css"/>
      </head>
      <body bgcolor="mintcream">
        <h1>Multidimensional model:
          <xsl:value-of select="goldmodel/@name"/></h1>
        <xsl:call-template name="model-info"/>

        <h2>Fact classes</h2>
        <table border="1" cellspacing="0">
          <tr bgcolor="#C0C0C0"><th>name</th><th>description</th></tr>
          <xsl:for-each select="goldmodel/factclasses/factclass">
            <tr>
              <td><font size="2"><a href="{@id}.html">
                <xsl:value-of select="@name"/></a></font></td>
              <td><font size="2">
                <xsl:value-of select="@description"/></font></td>
            </tr>
          </xsl:for-each>
        </table>

        <h2>Dimension classes</h2>
        <table border="1" cellspacing="0">
          <tr bgcolor="#C0C0C0">
            <th>name</th><th>time?</th><th>description</th></tr>
          <xsl:for-each select="goldmodel/dimclasses/dimclass">
            <tr>
              <td><font size="2"><a href="{@id}.html">
                <xsl:value-of select="@name"/></a></font></td>
              <td><font size="2"><xsl:value-of select="@istime"/></font></td>
              <td><font size="2">
                <xsl:value-of select="@description"/></font></td>
            </tr>
          </xsl:for-each>
        </table>

        <xsl:if test="goldmodel/cubeclasses/cubeclass">
          <h2>Cube classes</h2>
          <table border="1" cellspacing="0">
            <tr bgcolor="#C0C0C0">
              <th>name</th><th>fact</th><th>description</th></tr>
            <xsl:for-each select="goldmodel/cubeclasses/cubeclass">
              <tr>
                <td><font size="2"><a href="{@id}.html">
                  <xsl:value-of select="@name"/></a></font></td>
                <td><font size="2"><a href="{@fact}.html">
                  <xsl:value-of
                      select="key('factclass', @fact)/@name"/></a></font></td>
                <td><font size="2">
                  <xsl:value-of select="@description"/></font></td>
              </tr>
            </xsl:for-each>
          </table>
        </xsl:if>

        <xsl:apply-templates
            select="goldmodel/factclasses/factclass" mode="page"/>
        <xsl:apply-templates
            select="goldmodel/dimclasses/dimclass" mode="page"/>
        <xsl:apply-templates
            select="goldmodel/cubeclasses/cubeclass" mode="page"/>
      </body>
    </html>
  </xsl:template>

  <!-- Fact class page (Fig. 6.2), one document per fact class. -->
  <xsl:template match="factclass" mode="page">
    <xsl:variable name="url" select="@id"/>
    <xsl:document href="{$url}.html">
      <html>
        <head><title>Fact class: <xsl:value-of select="@name"/></title>
          <link rel="stylesheet" type="text/css" href="gold.css"/></head>
        <body bgcolor="mintcream">
          <p><a href="index.html">&#8592; model</a></p>
          <h1>Fact class: <xsl:value-of select="@name"/></h1>
          <p><xsl:value-of select="@description"/></p>
          <xsl:call-template name="fact-measures"/>
          <xsl:call-template name="class-methods"/>
          <xsl:call-template name="fact-aggregations"/>
        </body>
      </html>
    </xsl:document>
    <!-- Floating additivity pages (Fig. 6.3). -->
    <xsl:for-each select="factatts/factatt[additivity]">
      <xsl:document href="{@id}-additivity.html">
        <html>
          <head><title>Additivity of <xsl:value-of select="@name"/></title>
            <link rel="stylesheet" type="text/css" href="gold.css"/></head>
          <body bgcolor="lightyellow">
            <h2>Additivity rules of measure
              <xsl:value-of select="@name"/></h2>
            <ul>
              <xsl:apply-templates select="additivity" mode="describe"/>
            </ul>
            <p><a href="{../../@id}.html">back to
              <xsl:value-of select="../../@name"/></a></p>
          </body>
        </html>
      </xsl:document>
    </xsl:for-each>
  </xsl:template>

  <!-- Dimension class page (Fig. 6.4). -->
  <xsl:template match="dimclass" mode="page">
    <xsl:document href="{@id}.html">
      <html>
        <head><title>Dimension class: <xsl:value-of select="@name"/></title>
          <link rel="stylesheet" type="text/css" href="gold.css"/></head>
        <body bgcolor="mintcream">
          <p><a href="index.html">&#8592; model</a></p>
          <h1>Dimension class: <xsl:value-of select="@name"/>
            <xsl:if test="@istime = 'true'"> (time dimension)</xsl:if></h1>
          <p><xsl:value-of select="@description"/></p>
          <xsl:call-template name="dim-attributes"/>
          <xsl:call-template name="class-methods"/>
          <xsl:call-template name="dim-relations"/>
          <xsl:if test="asoclevels/asoclevel">
            <h3>Association levels</h3>
            <ul>
              <xsl:for-each select="asoclevels/asoclevel">
                <li><a href="{@id}.html">
                  <xsl:value-of select="@name"/></a></li>
              </xsl:for-each>
            </ul>
          </xsl:if>
          <xsl:if test="catlevels/catlevel">
            <h3>Categorization levels</h3>
            <ul>
              <xsl:for-each select="catlevels/catlevel">
                <li><a href="{@id}.html">
                  <xsl:value-of select="@name"/></a></li>
              </xsl:for-each>
            </ul>
          </xsl:if>
        </body>
      </html>
    </xsl:document>
    <xsl:apply-templates
        select="asoclevels/asoclevel | catlevels/catlevel" mode="page"/>
  </xsl:template>

  <!-- Level pages, reachable from the dimension page. -->
  <xsl:template match="asoclevel | catlevel" mode="page">
    <xsl:document href="{@id}.html">
      <html>
        <head><title>Level: <xsl:value-of select="@name"/></title>
          <link rel="stylesheet" type="text/css" href="gold.css"/></head>
        <body bgcolor="mintcream">
          <p><a href="{../../@id}.html">&#8592;
            <xsl:value-of select="../../@name"/></a></p>
          <h1>Classification level: <xsl:value-of select="@name"/></h1>
          <p><xsl:value-of select="@description"/></p>
          <xsl:call-template name="dim-attributes"/>
          <xsl:call-template name="class-methods"/>
          <xsl:call-template name="dim-relations"/>
        </body>
      </html>
    </xsl:document>
  </xsl:template>

  <!-- Cube class pages (the dynamic part of the model). -->
  <xsl:template match="cubeclass" mode="page">
    <xsl:document href="{@id}.html">
      <html>
        <head><title>Cube class: <xsl:value-of select="@name"/></title>
          <link rel="stylesheet" type="text/css" href="gold.css"/></head>
        <body bgcolor="mintcream">
          <p><a href="index.html">&#8592; model</a></p>
          <h1>Cube class: <xsl:value-of select="@name"/></h1>
          <p>Over fact class <a href="{@fact}.html">
            <xsl:value-of select="key('factclass', @fact)/@name"/></a></p>
          <xsl:if test="measures/measure">
            <h3>Measures</h3>
            <ul>
              <xsl:for-each select="measures/measure">
                <li><xsl:value-of select="@aggregation"/>
                  (<xsl:value-of select="@ref"/>)</li>
              </xsl:for-each>
            </ul>
          </xsl:if>
          <xsl:if test="slices/slice">
            <h3>Slice</h3>
            <ul>
              <xsl:for-each select="slices/slice">
                <li><xsl:value-of select="@attribute"/>
                  <xsl:text> </xsl:text>
                  <xsl:value-of select="@operator"/>
                  <xsl:text> </xsl:text>
                  <xsl:value-of select="@value"/></li>
              </xsl:for-each>
            </ul>
          </xsl:if>
          <xsl:if test="dices/dice">
            <h3>Dice</h3>
            <ul>
              <xsl:for-each select="dices/dice">
                <li><a href="{@dimclass}.html">
                  <xsl:value-of
                      select="key('dimclass', @dimclass)/@name"/></a>
                  at level
                  <xsl:value-of select="key('anylevel', @level)/@name"/></li>
              </xsl:for-each>
            </ul>
          </xsl:if>
        </body>
      </html>
    </xsl:document>
  </xsl:template>

</xsl:stylesheet>
"""

#: XSLT 1.0 single page with internal anchors (MSXML approach).
SINGLE_PAGE_XSL = """<?xml version="1.0"?>
<xsl:stylesheet version="1.0"
    xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:include href="common.xsl"/>
  <xsl:output method="html" indent="no"/>

  <xsl:template match="/">
    <html>
      <head>
        <title><xsl:value-of select="goldmodel/@name"/></title>
        <link rel="stylesheet" type="text/css" href="gold.css"/>
      </head>
      <body bgcolor="mintcream">
        <h1>Multidimensional model:
          <xsl:value-of select="goldmodel/@name"/></h1>
        <xsl:call-template name="model-info"/>

        <h2>Contents</h2>
        <ul>
          <xsl:for-each select="goldmodel/factclasses/factclass">
            <li><a href="#{@id}">Fact class
              <xsl:value-of select="@name"/></a></li>
          </xsl:for-each>
          <xsl:for-each select="goldmodel/dimclasses/dimclass">
            <li><a href="#{@id}">Dimension class
              <xsl:value-of select="@name"/></a></li>
          </xsl:for-each>
        </ul>

        <xsl:apply-templates
            select="goldmodel/factclasses/factclass" mode="section"/>
        <xsl:apply-templates
            select="goldmodel/dimclasses/dimclass" mode="section"/>
      </body>
    </html>
  </xsl:template>

  <xsl:template match="factclass" mode="section">
    <hr/>
    <h2><a name="{@id}"/>Fact class: <xsl:value-of select="@name"/></h2>
    <p><xsl:value-of select="@description"/></p>
    <xsl:call-template name="fact-measures">
      <xsl:with-param name="linker" select="'anchor'"/>
    </xsl:call-template>
    <xsl:call-template name="class-methods"/>
    <xsl:call-template name="fact-aggregations">
      <xsl:with-param name="linker" select="'anchor'"/>
    </xsl:call-template>
    <xsl:for-each select="factatts/factatt[additivity]">
      <h4><a name="{@id}-additivity"/>Additivity rules of
        <xsl:value-of select="@name"/></h4>
      <ul>
        <xsl:apply-templates select="additivity" mode="describe"/>
      </ul>
    </xsl:for-each>
  </xsl:template>

  <xsl:template match="dimclass" mode="section">
    <hr/>
    <h2><a name="{@id}"/>Dimension class: <xsl:value-of select="@name"/>
      <xsl:if test="@istime = 'true'"> (time dimension)</xsl:if></h2>
    <p><xsl:value-of select="@description"/></p>
    <xsl:call-template name="dim-attributes"/>
    <xsl:call-template name="class-methods"/>
    <xsl:call-template name="dim-relations">
      <xsl:with-param name="linker" select="'anchor'"/>
    </xsl:call-template>
    <xsl:apply-templates
        select="asoclevels/asoclevel | catlevels/catlevel" mode="section"/>
  </xsl:template>

  <xsl:template match="asoclevel | catlevel" mode="section">
    <h3><a name="{@id}"/>Level: <xsl:value-of select="@name"/></h3>
    <xsl:call-template name="dim-attributes"/>
    <xsl:call-template name="class-methods"/>
    <xsl:call-template name="dim-relations">
      <xsl:with-param name="linker" select="'anchor'"/>
    </xsl:call-template>
  </xsl:template>

</xsl:stylesheet>
"""

#: One parameterised stylesheet producing a per-fact-class presentation
#: (Fig. 5 / footnote 8): pass param ``factclass`` (a fact class id).
PRESENTATION_XSL = """<?xml version="1.0"?>
<xsl:stylesheet version="1.0"
    xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:include href="common.xsl"/>
  <xsl:output method="html" indent="no"/>

  <xsl:param name="factclass" select="''"/>

  <xsl:template match="/">
    <xsl:variable name="fact"
        select="goldmodel/factclasses/factclass[@id = $factclass]"/>
    <html>
      <head>
        <title>Presentation: <xsl:value-of select="$fact/@name"/></title>
        <link rel="stylesheet" type="text/css" href="gold.css"/>
      </head>
      <body bgcolor="mintcream">
        <xsl:choose>
          <xsl:when test="$fact">
            <h1>Presentation of fact class
              <xsl:value-of select="$fact/@name"/></h1>
            <p>Model: <xsl:value-of select="goldmodel/@name"/></p>
            <xsl:for-each select="$fact">
              <xsl:call-template name="fact-measures">
                <xsl:with-param name="linker" select="'anchor'"/>
              </xsl:call-template>
              <xsl:call-template name="class-methods"/>
              <xsl:call-template name="fact-aggregations">
                <xsl:with-param name="linker" select="'anchor'"/>
              </xsl:call-template>
              <xsl:for-each select="factatts/factatt[additivity]">
                <h4><a name="{@id}-additivity"/>Additivity rules of
                  <xsl:value-of select="@name"/></h4>
                <ul>
                  <xsl:apply-templates select="additivity" mode="describe"/>
                </ul>
              </xsl:for-each>
            </xsl:for-each>
            <h2>Dimensions of this fact class</h2>
            <!-- Only the dimensions this fact class shares (Fig. 5):
                 the other dimensions of the model are not shown. -->
            <xsl:for-each select="goldmodel/dimclasses/dimclass">
              <xsl:if test="$fact/sharedaggs/sharedagg/@dimclass = @id">
                <hr/>
                <h3><a name="{@id}"/>Dimension:
                  <xsl:value-of select="@name"/></h3>
                <xsl:call-template name="dim-attributes"/>
                <xsl:call-template name="dim-relations">
                  <xsl:with-param name="linker" select="'anchor'"/>
                </xsl:call-template>
                <xsl:for-each
                    select="asoclevels/asoclevel | catlevels/catlevel">
                  <h4><a name="{@id}"/>Level:
                    <xsl:value-of select="@name"/></h4>
                  <xsl:call-template name="dim-attributes"/>
                  <xsl:call-template name="dim-relations">
                    <xsl:with-param name="linker" select="'anchor'"/>
                  </xsl:call-template>
                </xsl:for-each>
              </xsl:if>
            </xsl:for-each>
          </xsl:when>
          <xsl:otherwise>
            <h1>Unknown fact class</h1>
            <p>No fact class with id
              '<xsl:value-of select="$factclass"/>' in model
              <xsl:value-of select="goldmodel/@name"/>.</p>
          </xsl:otherwise>
        </xsl:choose>
      </body>
    </html>
  </xsl:template>

</xsl:stylesheet>
"""


def stylesheet_resolver(href: str) -> str:
    """Resolve ``xsl:include`` hrefs used by the built-in stylesheets."""
    if href == "common.xsl":
        return COMMON_XSL
    raise KeyError(f"unknown stylesheet include {href!r}")
