"""Link checking for generated sites (verifies Fig. 6 navigation).

The paper's claim "whenever it is possible, there is a link connecting
different pieces of information" is testable: every ``href`` and every
``#anchor`` in a generated site must resolve.  :func:`check_site` scans
each HTML page (with the stdlib HTML parser, since the ``html`` output
method legitimately leaves void elements unclosed) and reports dangling
references and orphan pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html.parser import HTMLParser

from .publisher import PROFILE_PAGE, Site

__all__ = ["LinkReport", "check_site"]


@dataclass
class LinkReport:
    """Outcome of checking a site's link graph."""

    #: (page, target) pairs whose target page does not exist.
    broken_pages: list[tuple[str, str]] = field(default_factory=list)
    #: (page, anchor) pairs whose #anchor does not exist on the target.
    broken_anchors: list[tuple[str, str]] = field(default_factory=list)
    #: Pages with no inbound link (excluding index.html).
    orphans: list[str] = field(default_factory=list)
    total_links: int = 0

    @property
    def ok(self) -> bool:
        """True when no broken links or anchors were found."""
        return not self.broken_pages and not self.broken_anchors


class _PageScanner(HTMLParser):
    """Collects hrefs and anchors from one page."""

    def __init__(self) -> None:
        super().__init__()
        self.links: list[str] = []
        self.anchors: set[str] = set()

    def handle_starttag(self, tag: str, attrs) -> None:
        attributes = dict(attrs)
        identifier = attributes.get("id")
        if identifier:
            self.anchors.add(identifier)
        if tag == "a":
            anchor = attributes.get("name")
            if anchor:
                self.anchors.add(anchor)
            href = attributes.get("href")
            if href and not href.startswith(
                    ("http:", "https:", "mailto:")) and \
                    not href.endswith(".css"):
                self.links.append(href)


def check_site(site: Site) -> LinkReport:
    """Check every internal link and anchor of *site*."""
    report = LinkReport()
    anchors: dict[str, set[str]] = {}
    links: dict[str, list[str]] = {}

    for name, content in site.pages.items():
        if not name.endswith(".html"):
            continue
        scanner = _PageScanner()
        scanner.feed(content)
        anchors[name] = scanner.anchors
        links[name] = scanner.links

    inbound: set[str] = set()
    for page, page_links in links.items():
        for href in page_links:
            report.total_links += 1
            target, _, fragment = href.partition("#")
            target_page = target or page
            if target_page not in site.pages:
                report.broken_pages.append((page, href))
                continue
            inbound.add(target_page)
            if fragment and fragment not in anchors.get(target_page, set()):
                report.broken_anchors.append((page, href))

    for name in site.pages:
        if name.endswith(".html") and name != "index.html" and \
                name != PROFILE_PAGE and name not in inbound:
            # The profile page is an additive diagnostic emitted while
            # profiling is on; model pages never link to it by design
            # (their bytes are pinned), so it is not an orphan.
            report.orphans.append(name)
    return report
