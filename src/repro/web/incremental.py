"""Incremental diff-driven republish (edit-heavy CASE-tool workload).

A cold multi-page publish renders every page of the site even though a
designer's edit typically touches one fact or dimension class.  This
module makes republish cost proportional to the edit:

1. :func:`publish_with_index` performs a cold publish with a
   :class:`~repro.xml.tracking.ReadTracker` installed, recording which
   *units* of the model document each page read.  Units are the designed
   partition of the goldmodel vocabulary — ``factclass`` / ``dimclass``
   / ``cubeclass`` / ``asoclevel`` / ``catlevel`` subtrees, keyed
   ``"tag#id"``; anything above them is the catch-all ``"model"`` unit.
   The page → units map is persisted as a :class:`DependencyIndex`
   alongside the build (a ``.goldcase-index.json`` dotfile on disk, an
   in-memory entry keyed by content hash in the server cache).

2. :func:`republish_incremental` diffs the stored baseline document
   against the edited model (:mod:`repro.xml.diff`), classifies the
   changed elements into dirty units, and re-renders only the pages
   whose recorded units intersect them.  The render runs with a *page
   filter*: the engines skip the body of every clean ``xsl:document``
   (while still recording its href), so the spine plus dirty pages are
   produced and every clean page reuses the previous build's bytes.

Byte-identity to a cold publish is the contract — proven continuously by
the ``incremental_differential`` testkit family — and every situation
the diff/index machinery cannot prove safe falls back to a full
(re-tracked) publish, counted under
``publish.incremental.fallback:reason=...``:

* ``index_version`` / ``stylesheet_mismatch`` — index from another
  format or stylesheet;
* ``baseline_mismatch`` — reused bytes on disk no longer hash to what
  the index recorded (someone edited the output directory);
* ``missing_page`` — the previous build lacks a page the index names;
* ``structural`` — a whole unit was added or removed (the page set
  itself changes);
* ``diff_error`` — the documents cannot be diffed;
* ``page_set_changed`` — the filtered render encountered a different
  set of ``xsl:document`` hrefs than the previous build (tracking
  soundness guard);
* ``error:<Type>`` — any unexpected failure during the attempt.

Escape hatches mirror the compiled-engine ones: ``goldcase publish/serve
--no-incremental``, the ``GOLDCASE_NO_INCREMENTAL`` environment
variable, and :func:`set_incremental_enabled`.  The ``publish.diff``
fault point fires at entry — *outside* the graceful-fallback region — so
the chaos harness can fail an incremental rebuild outright and exercise
the server's serve-stale degradation path.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import fields as dataclass_fields

from ..faults import FAULTS, fault_point
from ..mdm.model import GoldModel
from ..mdm.xml_io import (
    _write_cube,
    _write_dimension,
    _write_fact,
    _write_level,
    model_to_document,
)
from ..xml.serializer import pretty_print
from ..obs.recorder import RECORDER as _REC
from ..xml import tracking as _tracking
from ..xml.diff import DiffError, DocumentDiff, diff_documents
from ..xml.dom import Document, Element
from ..xml.parser import parse as parse_xml
from .publisher import (
    DEFAULT_CSS,
    PROFILE_PAGE,
    Site,
    _attach_profile,
    publish_multi_page,
)
from .stylesheets import MULTI_PAGE_XSL

__all__ = ["DependencyIndex", "INDEX_FILENAME", "MODEL_UNIT", "UNIT_TAGS",
           "build_index", "classify_node", "incremental_enabled",
           "set_incremental_enabled", "publish_with_index",
           "republish_incremental"]

#: Dotfile written next to a published site holding the dependency index.
INDEX_FILENAME = ".goldcase-index.json"

INDEX_VERSION = 1

#: Element tags that root a dependency unit.  The nearest
#: ancestor-or-self unit wins (levels nest inside dimensions), so a read
#: of a level's subtree depends on the level, while a read of the
#: dimension's own attributes depends on the dimension.
UNIT_TAGS = frozenset(
    {"factclass", "dimclass", "cubeclass", "asoclevel", "catlevel"})

#: Catch-all unit for everything above the unit tags (the goldmodel
#: root, section containers, whole-document reads).
MODEL_UNIT = "model"

_DIFF_FAULT = fault_point(
    "publish.diff", "raise/delay at the entry of an incremental republish "
                    "(incremental.py)")

_override: bool | None = None

#: Guards DependencyIndex._take_baseline (ownership handover of the
#: baseline DOM); held for two attribute accesses, never during work.
_BASELINE_LOCK = threading.Lock()


def incremental_enabled() -> bool:
    """True unless disabled via set_incremental_enabled(False) or the
    GOLDCASE_NO_INCREMENTAL environment variable."""
    if _override is not None:
        return _override
    return os.environ.get("GOLDCASE_NO_INCREMENTAL", "") in ("", "0")


def set_incremental_enabled(value: bool | None) -> None:
    """Override incremental publishing (None restores the env default)."""
    global _override
    _override = value


def classify_node(node: object) -> str:
    """The dependency unit of a DOM node (nearest unit ancestor-or-self)."""
    current = node
    while current is not None:
        if getattr(current, "kind", None) == "element" and \
                current.name in UNIT_TAGS:
            identifier = current.get_attribute("id")
            if identifier is None:
                return MODEL_UNIT
            return f"{current.name}#{identifier}"
        current = current.parent
    return MODEL_UNIT


def _hash_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class DependencyIndex:
    """Page-level dependency index persisted alongside a build.

    The baseline the next edit diffs against is carried in whichever
    form the producer already holds — the :class:`GoldModel` itself
    (server steady state), the baseline DOM, or the serialized XML (an
    index reloaded from the dotfile) — and each of the other forms is
    derived lazily and cached.  Serializing or parsing the baseline
    eagerly would cost several times a warm publish per rebuild and
    erase the incremental speedup.
    """

    __slots__ = ("stylesheet_hash", "pages", "page_names", "page_hashes",
                 "version", "_model_xml", "_baseline", "_baseline_model")

    def __init__(self, stylesheet_hash: str, model_xml: str | None = None,
                 pages: dict[str, list[str]] | None = None,
                 page_names: list[str] | None = None,
                 page_hashes: dict[str, str] | None = None,
                 version: int = INDEX_VERSION, *,
                 baseline_document: Document | None = None,
                 baseline_model: GoldModel | None = None) -> None:
        if model_xml is None and baseline_model is None:
            raise ValueError(
                "DependencyIndex needs model_xml or baseline_model")
        #: sha256 of the stylesheet text the build used.
        self.stylesheet_hash = stylesheet_hash
        #: page name → sorted unit keys it read ("index.html" = spine).
        self.pages = pages if pages is not None else {}
        #: every rendered html page of the build (includes index.html,
        #: excludes gold.css and the additive profile page).
        self.page_names = page_names if page_names is not None else []
        #: page name → sha256 of its text, for verifying reused bytes.
        self.page_hashes = page_hashes if page_hashes is not None else {}
        self.version = version
        self._model_xml = model_xml
        self._baseline = baseline_document
        self._baseline_model = baseline_model

    @property
    def model_xml(self) -> str:
        """The baseline model serialized to XML, derived on first use."""
        if self._model_xml is None:
            self._model_xml = pretty_print(
                model_to_document(self._baseline_model))
        return self._model_xml

    @property
    def content_hash(self) -> str:
        """Identity of the baseline model this index was recorded for."""
        return _hash_text(self.model_xml)

    def baseline_document(self) -> Document:
        """The baseline model as a DOM, parsed or rebuilt at most once."""
        if self._baseline is None:
            if self._baseline_model is not None:
                self._baseline = model_to_document(self._baseline_model)
            else:
                self._baseline = parse_xml(self.model_xml)
        return self._baseline

    def _take_baseline(self) -> Document | None:
        """Hand over the baseline DOM for in-place patching, at most once.

        The incremental republisher advances the baseline by swapping
        dirty subtrees directly in this document, after which it no
        longer represents *this* index's model — so ownership transfers
        atomically: the taker gets the document, the index keeps only
        its (immutable) model and lazily rebuilds a DOM if ever asked
        again.  Concurrent rebuilds from one index therefore never
        patch the same tree twice; the loser just pays a full build.
        """
        with _BASELINE_LOCK:
            document, self._baseline = self._baseline, None
            return document

    def to_json(self) -> str:
        return json.dumps({
            "format": "goldcase-dependency-index",
            "version": self.version,
            "stylesheet_hash": self.stylesheet_hash,
            "model_xml": self.model_xml,
            "pages": {name: sorted(units)
                      for name, units in self.pages.items()},
            "page_names": sorted(self.page_names),
            "page_hashes": self.page_hashes,
        }, indent=1, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str | bytes) -> "DependencyIndex":
        data = json.loads(text)
        if not isinstance(data, dict) or \
                data.get("format") != "goldcase-dependency-index":
            raise ValueError("not a goldcase dependency index")
        if data.get("version") != INDEX_VERSION:
            raise ValueError(
                f"unsupported dependency-index version {data.get('version')!r}")
        return cls(
            stylesheet_hash=data["stylesheet_hash"],
            model_xml=data["model_xml"],
            pages={name: list(units)
                   for name, units in data["pages"].items()},
            page_names=list(data["page_names"]),
            page_hashes=dict(data.get("page_hashes", {})),
            version=data["version"],
        )


class _Fallback(Exception):
    """Internal: abandon the incremental attempt for a counted reason."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _contains_unit(element: Element) -> bool:
    """True when *element* is, or contains, a whole dependency unit."""
    stack = [element]
    while stack:
        node = stack.pop()
        if node.name in UNIT_TAGS:
            return True
        stack.extend(c for c in node.children if isinstance(c, Element))
    return False


def build_index(tracker: "_tracking.ReadTracker", page_names: list[str],
                page_hashes: dict[str, str], *, stylesheet: str,
                baseline_model: GoldModel,
                baseline_document: Document | None = None,
                model_xml: str | None = None) -> DependencyIndex:
    """Assemble a :class:`DependencyIndex` from a tracked publish.

    ``page_names`` are the rendered html pages; ``page_hashes`` their
    unquoted sha256 text hashes (the server derives them from its
    ETags).  ``baseline_model`` is what the next edit diffs against;
    its XML serialization is derived lazily when needed.  Used by
    :func:`publish_with_index` and by the server cache, which tracks its
    full builds itself around its own build function.
    """
    pages: dict[str, list[str]] = {}
    for name in page_names:
        key = "" if name == "index.html" else name
        units = tracker.deps.get(key)
        # A page with no recorded reads can never be dirtied; depend on
        # the catch-all unit so it is conservatively always republished.
        pages[name] = sorted(units) if units else [MODEL_UNIT]
    return DependencyIndex(
        stylesheet_hash=_hash_text(stylesheet),
        model_xml=model_xml,
        pages=pages,
        page_names=sorted(page_names),
        page_hashes=dict(page_hashes),
        baseline_document=baseline_document,
        baseline_model=baseline_model,
    )


def _index_from_tracker(tracker: "_tracking.ReadTracker", site: Site,
                        stylesheet: str, baseline_model: GoldModel,
                        baseline_document: Document | None = None
                        ) -> DependencyIndex:
    page_names = sorted(name for name in site.pages
                        if name.endswith(".html") and name != PROFILE_PAGE)
    return build_index(
        tracker, page_names,
        {name: _hash_text(site.pages[name]) for name in page_names},
        stylesheet=stylesheet, baseline_model=baseline_model,
        baseline_document=baseline_document)


def publish_with_index(model: GoldModel, *,
                       stylesheet: str = MULTI_PAGE_XSL
                       ) -> tuple[Site, DependencyIndex]:
    """Cold multi-page publish that also records a dependency index."""
    tracker = _tracking.ReadTracker(classify_node)
    with _REC.span("publish.with_index", model=model.name):
        # Build the DOM outside the tracked render and keep it on the
        # index: the next incremental republish patches it in place
        # instead of rebuilding the whole document.
        document = model_to_document(model)
        with _tracking.installed(tracker):
            site = publish_multi_page(model, stylesheet=stylesheet,
                                      document=document)
        index = _index_from_tracker(tracker, site, stylesheet, model,
                                    baseline_document=document)
    return site, index


def republish_incremental(model: GoldModel,
                          previous_pages: dict[str, str],
                          index: DependencyIndex, *,
                          stylesheet: str = MULTI_PAGE_XSL,
                          verify_pages: bool = False
                          ) -> tuple[Site, DependencyIndex, dict]:
    """Republish *model*, reusing previous bytes for unaffected pages.

    ``previous_pages`` is the previous build (page name → text) and
    *index* its dependency index.  Returns ``(site, new_index, info)``
    where ``info["mode"]`` is ``"reuse"`` (no effective change — every
    byte reused), ``"incremental"`` (spine + dirty pages re-rendered) or
    ``"full"`` (fell back to a cold tracked publish;
    ``info["reason"]`` says why).  With ``verify_pages`` the reused
    bytes are hash-checked against the index first (for builds reloaded
    from disk).

    The ``publish.diff`` fault point fires at entry, before the
    graceful-fallback region: an injected fault fails the republish
    outright (the server's serve-stale degradation covers it) instead of
    silently degrading to a full publish.
    """
    if FAULTS.enabled:
        FAULTS.hit(_DIFF_FAULT)
    with _REC.span("publish.incremental", model=model.name):
        try:
            return _attempt(model, previous_pages, index, stylesheet,
                            verify_pages)
        except _Fallback as exc:
            reason = exc.reason
        except DiffError:
            reason = "diff_error"
        except Exception as exc:  # noqa: BLE001 — counted, then full publish
            reason = f"error:{type(exc).__name__}"
        if _REC.enabled:
            _REC.count(f"publish.incremental.fallback:reason={reason}")
        site, new_index = publish_with_index(model, stylesheet=stylesheet)
        info = {"mode": "full", "reason": reason,
                "pages_rebuilt": len(new_index.page_names),
                "pages_reused": 0}
        return site, new_index, info


def _attempt(model: GoldModel, previous_pages: dict[str, str],
             index: DependencyIndex, stylesheet: str,
             verify_pages: bool) -> tuple[Site, DependencyIndex, dict]:
    if index.version != INDEX_VERSION:
        raise _Fallback("index_version")
    if index.stylesheet_hash != _hash_text(stylesheet):
        raise _Fallback("stylesheet_mismatch")
    for name in index.page_names:
        if name not in previous_pages:
            raise _Fallback("missing_page")
    if verify_pages:
        for name in index.page_names:
            recorded = index.page_hashes.get(name)
            if recorded is None or \
                    _hash_text(previous_pages[name]) != recorded:
                raise _Fallback("baseline_mismatch")

    baseline_model = index._baseline_model
    if baseline_model is not None:
        # Fast path (server steady state): diff the models directly at
        # unit granularity — each unit's document subtree is a pure
        # function of its dataclass, so dataclass inequality
        # over-approximates subtree inequality (sound, never under-dirty).
        new_document = None
        with _REC.span("publish.diff"):
            dirty_units = _dirty_units_from_models(baseline_model, model)
        if not dirty_units:
            return _reuse_everything(previous_pages, index)
        if MODEL_UNIT not in dirty_units:
            # Every change lives inside unit subtrees, so the new DOM is
            # the baseline DOM with just those subtrees regenerated.
            # Ownership of the baseline transfers here (_take_baseline);
            # without a materialized baseline the full build below runs.
            base = index._take_baseline()
            if base is not None:
                new_document = _patch_document(base, model, dirty_units)
        if new_document is None:
            new_document = model_to_document(model)
    else:
        # Slow path (index reloaded from the dotfile): diff the model
        # documents themselves.
        new_document = model_to_document(model)
        if pretty_print(new_document) == index.model_xml:
            return _reuse_everything(previous_pages, index)
        old_document = index.baseline_document()
        with _REC.span("publish.diff"):
            diff = diff_documents(old_document, new_document)
        if diff.is_empty:
            return _reuse_everything(previous_pages, index)
        dirty_units = _dirty_units(diff)

    dirty_pages = {
        name for name in index.page_names
        if name != "index.html" and
        (dirty_units & set(index.pages.get(name) or [MODEL_UNIT]))
    }

    tracker = _tracking.ReadTracker(classify_node, page_filter=dirty_pages)
    with _tracking.installed(tracker):
        partial = publish_multi_page(model, stylesheet=stylesheet,
                                     document=new_document)

    previous_secondary = {n for n in index.page_names if n != "index.html"}
    if set(tracker.encountered) != previous_secondary:
        raise _Fallback("page_set_changed")

    site = Site(messages=list(partial.messages))
    reused = 0
    for name in index.page_names:
        if name == "index.html" or name in dirty_pages:
            site.pages[name] = partial.pages[name]
        else:
            site.pages[name] = previous_pages[name]
            reused += 1
    site.pages["gold.css"] = DEFAULT_CSS
    if _REC.enabled:
        _attach_profile(site)

    pages: dict[str, list[str]] = {}
    page_hashes: dict[str, str] = {}
    for name in index.page_names:
        if name == "index.html" or name in dirty_pages:
            key = "" if name == "index.html" else name
            units = tracker.deps.get(key)
            pages[name] = sorted(units) if units else [MODEL_UNIT]
            page_hashes[name] = _hash_text(site.pages[name])
        else:
            pages[name] = list(index.pages.get(name) or [MODEL_UNIT])
            # Reused bytes keep their recorded hash (when the old index
            # has none — e.g. hand-edited dotfile — hash them now).
            recorded = index.page_hashes.get(name)
            page_hashes[name] = recorded if recorded is not None else \
                _hash_text(site.pages[name])
    new_index = DependencyIndex(
        stylesheet_hash=index.stylesheet_hash,
        pages=pages,
        page_names=list(index.page_names),
        page_hashes=page_hashes,
        baseline_document=new_document,
        baseline_model=model,
    )
    if _REC.enabled:
        _REC.count("publish.incremental.pages_rebuilt",
                   1 + len(dirty_pages))
        _REC.count("publish.incremental.pages_reused", reused)
    info = {"mode": "incremental", "reason": None,
            "pages_rebuilt": 1 + len(dirty_pages), "pages_reused": reused,
            "dirty_units": sorted(dirty_units)}
    return site, new_index, info


def _reuse_everything(previous_pages: dict[str, str],
                      index: DependencyIndex
                      ) -> tuple[Site, DependencyIndex, dict]:
    site = Site()
    for name in index.page_names:
        site.pages[name] = previous_pages[name]
    site.pages["gold.css"] = DEFAULT_CSS
    if _REC.enabled:
        _attach_profile(site)
        _REC.count("publish.incremental.pages_reused",
                   len(index.page_names))
    info = {"mode": "reuse", "reason": None, "pages_rebuilt": 0,
            "pages_reused": len(index.page_names)}
    return site, index, info


def _dirty_units(diff: DocumentDiff) -> set[str]:
    """Classify diff records into dirty units; whole-unit addition or
    removal changes the page set itself → structural fallback."""
    dirty: set[str] = set()
    for record in diff.added + diff.removed:
        if _contains_unit(record.element):
            raise _Fallback("structural")
        dirty.add(classify_node(record.element))
    for record in diff.changed:
        dirty.add(classify_node(record.element))
    return dirty


#: Model fields whose contents are covered by finer-grained units below.
_MODEL_NESTED = frozenset({"facts", "dimensions", "cubes"})
_DIM_NESTED = frozenset({"levels", "categorization_levels"})


def _own_fields_differ(old: object, new: object,
                       nested: frozenset[str]) -> bool:
    """Dataclass inequality restricted to the fields outside *nested*."""
    return any(getattr(old, spec.name) != getattr(new, spec.name)
               for spec in dataclass_fields(old)
               if spec.name not in nested)


def _diff_keyed_units(tag: str, old_items: list, new_items: list,
                      dirty: set[str]) -> None:
    """Mirror of the document diff over one unit collection: id-set
    changes are structural, same-id reorders dirty the container's unit
    (the model), same-id inequality dirties that unit."""
    old_map = {item.id: item for item in old_items}
    new_map = {item.id: item for item in new_items}
    if set(old_map) != set(new_map) or len(old_map) != len(old_items) \
            or len(new_map) != len(new_items):
        raise _Fallback("structural")
    if [item.id for item in old_items] != [item.id for item in new_items]:
        dirty.add(MODEL_UNIT)
    for key, item in new_map.items():
        if old_map[key] != item:
            dirty.add(f"{tag}#{key}")


def _dirty_units_from_models(old: GoldModel, new: GoldModel) -> set[str]:
    """Dirty units straight from the model dataclasses (no DOM, no
    parse).  Equivalent to ``_dirty_units(diff_documents(...))`` because
    each unit's document subtree is a pure function of its dataclass;
    where the two disagree this one only *over*-dirties (e.g. a field
    the serializer normalizes away), which costs a rebuild, never a
    stale byte."""
    dirty: set[str] = set()
    if _own_fields_differ(old, new, _MODEL_NESTED):
        dirty.add(MODEL_UNIT)
    _diff_keyed_units("factclass", old.facts, new.facts, dirty)
    _diff_keyed_units("cubeclass", old.cubes, new.cubes, dirty)

    old_dims = {dim.id: dim for dim in old.dimensions}
    new_dims = {dim.id: dim for dim in new.dimensions}
    if set(old_dims) != set(new_dims) or \
            len(old_dims) != len(old.dimensions) or \
            len(new_dims) != len(new.dimensions):
        raise _Fallback("structural")
    if [d.id for d in old.dimensions] != [d.id for d in new.dimensions]:
        dirty.add(MODEL_UNIT)
    for key, new_dim in new_dims.items():
        old_dim = old_dims[key]
        if old_dim is new_dim or old_dim == new_dim:
            continue
        if _own_fields_differ(old_dim, new_dim, _DIM_NESTED):
            dirty.add(f"dimclass#{key}")
        # Levels are units nested inside the dimension's subtree: the
        # level containers (asoclevels/catlevels) classify to the
        # dimension, the level elements to themselves.
        for tag, old_levels, new_levels in (
                ("asoclevel", old_dim.levels, new_dim.levels),
                ("catlevel", old_dim.categorization_levels,
                 new_dim.categorization_levels)):
            old_map = {lvl.id: lvl for lvl in old_levels}
            new_map = {lvl.id: lvl for lvl in new_levels}
            if set(old_map) != set(new_map) or \
                    len(old_map) != len(old_levels) or \
                    len(new_map) != len(new_levels):
                raise _Fallback("structural")
            if [lvl.id for lvl in old_levels] != \
                    [lvl.id for lvl in new_levels]:
                dirty.add(f"dimclass#{key}")
            for level_id, level in new_map.items():
                if old_map[level_id] != level:
                    dirty.add(f"{tag}#{level_id}")
    return dirty


def _patch_document(document: Document, model: GoldModel,
                    dirty: set[str]) -> Document | None:
    """The edited model's DOM, by swapping regenerated *dirty* subtrees
    into the (consumed) baseline DOM.

    Only valid when ``MODEL_UNIT`` is not dirty: the spine — root
    attributes, section containers, sibling order — is then identical
    between baseline and edited model, and each unit subtree is a pure
    function of its model object, so regenerating just the dirty ones
    yields exactly ``model_to_document(model)``.  Returns None (caller
    rebuilds from scratch) when a unit key is ambiguous — the same
    ``tag#id`` on two model objects or two document elements — or
    cannot be located at all.  No mutation happens before every target
    has been resolved, so a bailout never leaves a half-patched tree.
    """
    builders: dict[tuple[str, str], list] = {}
    for fact in model.facts:
        builders.setdefault(("factclass", fact.id), []).append(
            lambda fact=fact: _write_fact(fact))
    for cube in model.cubes:
        builders.setdefault(("cubeclass", cube.id), []).append(
            lambda cube=cube: _write_cube(cube))
    for dim in model.dimensions:
        builders.setdefault(("dimclass", dim.id), []).append(
            lambda dim=dim: _write_dimension(dim))
        for tag, levels in (("asoclevel", dim.levels),
                            ("catlevel", dim.categorization_levels)):
            for level in levels:
                builders.setdefault((tag, level.id), []).append(
                    lambda level=level, tag=tag: _write_level(level, tag))

    wanted = {}
    for unit in dirty:
        tag, _, identifier = unit.partition("#")
        thunks = builders.get((tag, identifier))
        if thunks is None or len(thunks) != 1:
            return None
        wanted[(tag, identifier)] = thunks[0]

    found: dict[tuple[str, str], Element] = {}
    stack = list(document.children)
    while stack:
        node = stack.pop()
        if isinstance(node, Element):
            key = (node.name, node.get_attribute("id"))
            if key in wanted:
                if key in found:
                    return None
                found[key] = node
            stack.extend(node.children)
    if len(found) != len(wanted):
        return None

    # A dirty level inside a dirty dimension is covered twice: the
    # regenerated dimension subtree already carries the new level, and
    # the level's own swap then lands in the detached old subtree —
    # wasted but harmless, so replacement order does not matter.
    for key, thunk in wanted.items():
        old_element = found[key]
        parent = old_element.parent
        parent.insert_before(thunk(), old_element)
        parent.remove_child(old_element)
    return document
