"""In-memory star-schema storage for GOLD models.

The paper's CASE tool exports models "into a target commercial OLAP
tool"; this module is the stand-in target: a star schema instantiated
from a :class:`~repro.mdm.model.GoldModel`, with dimension members
arranged along the model's classification hierarchies (including
non-strict edges, where one member rolls up to several parents) and fact
rows that may reference several members of a many-to-many dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..mdm.dimensions import DimensionClass
from ..mdm.errors import ModelReferenceError, ModelStructureError
from ..mdm.model import GoldModel

__all__ = ["Member", "DimensionData", "FactRow", "FactTable", "StarSchema"]


@dataclass
class Member:
    """One member of one hierarchy level.

    ``attributes`` holds the level's attribute values (keyed by attribute
    name); ``parents`` maps a target level id to the keys of the parent
    member(s) there — more than one only along non-strict relationships.
    """

    key: object
    attributes: dict[str, object] = field(default_factory=dict)
    parents: dict[str, list[object]] = field(default_factory=dict)

    def parent_keys(self, level_id: str) -> list[object]:
        """Keys of this member's parents at *level_id* (may be empty)."""
        return self.parents.get(level_id, [])


class DimensionData:
    """All members of one dimension, organised per level.

    Level id ``dimension.id`` holds the finest-grain members the fact
    rows reference.
    """

    def __init__(self, dimension: DimensionClass) -> None:
        self.dimension = dimension
        self._levels: dict[str, dict[object, Member]] = {dimension.id: {}}
        for level in dimension.iter_levels():
            self._levels[level.id] = {}
        self._edges = {
            (source, relation.child): relation
            for source, _t, relation in dimension.hierarchy_edges()
            for _t in [relation.child]
        }

    # -- population -----------------------------------------------------------

    def add_member(self, level_ref: str, key: object,
                   attributes: Mapping[str, object] | None = None,
                   parents: Mapping[str, object | list[object]] | None = None
                   ) -> Member:
        """Add a member to *level_ref* (level id/name or the dimension).

        *parents* maps target level refs to a parent key or list of keys.
        """
        level_id = self._resolve_level(level_ref)
        store = self._levels[level_id]
        if key in store:
            raise ModelStructureError(
                f"duplicate member {key!r} at level {level_ref!r} of "
                f"dimension {self.dimension.name!r}")
        member = Member(key=key, attributes=dict(attributes or {}))
        for target_ref, parent_keys in (parents or {}).items():
            target_id = self._resolve_level(target_ref)
            if not isinstance(parent_keys, (list, tuple)):
                parent_keys = [parent_keys]
            member.parents[target_id] = list(parent_keys)
        store[key] = member
        return member

    def _resolve_level(self, ref: str) -> str:
        if ref in (self.dimension.id, self.dimension.name):
            return self.dimension.id
        return self.dimension.level(ref).id

    # -- access ------------------------------------------------------------------

    def members(self, level_ref: str) -> dict[object, Member]:
        """All members at *level_ref*, keyed by member key."""
        return self._levels[self._resolve_level(level_ref)]

    def member(self, level_ref: str, key: object) -> Member:
        """The member *key* at *level_ref* (raises when absent)."""
        store = self.members(level_ref)
        try:
            return store[key]
        except KeyError:
            raise ModelReferenceError(
                f"no member {key!r} at level {level_ref!r} of dimension "
                f"{self.dimension.name!r}") from None

    def size(self) -> int:
        """Total member count across all levels."""
        return sum(len(store) for store in self._levels.values())

    # -- hierarchy navigation ----------------------------------------------------------

    def ancestors_at(self, base_key: object, target_ref: str
                     ) -> list[Member]:
        """The ancestors of base member *base_key* at level *target_ref*.

        Follows parent links along any path of the DAG; returns several
        members when a non-strict relationship fans out, and an empty
        list for members whose hierarchy ends early (non-complete).
        """
        target_id = self._resolve_level(target_ref)
        if target_id == self.dimension.id:
            return [self.member(self.dimension.id, base_key)]

        found: dict[object, Member] = {}
        visited: set[tuple[str, object]] = set()
        stack: list[tuple[str, object]] = [(self.dimension.id, base_key)]
        while stack:
            level_id, key = stack.pop()
            if (level_id, key) in visited:
                continue
            visited.add((level_id, key))
            store = self._levels.get(level_id, {})
            member = store.get(key)
            if member is None:
                continue
            if level_id == target_id:
                found[key] = member
                continue
            for parent_level, parent_keys in member.parents.items():
                for parent_key in parent_keys:
                    stack.append((parent_level, parent_key))
        return list(found.values())


@dataclass
class FactRow:
    """One row of a fact table.

    ``coordinates`` maps dimension id to the member key(s) at the
    dimension's base level — a list of keys for many-to-many dimensions.
    ``values`` maps fact attribute names (measures and degenerate
    dimensions) to values.
    """

    coordinates: dict[str, object | list[object]]
    values: dict[str, object]

    def member_keys(self, dimension_id: str) -> list[object]:
        """Keys of the member(s) of *dimension_id* this row references."""
        keys = self.coordinates.get(dimension_id)
        if keys is None:
            return []
        if isinstance(keys, (list, tuple)):
            return list(keys)
        return [keys]


class FactTable:
    """All rows of one fact class."""

    def __init__(self, fact_id: str) -> None:
        self.fact_id = fact_id
        self.rows: list[FactRow] = []

    def append(self, coordinates: Mapping[str, object],
               values: Mapping[str, object]) -> FactRow:
        """Add one row; returns it."""
        row = FactRow(dict(coordinates), dict(values))
        self.rows.append(row)
        return row

    def __len__(self) -> int:
        return len(self.rows)


class StarSchema:
    """A populated star schema for one model."""

    def __init__(self, model: GoldModel) -> None:
        self.model = model
        self.dimensions: dict[str, DimensionData] = {
            dimension.id: DimensionData(dimension)
            for dimension in model.dimensions
        }
        self.facts: dict[str, FactTable] = {
            fact.id: FactTable(fact.id) for fact in model.facts
        }

    def dimension_data(self, ref: str) -> DimensionData:
        """Dimension data by dimension id or name."""
        dimension = self.model.dimension_class(ref)
        return self.dimensions[dimension.id]

    def fact_table(self, ref: str) -> FactTable:
        """Fact table by fact class id or name."""
        fact = self.model.fact_class(ref)
        return self.facts[fact.id]

    def insert_fact(self, fact_ref: str,
                    coordinates: Mapping[str, object],
                    values: Mapping[str, object],
                    *, check: bool = True) -> FactRow:
        """Insert a fact row, optionally checking referential integrity.

        Coordinate keys may use dimension ids or names; they are
        normalised to ids.
        """
        fact = self.model.fact_class(fact_ref)
        normalised: dict[str, object] = {}
        for ref, keys in coordinates.items():
            dimension = self.model.dimension_class(ref)
            normalised[dimension.id] = keys
        if check:
            self._check_row(fact.id, normalised, values)
        return self.facts[fact.id].append(normalised, values)

    def _check_row(self, fact_id: str, coordinates: dict[str, object],
                   values: Mapping[str, object]) -> None:
        fact = self.model.fact_class(fact_id)
        for aggregation in fact.aggregations:
            dimension_id = aggregation.dimension
            keys = coordinates.get(dimension_id)
            if keys is None:
                raise ModelStructureError(
                    f"fact {fact.name!r}: row is missing a coordinate for "
                    f"dimension {dimension_id!r}")
            key_list = keys if isinstance(keys, (list, tuple)) else [keys]
            if len(key_list) > 1 and not aggregation.many_to_many:
                raise ModelStructureError(
                    f"fact {fact.name!r}: several members for dimension "
                    f"{dimension_id!r}, but the shared aggregation is not "
                    "many-to-many")
            data = self.dimensions[dimension_id]
            for key in key_list:
                data.member(data.dimension.id, key)  # raises when absent
        for name in values:
            fact.attribute(name)  # raises when unknown

    def summary(self) -> dict[str, int]:
        """Row/member counts for reporting."""
        return {
            "fact_rows": sum(len(t) for t in self.facts.values()),
            "members": sum(d.size() for d in self.dimensions.values()),
        }
