"""OLAP execution substrate: the "commercial OLAP tool" stand-in.

Star-schema storage, synthetic data generation, a cube-class execution
engine enforcing additivity rules, and SQL DDL export (star and
snowflake layouts).
"""

from .dataexport import star_data_sql
from .engine import AdditivityError, CubeEngine, CubeResult, execute_cube
from .loader import generate_facts, populate_dimension, populate_star
from .sqlgen import snowflake_schema_sql, star_schema_sql
from .star import DimensionData, FactRow, FactTable, Member, StarSchema

__all__ = [
    "star_data_sql",
    "AdditivityError",
    "CubeEngine",
    "CubeResult",
    "execute_cube",
    "generate_facts",
    "populate_dimension",
    "populate_star",
    "snowflake_schema_sql",
    "star_schema_sql",
    "DimensionData",
    "FactRow",
    "FactTable",
    "Member",
    "StarSchema",
]
