"""Star / snowflake DDL export — the "commercial OLAP tool" target.

The paper's CASE tool "semi-automatically generates the implementation of
a MD model into a target commercial OLAP tool" (§1, footnote).  This
module is that export path with SQL as the target: it derives relational
schemas from a GOLD model in two classic layouts,

* **star** — one denormalised table per dimension (all hierarchy level
  attributes flattened in), one table per fact with foreign keys into the
  dimension tables; many-to-many dimensions get a bridge table;
* **snowflake** — one table per hierarchy level with foreign keys along
  the classification relationships.

Names are lower-cased identifiers derived from class names.
"""

from __future__ import annotations

from ..mdm.dimensions import DimensionClass, Level
from ..mdm.facts import FactClass
from ..mdm.model import GoldModel

__all__ = ["star_schema_sql", "snowflake_schema_sql"]

_TYPE_MAP = {
    "number": "NUMERIC",
    "integer": "INTEGER",
    "string": "VARCHAR(255)",
    "date": "DATE",
    "boolean": "BOOLEAN",
}


def _sql_type(model_type: str) -> str:
    return _TYPE_MAP.get(model_type.lower(), "VARCHAR(255)")


def _identifier(name: str) -> str:
    out = "".join(ch.lower() if ch.isalnum() else "_" for ch in name)
    return out.strip("_") or "t"


def star_schema_sql(model: GoldModel) -> str:
    """DDL for the denormalised star layout."""
    statements: list[str] = [f"-- Star schema for model: {model.name}"]
    for dimension in model.dimensions:
        statements.append(_star_dimension_table(dimension))
    for fact in model.facts:
        statements.append(_fact_table(model, fact, snowflake=False))
        statements.extend(_bridge_tables(model, fact))
    return "\n\n".join(statements) + "\n"


def snowflake_schema_sql(model: GoldModel) -> str:
    """DDL for the normalised snowflake layout."""
    statements: list[str] = [f"-- Snowflake schema for model: {model.name}"]
    for dimension in model.dimensions:
        for level in dimension.levels:
            statements.append(_level_table(dimension, level))
        statements.append(_snowflake_dimension_table(dimension))
    for fact in model.facts:
        statements.append(_fact_table(model, fact, snowflake=True))
        statements.extend(_bridge_tables(model, fact))
    return "\n\n".join(statements) + "\n"


def _star_dimension_table(dimension: DimensionClass) -> str:
    table = f"dim_{_identifier(dimension.name)}"
    columns = [f"  {table}_key INTEGER PRIMARY KEY"]
    for attribute in dimension.attributes:
        columns.append(
            f"  {_identifier(attribute.name)} {_sql_type(attribute.type)}"
            f"{' NOT NULL' if attribute.is_oid else ''}")
    for level in dimension.levels:
        prefix = _identifier(level.name)
        for attribute in level.attributes:
            columns.append(
                f"  {prefix}_{_identifier(attribute.name)} "
                f"{_sql_type(attribute.type)}")
    # Categorization subtypes add nullable columns plus a discriminator.
    if dimension.categorization_levels:
        columns.append(f"  {table}_subtype VARCHAR(64)")
        for level in dimension.categorization_levels:
            prefix = _identifier(level.name)
            for attribute in level.attributes:
                columns.append(
                    f"  {prefix}_{_identifier(attribute.name)} "
                    f"{_sql_type(attribute.type)}")
    body = ",\n".join(columns)
    return f"CREATE TABLE {table} (\n{body}\n);"


def _level_table(dimension: DimensionClass, level: Level) -> str:
    table = f"dim_{_identifier(dimension.name)}_{_identifier(level.name)}"
    columns = [f"  {table}_key INTEGER PRIMARY KEY"]
    for attribute in level.attributes:
        columns.append(
            f"  {_identifier(attribute.name)} {_sql_type(attribute.type)}"
            f"{' NOT NULL' if attribute.is_oid else ''}")
    for relation in level.relations:
        target = dimension.level(relation.child)
        target_table = (f"dim_{_identifier(dimension.name)}_"
                        f"{_identifier(target.name)}")
        if relation.strict:
            columns.append(
                f"  {_identifier(target.name)}_key INTEGER "
                f"REFERENCES {target_table}")
        # Non-strict relationships need a bridge; emitted below.
    body = ",\n".join(columns)
    statement = f"CREATE TABLE {table} (\n{body}\n);"
    for relation in level.relations:
        if not relation.strict:
            target = dimension.level(relation.child)
            statement += "\n\n" + _hierarchy_bridge(dimension, level, target)
    return statement


def _hierarchy_bridge(dimension: DimensionClass, source: Level,
                      target: Level) -> str:
    s = f"dim_{_identifier(dimension.name)}_{_identifier(source.name)}"
    t = f"dim_{_identifier(dimension.name)}_{_identifier(target.name)}"
    bridge = f"{s}_{_identifier(target.name)}_bridge"
    return (f"-- non-strict relationship {source.name} -> {target.name}\n"
            f"CREATE TABLE {bridge} (\n"
            f"  {s}_key INTEGER REFERENCES {s},\n"
            f"  {t}_key INTEGER REFERENCES {t},\n"
            f"  PRIMARY KEY ({s}_key, {t}_key)\n);")


def _snowflake_dimension_table(dimension: DimensionClass) -> str:
    table = f"dim_{_identifier(dimension.name)}"
    columns = [f"  {table}_key INTEGER PRIMARY KEY"]
    for attribute in dimension.attributes:
        columns.append(
            f"  {_identifier(attribute.name)} {_sql_type(attribute.type)}"
            f"{' NOT NULL' if attribute.is_oid else ''}")
    for relation in dimension.relations:
        target = dimension.level(relation.child)
        target_table = (f"dim_{_identifier(dimension.name)}_"
                        f"{_identifier(target.name)}")
        if relation.strict:
            columns.append(
                f"  {_identifier(target.name)}_key INTEGER "
                f"REFERENCES {target_table}")
    body = ",\n".join(columns)
    return f"CREATE TABLE {table} (\n{body}\n);"


def _fact_table(model: GoldModel, fact: FactClass,
                *, snowflake: bool) -> str:
    table = f"fact_{_identifier(fact.name)}"
    columns = []
    keys = []
    for aggregation in fact.aggregations:
        if aggregation.many_to_many:
            continue  # handled by a bridge table
        dimension = model.dimension_class(aggregation.dimension)
        dim_table = f"dim_{_identifier(dimension.name)}"
        column = f"{dim_table}_key"
        columns.append(f"  {column} INTEGER NOT NULL REFERENCES {dim_table}")
        keys.append(column)
    for attribute in fact.attributes:
        column = (f"  {_identifier(attribute.name)} "
                  f"{_sql_type(attribute.type)}")
        if attribute.is_oid:
            # Degenerate dimensions join the primary key (ticket/line).
            column += " NOT NULL"
            keys.append(_identifier(attribute.name))
        columns.append(column)
    if keys:
        columns.append(f"  PRIMARY KEY ({', '.join(keys)})")
    body = ",\n".join(columns)
    return f"CREATE TABLE {table} (\n{body}\n);"


def _bridge_tables(model: GoldModel, fact: FactClass) -> list[str]:
    statements = []
    table = f"fact_{_identifier(fact.name)}"
    for aggregation in fact.aggregations:
        if not aggregation.many_to_many:
            continue
        dimension = model.dimension_class(aggregation.dimension)
        dim_table = f"dim_{_identifier(dimension.name)}"
        bridge = f"{table}_{_identifier(dimension.name)}_bridge"
        statements.append(
            f"-- many-to-many fact/dimension relationship\n"
            f"CREATE TABLE {bridge} (\n"
            f"  {table}_row INTEGER NOT NULL,\n"
            f"  {dim_table}_key INTEGER NOT NULL REFERENCES {dim_table},\n"
            f"  PRIMARY KEY ({table}_row, {dim_table}_key)\n);")
    return statements
