"""The OLAP query service: datasets + engine + aggregate cache.

:class:`OlapService` is what the HTTP layer talks to.  It owns

* a per-``(model, seed)`` star-schema cache, validated against the
  model's content hash (a re-upload regenerates the dataset lazily,
  like every other content-keyed cache in the repo);
* the :class:`~repro.olap.service.aggcache.AggregateCache` of
  materialized results;
* the execution path: resolve the canonical query, synthesize (or
  reuse) the dataset, run the :class:`~repro.olap.engine.CubeEngine`,
  render JSON + XML, compute ETags — all under the cache's
  ``olap.execute`` span, fault point, and coalescing machinery.

It deliberately does not import anything from :mod:`repro.server`;
the server imports *it*.
"""

from __future__ import annotations

import threading

from ...faults import FAULTS, fault_point
from ...mdm.enums import AggregationKind, Operator
from ...mdm.model import GoldModel
from ...obs.recorder import RECORDER as _REC
from ..engine import CubeEngine
from ..star import StarSchema
from .aggcache import AggregateCache, AggregateEntry
from .datagen import DatasetConfig, synthesize_star
from .query import QuerySpec
from .render import (
    render_json,
    render_xml,
    result_etag,
    result_payload,
)

__all__ = ["OlapService", "RESULT_FORMATS"]

_EXECUTE_FAULT = fault_point(
    "olap.execute", "raise/delay inside a materialized-aggregate "
                    "execution, before the engine runs (service.py)")

#: The formats every materialized entry carries.
RESULT_FORMATS = ("json", "xml")


class OlapService:
    """Queries over derived datasets, materialized and coalesced."""

    def __init__(self, *, dataset: DatasetConfig | None = None,
                 max_concurrent_executions: int | None = None,
                 execute_wait_s: float | None = None,
                 buildstore=None) -> None:
        self.dataset = dataset or DatasetConfig()
        self.cache = AggregateCache(
            max_concurrent_executions=max_concurrent_executions,
            execute_wait_s=execute_wait_s,
            buildstore=buildstore)
        self._meta_lock = threading.Lock()
        #: (name, seed) → (content_hash, star).
        self._stars: dict[tuple[str, int], tuple[str, StarSchema]] = {}
        self._star_locks: dict[tuple[str, int], threading.Lock] = {}
        self._star_stats = {"hits": 0, "generations": 0}

    # -- datasets ----------------------------------------------------------

    def _star_lock(self, key: tuple[str, int]) -> threading.Lock:
        with self._meta_lock:
            lock = self._star_locks.get(key)
            if lock is None:
                lock = self._star_locks[key] = threading.Lock()
            return lock

    def star_for(self, name: str, content_hash: str, model: GoldModel,
                 seed: int) -> StarSchema:
        """The dataset for ``(name, seed)``, regenerated on hash roll.

        Generation serializes per key so N concurrent first-queries
        synthesize once; a failed generation leaves no entry behind
        (the next request retries).
        """
        key = (name, seed)
        with self._meta_lock:
            cached = self._stars.get(key)
        if cached is not None and cached[0] == content_hash:
            with self._meta_lock:
                self._star_stats["hits"] += 1
            return cached[1]
        with self._star_lock(key):
            with self._meta_lock:
                cached = self._stars.get(key)
            if cached is not None and cached[0] == content_hash:
                with self._meta_lock:
                    self._star_stats["hits"] += 1
                return cached[1]
            star = synthesize_star(model, content_hash, seed,
                                   self.dataset)
            with self._meta_lock:
                self._stars[key] = (content_hash, star)
                self._star_stats["generations"] += 1
            return star

    # -- execution ---------------------------------------------------------

    def execute(self, name: str, content_hash: str, model: GoldModel,
                spec: QuerySpec) -> tuple[AggregateEntry, str]:
        """Materialize *spec* (already canonical) for one model record.

        Returns ``(entry, outcome)`` — see
        :meth:`AggregateCache.entry` for outcomes and failure modes.
        """
        query_key = spec.query_key()

        def _run() -> AggregateEntry:
            with _REC.span("olap.execute", model=name,
                           key=query_key[:12]):
                if FAULTS.enabled:
                    FAULTS.hit(_EXECUTE_FAULT)
                star = self.star_for(name, content_hash, model,
                                     spec.seed)
                result = CubeEngine(star).execute(spec.to_cube(model))
                payload = result_payload(
                    model, content_hash, spec, result,
                    dataset=star.summary())
                renderings = {"json": render_json(payload),
                              "xml": render_xml(payload)}
                return AggregateEntry(
                    name=name, content_hash=content_hash,
                    seed=spec.seed, query_key=query_key,
                    renderings=renderings,
                    etags={fmt: result_etag(data)
                           for fmt, data in renderings.items()},
                    row_count=payload["row_count"],
                    sliced_out=payload["sliced_out"])

        return self.cache.entry(name, content_hash, spec.seed,
                                query_key, _run)

    # -- introspection -----------------------------------------------------

    def schema_payload(self, model: GoldModel) -> dict:
        """The queryable surface of one model: what can be asked."""
        facts = []
        for fact in model.facts:
            dimensions = []
            for dimension_id in fact.dimension_ids:
                dimension = model.dimension_class(dimension_id)
                aggregation = fact.aggregation_for(dimension_id)
                dimensions.append({
                    "id": dimension.id,
                    "name": dimension.name,
                    "many_to_many": bool(
                        aggregation and aggregation.many_to_many),
                    "levels": [
                        {"id": level.id, "name": level.name,
                         "attributes": [a.name
                                        for a in level.attributes]}
                        for level in dimension.iter_levels()],
                    "attributes": [a.name
                                   for a in dimension.attributes],
                })
            facts.append({
                "id": fact.id,
                "name": fact.name,
                "measures": [
                    {"id": a.id, "name": a.name, "type": a.type,
                     "degenerate": a.is_oid,
                     "additivity": [rule.describe()
                                    for rule in a.additivity]}
                    for a in fact.attributes],
                "dimensions": dimensions,
            })
        return {
            "model": model.name,
            "facts": facts,
            "cubes": [{"id": cube.id, "name": cube.name,
                       "fact": cube.fact}
                      for cube in model.cubes],
            "operators": [o.value for o in Operator],
            "aggregations": [k.value for k in AggregationKind],
            "dataset": {
                "members_per_level": self.dataset.members_per_level,
                "rows_per_fact": self.dataset.rows_per_fact,
                "non_strict_fanout": self.dataset.non_strict_fanout,
                "non_complete_rate": self.dataset.non_complete_rate,
            },
        }

    def dataset_info(self) -> dict:
        """The star-schema cache in ``cache_info()`` shape."""
        with self._meta_lock:
            return {"hits": self._star_stats["hits"],
                    "misses": self._star_stats["generations"],
                    "currsize": len(self._stars), "maxsize": None}

    def stats(self) -> dict:
        stats = {"aggregates": self.cache.stats(),
                 "datasets": self.dataset_info()}
        return stats

    def invalidate(self, name: str) -> int:
        """Drop the datasets and materializations of one model."""
        removed = self.cache.invalidate(name)
        with self._meta_lock:
            for key in [k for k in self._stars if k[0] == name]:
                del self._stars[key]
            for key in [k for k in self._star_locks if k[0] == name]:
                del self._star_locks[key]
        return removed
