"""The materialized-aggregate cache (DESIGN.md §16).

Mirrors the site cache's degradation contract (``server/cache.py``) for
the compute-bound traffic class:

* **Keyed on content.**  Entries are keyed ``(model name, data seed,
  canonical query key)`` and carry the content hash they were computed
  from; a lookup whose record hash matches is a lock-free dict read.
  A re-upload rolls the hash, so every materialized aggregate of that
  model lazily recomputes on next touch.
* **Coalesced executions.**  Executions serialize on a per-key lock:
  N clients issuing the same fresh query perform exactly one
  execution.  Waiters snapshot an execution token before blocking, so
  a waiter that slept through a *failed* attempt shares its outcome
  (stale entry or error) instead of re-running a doomed execution.
* **Degrades, never hangs.**  A bounded slot pool sheds executions
  that cannot start within the wait budget
  (:class:`QueryOverloadError` → 503 + Retry-After); a *failed*
  execution (an ``olap.generate``/``olap.execute`` fault, or a broken
  model) serves the previous — stale — entry when one exists, and
  raises :class:`QueryExecutionError` when there is nothing to fall
  back to.  The next request after a failure retries; the cache is
  never poisoned.

The cache does not import the server's telemetry (the server imports
*us*): :meth:`AggregateCache.entry` returns an *outcome* string
(``"hit"``/``"executed"``/``"coalesced"``/``"stale"``) and the HTTP
layer translates outcomes into request flags and response headers.
Local counters power ``/olap/<model>/stats`` with the obs recorder
off; ``olap.cache.*`` counters mirror them when profiling.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from ...obs.recorder import RECORDER as _REC

__all__ = ["AggregateCache", "AggregateEntry", "QueryOverloadError",
           "QueryExecutionError"]


class QueryOverloadError(Exception):
    """An execution was shed: no slot within the wait budget."""

    def __init__(self, name: str, query_key: str,
                 retry_after_s: int) -> None:
        super().__init__(
            f"query {query_key[:12]} on {name} shed under load; retry "
            f"in {retry_after_s}s")
        self.name = name
        self.query_key = query_key
        self.retry_after_s = retry_after_s


class QueryExecutionError(Exception):
    """An execution failed and no stale entry exists to serve."""

    def __init__(self, name: str, query_key: str, cause: str) -> None:
        super().__init__(
            f"query execution failed for {name}/{query_key[:12]}: "
            f"{cause}")
        self.name = name
        self.query_key = query_key
        self.cause = cause


@dataclass(frozen=True)
class AggregateEntry:
    """One materialized result: renderings, ETags, and provenance."""

    name: str
    content_hash: str
    seed: int
    query_key: str
    #: format ("json" / "xml") → encoded result bytes.
    renderings: dict[str, bytes]
    #: format → strong ETag of those bytes.
    etags: dict[str, str]
    row_count: int
    sliced_out: int


class AggregateCache:
    """Content-hash keyed cache of :class:`AggregateEntry` objects."""

    #: Bound on concurrent executions across all models — executions
    #: are compute-bound (dataset synthesis + aggregation), so a burst
    #: degrades to shedding instead of a convoy starving the serving
    #: threads.
    MAX_CONCURRENT_EXECUTIONS = 4
    #: How long a request may wait for a slot before being shed.
    EXECUTE_WAIT_S = 5.0
    #: The Retry-After hint attached to shed responses.
    RETRY_AFTER_S = 1

    def __init__(self, *, max_concurrent_executions: int | None = None,
                 execute_wait_s: float | None = None,
                 buildstore=None) -> None:
        #: Optional :class:`repro.server.buildstore.BuildStore`.  When
        #: wired (the pre-fork server, DESIGN.md §17), aggregates are
        #: shared fleet-wide: the slow path consults the disk tier and
        #: executions run under the cross-process file lock, so N
        #: workers materialize one query once.  None (the default)
        #: keeps the in-memory-only behavior byte-identical.
        self._buildstore = buildstore
        self._meta_lock = threading.Lock()
        #: (name, seed, query_key) → entry.
        self._entries: dict[tuple[str, int, str], AggregateEntry] = {}
        self._key_locks: dict[tuple[str, int, str], threading.Lock] = {}
        self._slots = threading.BoundedSemaphore(
            max_concurrent_executions or self.MAX_CONCURRENT_EXECUTIONS)
        self._wait_s = self.EXECUTE_WAIT_S \
            if execute_wait_s is None else execute_wait_s
        #: key → message of the most recent failed execution; cleared
        #: by the next success on that key.
        self._errors: dict[tuple[str, int, str], str] = {}
        #: key → monotonic count of *finished* execution attempts
        #: (success or failure); waiters snapshot it to recognise the
        #: attempt they slept through (see server/cache.py).
        self._tokens: dict[tuple[str, int, str], int] = {}
        self._stats = {"hits": 0, "executions": 0, "coalesced": 0,
                       "failures": 0, "stale_served": 0, "shed": 0,
                       "invalidations": 0,
                       "disk_hits": 0, "disk_stores": 0}

    # -- internals ---------------------------------------------------------

    def _key_lock(self, key: tuple[str, int, str]) -> threading.Lock:
        with self._meta_lock:
            lock = self._key_locks.get(key)
            if lock is None:
                lock = self._key_locks[key] = threading.Lock()
            return lock

    _COUNTER = {"hits": "olap.cache.hit",
                "executions": "olap.cache.execute",
                "coalesced": "olap.cache.coalesced",
                "failures": "olap.cache.failure",
                "stale_served": "olap.cache.stale_served",
                "shed": "olap.cache.shed",
                "invalidations": "olap.cache.invalidation",
                "disk_hits": "olap.cache.disk_hit",
                "disk_stores": "olap.cache.disk_store"}

    def _bump(self, stat: str) -> None:
        with self._meta_lock:
            self._stats[stat] += 1
        if _REC.enabled:
            _REC.count(self._COUNTER[stat])

    def _fresh(self, key: tuple[str, int, str],
               content_hash: str) -> AggregateEntry | None:
        entry = self._entries.get(key)
        if entry is not None and entry.content_hash == content_hash:
            return entry
        return None

    # -- public API --------------------------------------------------------

    def entry(self, name: str, content_hash: str, seed: int,
              query_key: str, execute: Callable[[], AggregateEntry]
              ) -> tuple[AggregateEntry, str]:
        """The materialized result, executing only on staleness.

        Returns ``(entry, outcome)`` where *outcome* is ``"hit"``
        (fresh, lock-free), ``"executed"`` (this request ran the
        query), ``"coalesced"`` (another request executed it while we
        waited) or ``"stale"`` (the execution failed; *entry* is the
        previous materialization — its ``content_hash`` differs from
        the record's).  Raises :class:`QueryOverloadError` when shed
        and :class:`QueryExecutionError` when a failure has no stale
        fallback.
        """
        key = (name, seed, query_key)
        entry = self._fresh(key, content_hash)
        if entry is not None:
            self._bump("hits")
            return entry, "hit"
        token_before = self._tokens.get(key, 0)
        with self._key_lock(key):
            entry = self._fresh(key, content_hash)
            if entry is not None:
                # Another request materialized it while we waited.
                self._bump("coalesced")
                return entry, "coalesced"
            if self._buildstore is not None:
                entry = self._buildstore.load_aggregate(
                    name, content_hash, seed, query_key)
                if entry is not None:
                    # A peer process already materialized this query
                    # for these bytes; adopt its artifact.  Outranks
                    # the shared-failure check: a fresh artifact on
                    # disk supersedes a local failed attempt.
                    self._bump("disk_hits")
                    with self._meta_lock:
                        self._errors.pop(key, None)
                    self._entries[key] = entry
                    return entry, "hit"
            if self._tokens.get(key, 0) != token_before:
                # The attempt we slept through finished and the entry
                # is still stale: it failed.  Share its outcome.
                self._bump("coalesced")
                return self._degraded(key), "stale"
            if not self._slots.acquire(timeout=self._wait_s):
                self._bump("shed")
                raise QueryOverloadError(name, query_key,
                                         self.RETRY_AFTER_S)
            try:
                entry, outcome = self._execute_locked(
                    name, content_hash, seed, query_key, execute)
            except Exception as exc:
                self._bump("failures")
                with self._meta_lock:
                    self._errors[key] = f"{type(exc).__name__}: {exc}"
                return self._degraded(key), "stale"
            else:
                with self._meta_lock:
                    self._errors.pop(key, None)
                self._entries[key] = entry
                return entry, outcome
            finally:
                self._slots.release()
                with self._meta_lock:
                    self._tokens[key] = self._tokens.get(key, 0) + 1

    def _execute_locked(self, name: str, content_hash: str, seed: int,
                        query_key: str,
                        execute: Callable[[], AggregateEntry]
                        ) -> tuple[AggregateEntry, str]:
        """One execution attempt, fleet-coalesced when a store is wired.

        With a build store the execution runs under the cross-process
        file lock for this (hash, seed, query) — a loser of the lock
        race adopts the winner's artifact from the post-lock disk
        re-check (outcome ``"coalesced"``, the cross-process analogue
        of waiting on the key lock).  ``executions`` counts only
        queries that actually ran, fleet-wide.
        """
        if self._buildstore is None:
            self._bump("executions")
            return execute(), "executed"
        with self._buildstore.lock(
                "olap", f"{content_hash}-{seed}-{query_key}"):
            entry = self._buildstore.load_aggregate(
                name, content_hash, seed, query_key)
            if entry is not None:
                self._bump("disk_hits")
                return entry, "coalesced"
            self._bump("executions")
            entry = execute()
            if self._buildstore.store_aggregate(entry):
                self._bump("disk_stores")
            return entry, "executed"

    def _degraded(self, key: tuple[str, int, str]) -> AggregateEntry:
        """The stale entry after a failed execution, or raise."""
        stale = self._entries.get(key)
        if stale is not None:
            self._bump("stale_served")
            return stale
        with self._meta_lock:
            cause = self._errors.get(key, "execution failed")
        raise QueryExecutionError(key[0], key[2], cause)

    def execution_error(self, name: str, seed: int,
                        query_key: str) -> str | None:
        """The most recent failure for one key, if any (degraded mode)."""
        with self._meta_lock:
            return self._errors.get((name, seed, query_key))

    def invalidate(self, name: str) -> int:
        """Drop every materialization of *name*; returns entries removed.

        A changed content hash already invalidates lazily; DELETE uses
        this to free memory and clear degraded-mode markers.
        """
        removed = 0
        with self._meta_lock:
            for key in [k for k in self._entries if k[0] == name]:
                del self._entries[key]
                removed += 1
            for key in [k for k in self._errors if k[0] == name]:
                del self._errors[key]
            for key in [k for k in self._tokens if k[0] == name]:
                del self._tokens[key]
            for key in [k for k in self._key_locks if k[0] == name]:
                del self._key_locks[key]
        if removed:
            self._bump("invalidations")
        return removed

    def info(self) -> dict:
        """``cache_info()`` shape, so /stats and /metrics treat every
        cache uniformly (hits fold in coalesced waiters — requests
        answered without a fresh execution)."""
        with self._meta_lock:
            return {
                "hits": self._stats["hits"] + self._stats["coalesced"],
                "misses": self._stats["executions"],
                "currsize": len(self._entries),
                "maxsize": None,
            }

    def stats(self) -> dict:
        """Hit/execution/coalesced/shed counters plus sizes."""
        with self._meta_lock:
            stats = dict(self._stats)
            stats["entries"] = len(self._entries)
            stats["degraded_keys"] = [
                f"{key[0]}/{key[1]}/{key[2][:12]}"
                for key in sorted(self._errors)]
        stats["resident_bytes"] = sum(
            len(data) for entry in list(self._entries.values())
            for data in entry.renderings.values())
        return stats
