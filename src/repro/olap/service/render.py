"""Result renderings for the OLAP query service (DESIGN.md §16).

One executed :class:`~repro.olap.engine.CubeResult` materializes as two
deterministic byte strings:

* **JSON** — the canonical payload dict serialized with sorted keys;
  non-finite measure values (an ``AVG`` over an empty group is NaN)
  become ``null`` so the body stays strict JSON;
* **XML** — the payload lowered into a ``<cuberesult>`` tree and pushed
  through the repo's own XSLT engine (the paper's presentation
  pipeline, pointed at query results the way ``/dashboard`` points it
  at telemetry).

Determinism matters: the chaos oracle replays queries offline and
compares bytes, and the strong ETags (quoted SHA-256, same scheme as
served pages) are computed from these exact renderings.
"""

from __future__ import annotations

import hashlib
import json
import math

from ...mdm.model import GoldModel
from ...xml.dom import Document, Element, Text
from ..engine import CubeResult
from .query import QuerySpec

__all__ = ["RESULT_XSL", "result_payload", "render_json", "render_xml",
           "result_etag"]

RESULT_XSL = """<?xml version="1.0"?>
<xsl:stylesheet version="1.0"
    xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:output method="xml" indent="yes"/>

  <xsl:template match="/cuberesult">
    <olap-result model="{@model}" content-hash="{@content-hash}"
                 seed="{@seed}" query-key="{@query-key}">
      <header>
        <xsl:for-each select="columns/column">
          <group-level><xsl:value-of select="@name"/></group-level>
        </xsl:for-each>
        <xsl:for-each select="measures/measure">
          <measure aggregation="{@aggregation}">
            <xsl:value-of select="@name"/>
          </measure>
        </xsl:for-each>
      </header>
      <body rows="{@rows}" sliced-out="{@sliced-out}">
        <xsl:for-each select="rows/row">
          <row>
            <xsl:for-each select="g">
              <group>
                <xsl:if test="@null = 'true'">
                  <xsl:attribute name="null">true</xsl:attribute>
                </xsl:if>
                <xsl:value-of select="."/>
              </group>
            </xsl:for-each>
            <xsl:for-each select="m">
              <value measure="{@name}"><xsl:value-of select="."/></value>
            </xsl:for-each>
          </row>
        </xsl:for-each>
      </body>
    </olap-result>
  </xsl:template>
</xsl:stylesheet>
"""


def result_etag(payload: bytes) -> str:
    """Strong ETag: quoted SHA-256, same scheme as served pages."""
    return f'"{hashlib.sha256(payload).hexdigest()}"'


def _json_value(value: object) -> object:
    """Measure values made JSON-strict (non-finite floats → null)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def result_payload(model: GoldModel, content_hash: str, spec: QuerySpec,
                   result: CubeResult, *, dataset: dict) -> dict:
    """The JSON-ready result dict both renderings are derived from."""
    fact = model.fact_class(spec.fact)
    return {
        "model": model.name,
        "content_hash": content_hash,
        "seed": spec.seed,
        "query_key": spec.query_key(),
        "query": spec.canonical_dict(),
        "fact": fact.name,
        "columns": list(result.group_levels),
        "measures": [
            {"name": fact.attribute(m).name, "aggregation": a}
            for m, a in spec.measures],
        "rows": [[_json_value(v) for v in row]
                 for row in result.to_rows()],
        "row_count": len(result.rows),
        "sliced_out": result.sliced_out,
        "dataset": dataset,
    }


def render_json(payload: dict) -> bytes:
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n") \
        .encode("utf-8")


def _cell_text(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)
    return str(value)


def result_document(payload: dict) -> Document:
    """Lower *payload* into the ``<cuberesult>`` source tree."""
    document = Document()
    root = document.append_child(Element("cuberesult"))
    root.set_attribute("model", payload["model"])
    root.set_attribute("content-hash", payload["content_hash"])
    root.set_attribute("seed", str(payload["seed"]))
    root.set_attribute("query-key", payload["query_key"])
    root.set_attribute("rows", str(payload["row_count"]))
    root.set_attribute("sliced-out", str(payload["sliced_out"]))

    columns = root.append_child(Element("columns"))
    for name in payload["columns"]:
        column = columns.append_child(Element("column"))
        column.set_attribute("name", name)

    measures = root.append_child(Element("measures"))
    for entry in payload["measures"]:
        measure = measures.append_child(Element("measure"))
        measure.set_attribute("name", entry["name"])
        measure.set_attribute("aggregation", entry["aggregation"])

    group_count = len(payload["columns"])
    rows = root.append_child(Element("rows"))
    for values in payload["rows"]:
        row = rows.append_child(Element("row"))
        for value in values[:group_count]:
            cell = row.append_child(Element("g"))
            if value is None:
                # The engine's non-complete "no ancestor" group.
                cell.set_attribute("null", "true")
            else:
                cell.append_child(Text(_cell_text(value)))
        for entry, value in zip(payload["measures"],
                                values[group_count:]):
            cell = row.append_child(Element("m"))
            cell.set_attribute("name", entry["name"])
            cell.append_child(Text(_cell_text(value)))
    return document


_RESULT_TRANSFORMER = None


def render_xml(payload: dict) -> bytes:
    """Render *payload* through the repo's XSLT engine."""
    global _RESULT_TRANSFORMER
    from ...xslt import Transformer, compile_stylesheet

    if _RESULT_TRANSFORMER is None:
        _RESULT_TRANSFORMER = Transformer(
            compile_stylesheet(RESULT_XSL))
    result = _RESULT_TRANSFORMER.transform(result_document(payload))
    return result.serialize().encode("utf-8")
