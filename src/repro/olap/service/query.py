"""The declarative query form of the OLAP service (DESIGN.md §16).

A query names a cube either by reference (``cube=<ref>``) or ad hoc —
a fact class plus measures (each with an aggregation function), dice
groupings (dimension @ level) and slice predicates (``attribute OP
value``).  Two wire forms parse into the same raw shape:

* URL parameters: ``fact=Sales&dice=Time@Month,Store@City``
  ``&measure=qty:SUM,total:AVG&slice=Product.product_name NOTEQ
  "unknown"&seed=3`` (repeat ``slice=`` for several predicates; slice
  values are JSON literals, bare words read as strings);
* a JSON body with the same vocabulary (``{"fact": ..., "measures":
  [...], "dice": [...], "slice": [...], "seed": ...}``), where values
  need no quoting tricks.

:func:`resolve_query` validates the raw query against a model and
canonicalizes it into a :class:`QuerySpec`: every reference is replaced
by its id (slice leaves by attribute *name* — the member-attribute maps
are name-keyed), aggregations are explicit, slices are sorted (they are
conjunctive, so order carries no meaning; dice and measure order is
presentation and kept).  Canonicalization is idempotent:
``resolve(parse(spec.to_params()))`` is *spec* — pinned by a Hypothesis
fixed-point test — which is what makes :meth:`QuerySpec.query_key` a
sound materialized-aggregate cache key.

Errors follow the XSD store's diagnostics idiom: :class:`QueryError`
carries ``kind`` (``"form"`` → 400, ``"reference"``/``"additivity"`` →
422) and a list of instance-path issue dicts
(message/path/line/severity/code) whose paths point into the query
(``/query/measures/0/aggregation``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ...mdm.cubes import CubeClass, DiceGrouping, SliceCondition
from ...mdm.enums import AggregationKind, Operator
from ...mdm.errors import ModelReferenceError
from ...mdm.model import GoldModel

__all__ = ["QueryError", "RawQuery", "QuerySpec", "parse_query",
           "resolve_query"]

#: Raw-query keys the parser accepts; anything else is a form error
#: (catches ``dices=`` typos instead of ignoring them).  ``measures``
#: is the JSON-body spelling (the canonical dict uses it), ``measure``
#: the URL-parameter one; both read identically.
_KNOWN_KEYS = ("cube", "fact", "measure", "measures", "dice", "slice",
               "seed")


class QueryError(Exception):
    """A query was rejected; ``issues`` holds structured diagnostics.

    ``kind`` is ``"form"`` (malformed input — the 400 class),
    ``"reference"`` (unknown model object) or ``"additivity"``
    (aggregation forbidden by the measure's additivity rules along a
    diced dimension) — both the 422 class, mirroring how the model
    store splits parse errors from schema violations.
    """

    def __init__(self, kind: str, issues: list[dict]) -> None:
        summary = issues[0]["message"] if issues else kind
        super().__init__(f"{kind}: {summary}")
        self.kind = kind
        self.issues = issues


def _issue(message: str, path: str, code: str) -> dict:
    return {"message": message, "path": path, "line": None,
            "column": None, "severity": "error", "code": code}


@dataclass(frozen=True)
class RawQuery:
    """The parsed-but-unresolved query: references still as written."""

    cube: str | None = None
    fact: str | None = None
    #: (measure ref, aggregation name or None → SUM).
    measures: tuple[tuple[str, str | None], ...] = ()
    #: (dimension ref, level ref or None → base grain).
    dices: tuple[tuple[str, str | None], ...] = ()
    #: (dotted attribute, operator name, value).
    slices: tuple[tuple[str, str, object], ...] = ()
    seed: int = 0


@dataclass(frozen=True)
class QuerySpec:
    """A canonical, model-validated query — the aggregate-cache key.

    All references are ids; slice attribute leaves are attribute names
    (the engine matches member attributes by name); slices are sorted;
    aggregation and operator fields hold the enum *values*.  Lists in
    slice values are stored as tuples so the spec stays hashable.
    """

    fact: str
    measures: tuple[tuple[str, str], ...]
    dices: tuple[tuple[str, str], ...]
    slices: tuple[tuple[str, str, object], ...] = ()
    seed: int = 0

    # -- canonical serialisations -----------------------------------------

    def canonical_dict(self) -> dict:
        """The JSON-ready canonical form (also the POST body shape)."""
        return {
            "fact": self.fact,
            "measures": [{"measure": m, "aggregation": a}
                         for m, a in self.measures],
            "dice": [{"dimension": d, "level": lv}
                     for d, lv in self.dices],
            "slice": [{"attribute": a, "operator": op,
                       "value": _plain(value)}
                      for a, op, value in self.slices],
            "seed": self.seed,
        }

    def canonical_json(self) -> str:
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))

    def query_key(self) -> str:
        """SHA-256 of the canonical JSON — the cache-key component."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")).hexdigest()

    def to_params(self) -> dict[str, object]:
        """URL parameters that parse and resolve back to this spec.

        ``slice`` is a *list* (one predicate per repeated parameter)
        with JSON-encoded values, so arbitrary strings survive the
        round trip.
        """
        params: dict[str, object] = {
            "fact": self.fact,
            "measure": ",".join(f"{m}:{a}" for m, a in self.measures),
            "seed": str(self.seed),
        }
        if self.dices:
            params["dice"] = ",".join(
                d if d == lv else f"{d}@{lv}" for d, lv in self.dices)
        if self.slices:
            params["slice"] = [
                f"{attr} {op} {json.dumps(_plain(value))}"
                for attr, op, value in self.slices]
        return params

    def to_cube(self, model: GoldModel) -> CubeClass:
        """The throwaway cube class the engine executes."""
        key = self.query_key()
        return CubeClass(
            id=f"query-{key[:12]}", name=f"ad-hoc query {key[:12]}",
            fact=self.fact,
            measures=tuple(m for m, _ in self.measures),
            aggregations=tuple(
                AggregationKind(a) for _, a in self.measures),
            slices=tuple(
                SliceCondition(attr, Operator(op), value)
                for attr, op, value in self.slices),
            dices=tuple(
                DiceGrouping(d, lv) for d, lv in self.dices),
            description="materialized by the OLAP query service")


def _plain(value: object) -> object:
    """Tuples (hashable spec storage) back to lists for JSON."""
    if isinstance(value, tuple):
        return [_plain(v) for v in value]
    return value


def _hashable(value: object) -> object:
    """Lists (wire form) to tuples for frozen-spec storage."""
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value


# -- parsing ---------------------------------------------------------------


def parse_query(params: dict, *, issues: list[dict] | None = None
                ) -> RawQuery:
    """Parse URL parameters (or a JSON body's dict) into a raw query.

    *params* maps each key to a string, a list of strings (repeated URL
    parameters), or — from JSON bodies — structured lists/dicts.
    Raises :class:`QueryError` (kind ``"form"``) listing every
    malformed piece at once.
    """
    own: list[dict] = [] if issues is None else issues
    for key in params:
        if key not in _KNOWN_KEYS:
            own.append(_issue(f"unknown query parameter {key!r} "
                              f"(expected one of {list(_KNOWN_KEYS)})",
                              f"/query/{key}", "query-form"))

    cube = _single(params, "cube", own)
    fact = _single(params, "fact", own)
    measure_items = _items(params, "measure") + _items(params, "measures")
    measures = tuple(_parse_measure(item, f"/query/measures/{i}", own)
                     for i, item in enumerate(measure_items))
    dices = tuple(_parse_dice(item, f"/query/dice/{i}", own)
                  for i, item in enumerate(_items(params, "dice")))
    slices = tuple(_parse_slice(item, f"/query/slice/{i}", own)
                   for i, item in enumerate(_listed(params, "slice")))

    seed = 0
    raw_seed = _single(params, "seed", own)
    if raw_seed is not None:
        try:
            seed = int(raw_seed)
        except (TypeError, ValueError):
            own.append(_issue(f"seed must be an integer, got {raw_seed!r}",
                              "/query/seed", "query-form"))

    if cube is not None and (fact is not None or measures or dices
                             or slices):
        own.append(_issue(
            "cube= names a predefined cube class and excludes the "
            "ad-hoc fact/measure/dice/slice parameters",
            "/query/cube", "query-form"))
    if cube is None and fact is None:
        own.append(_issue("a query names either cube=<ref> or an "
                          "ad-hoc fact=<ref>", "/query", "query-form"))

    if issues is None and own:
        raise QueryError("form", own)
    return RawQuery(cube=cube, fact=fact,
                    measures=tuple(m for m in measures if m is not None),
                    dices=tuple(d for d in dices if d is not None),
                    slices=tuple(s for s in slices if s is not None),
                    seed=seed)


def _single(params: dict, key: str, issues: list[dict]) -> str | None:
    value = params.get(key)
    if value is None:
        return None
    if isinstance(value, list):
        if len(value) != 1:
            issues.append(_issue(f"{key} given {len(value)} times",
                                 f"/query/{key}", "query-form"))
            return None
        value = value[0]
    return str(value)


def _items(params: dict, key: str) -> list:
    """Comma-splittable entries: strings split on ',', lists flatten."""
    value = params.get(key)
    if value is None:
        return []
    if not isinstance(value, list):
        value = [value]
    out: list = []
    for item in value:
        if isinstance(item, str):
            out.extend(p for p in (s.strip() for s in item.split(","))
                       if p)
        else:
            out.append(item)
    return out


def _listed(params: dict, key: str) -> list:
    """Entries that must NOT be comma-split (slice values hold JSON)."""
    value = params.get(key)
    if value is None:
        return []
    return value if isinstance(value, list) else [value]


def _parse_measure(item, path: str, issues: list[dict]
                   ) -> tuple[str, str | None] | None:
    if isinstance(item, dict):
        ref = item.get("measure")
        aggregation = item.get("aggregation")
        if not isinstance(ref, str) or not ref:
            issues.append(_issue("measure entry needs a 'measure' ref",
                                 path, "query-form"))
            return None
    elif isinstance(item, str):
        ref, _, aggregation = item.partition(":")
        aggregation = aggregation or None
    else:
        issues.append(_issue(f"unreadable measure entry {item!r}",
                             path, "query-form"))
        return None
    if aggregation is not None:
        aggregation = str(aggregation).upper()
        if aggregation not in AggregationKind.__members__:
            issues.append(_issue(
                f"unknown aggregation {aggregation!r} (expected one of "
                f"{[k.value for k in AggregationKind]})",
                f"{path}/aggregation", "query-form"))
            return None
    return (ref, aggregation)


def _parse_dice(item, path: str, issues: list[dict]
                ) -> tuple[str, str | None] | None:
    if isinstance(item, dict):
        dimension = item.get("dimension")
        level = item.get("level")
        if not isinstance(dimension, str) or not dimension:
            issues.append(_issue("dice entry needs a 'dimension' ref",
                                 path, "query-form"))
            return None
        return (dimension, level if level else None)
    if isinstance(item, str):
        dimension, _, level = item.partition("@")
        if not dimension:
            issues.append(_issue(f"unreadable dice entry {item!r} "
                                 "(expected dimension[@level])",
                                 path, "query-form"))
            return None
        return (dimension, level or None)
    issues.append(_issue(f"unreadable dice entry {item!r}", path,
                         "query-form"))
    return None


def _parse_slice(item, path: str, issues: list[dict]
                 ) -> tuple[str, str, object] | None:
    if isinstance(item, dict):
        attribute = item.get("attribute")
        operator = item.get("operator")
        value = item.get("value")
        if not isinstance(attribute, str) or not isinstance(operator, str):
            issues.append(_issue(
                "slice entry needs 'attribute' and 'operator'",
                path, "query-form"))
            return None
    elif isinstance(item, str):
        parts = item.split(None, 2)
        if len(parts) != 3:
            issues.append(_issue(
                f"unreadable slice {item!r} (expected "
                f"'attribute OP value')", path, "query-form"))
            return None
        attribute, operator, text = parts
        try:
            value = json.loads(text)
        except ValueError:
            value = text  # bare word: read as a string literal
    else:
        issues.append(_issue(f"unreadable slice entry {item!r}", path,
                             "query-form"))
        return None
    operator = operator.upper()
    if operator not in Operator.__members__:
        issues.append(_issue(
            f"unknown operator {operator!r} (expected one of "
            f"{[o.value for o in Operator]})",
            f"{path}/operator", "query-form"))
        return None
    return (attribute, operator, _hashable(value))


# -- resolution ------------------------------------------------------------


def resolve_query(raw: RawQuery, model: GoldModel) -> QuerySpec:
    """Validate *raw* against *model* and canonicalize it.

    Raises :class:`QueryError` with kind ``"reference"`` for dangling
    references (collecting every problem, not just the first) and
    ``"additivity"`` when the resolved query violates an additivity
    rule — the same split the engine enforces at execution time,
    surfaced *before* any dataset is generated or cached.
    """
    if raw.cube is not None:
        raw = _expand_cube(raw, model)

    issues: list[dict] = []
    fact = None
    try:
        fact = model.fact_class(raw.fact or "")
    except ModelReferenceError:
        issues.append(_issue(
            f"no fact class {raw.fact!r} in model {model.name!r}",
            "/query/fact", "query-reference"))
    if fact is None:
        raise QueryError("reference", issues)

    if not raw.measures:
        issues.append(_issue(
            "a query needs at least one measure", "/query/measures",
            "query-form"))

    measures: list[tuple[str, str]] = []
    seen_measures: set[str] = set()
    for i, (ref, aggregation) in enumerate(raw.measures):
        try:
            attribute = fact.attribute(ref)
        except KeyError:
            issues.append(_issue(
                f"fact {fact.name!r} has no measure {ref!r}",
                f"/query/measures/{i}", "query-reference"))
            continue
        if attribute.id in seen_measures:
            issues.append(_issue(
                f"measure {attribute.name!r} given twice",
                f"/query/measures/{i}", "query-form"))
            continue
        seen_measures.add(attribute.id)
        measures.append(
            (attribute.id, aggregation or AggregationKind.SUM.value))

    dices: list[tuple[str, str]] = []
    for i, (dimension_ref, level_ref) in enumerate(raw.dices):
        try:
            dimension = model.dimension_class(dimension_ref)
        except ModelReferenceError:
            issues.append(_issue(
                f"no dimension class {dimension_ref!r} in model "
                f"{model.name!r}", f"/query/dice/{i}/dimension",
                "query-reference"))
            continue
        if dimension.id not in fact.dimension_ids:
            issues.append(_issue(
                f"dimension {dimension.name!r} is not shared with fact "
                f"{fact.name!r}", f"/query/dice/{i}/dimension",
                "query-reference"))
            continue
        if level_ref is None or level_ref in (dimension.id,
                                              dimension.name):
            dices.append((dimension.id, dimension.id))
            continue
        try:
            level = dimension.level(level_ref)
        except ModelReferenceError:
            issues.append(_issue(
                f"dimension {dimension.name!r} has no level "
                f"{level_ref!r}", f"/query/dice/{i}/level",
                "query-reference"))
            continue
        dices.append((dimension.id, level.id))

    slices: list[tuple[str, str, object]] = []
    for i, (attribute, operator, value) in enumerate(raw.slices):
        canonical = _resolve_slice_attribute(
            attribute, fact, model, f"/query/slice/{i}/attribute", issues)
        if canonical is None:
            continue
        slices.append((canonical, operator, value))

    if issues:
        raise QueryError("reference", issues)

    spec = QuerySpec(
        fact=fact.id, measures=tuple(measures), dices=tuple(dices),
        slices=tuple(sorted(slices, key=lambda s: (
            s[0], s[1], json.dumps(_plain(s[2]), sort_keys=True)))),
        seed=raw.seed)
    _check_additivity(spec, model)
    return spec


def _expand_cube(raw: RawQuery, model: GoldModel) -> RawQuery:
    """Rewrite ``cube=<ref>`` as the equivalent ad-hoc raw query."""
    try:
        cube = model.cube_class(raw.cube or "")
    except ModelReferenceError:
        raise QueryError("reference", [_issue(
            f"no cube class {raw.cube!r} in model {model.name!r}",
            "/query/cube", "query-reference")]) from None
    aggregations = cube.aggregations or tuple(
        AggregationKind.SUM for _ in cube.measures)
    return RawQuery(
        fact=cube.fact,
        measures=tuple((m, a.value)
                       for m, a in zip(cube.measures, aggregations)),
        dices=tuple((d.dimension, d.level) for d in cube.dices),
        slices=tuple(
            (c.attribute, c.operator.value, _hashable(c.value))
            for c in cube.slices),
        seed=raw.seed)


def _resolve_slice_attribute(attribute: str, fact, model: GoldModel,
                             path: str, issues: list[dict]) -> str | None:
    """Canonical dotted form, mirroring the engine's resolution rules.

    Fact predicates become ``<fact id>.<attribute name>``; dimension
    predicates ``<dimension id>[.<level id>].<attribute name>`` — leaf
    names, not ids, because member-attribute maps are name-keyed.
    """
    parts = attribute.split(".")
    if len(parts) == 1 or parts[0] in (fact.id, fact.name):
        leaf = parts[-1]
        if len(parts) > 2:
            issues.append(_issue(
                f"cannot resolve slice attribute {attribute!r}",
                path, "query-reference"))
            return None
        try:
            resolved = fact.attribute(leaf)
        except KeyError:
            issues.append(_issue(
                f"fact {fact.name!r} has no attribute {leaf!r}",
                path, "query-reference"))
            return None
        return f"{fact.id}.{resolved.name}"
    try:
        dimension = model.dimension_class(parts[0])
    except ModelReferenceError:
        issues.append(_issue(
            f"no fact attribute or dimension {parts[0]!r} for slice "
            f"{attribute!r}", path, "query-reference"))
        return None
    if len(parts) == 2:
        names = {a.name for a in dimension.attributes} \
            | {a.id for a in dimension.attributes}
        if parts[1] not in names:
            issues.append(_issue(
                f"dimension {dimension.name!r} has no attribute "
                f"{parts[1]!r}", path, "query-reference"))
            return None
        leaf = next(a.name for a in dimension.attributes
                    if parts[1] in (a.id, a.name))
        return f"{dimension.id}.{leaf}"
    if len(parts) == 3:
        try:
            level = dimension.level(parts[1])
        except ModelReferenceError:
            issues.append(_issue(
                f"dimension {dimension.name!r} has no level "
                f"{parts[1]!r}", path, "query-reference"))
            return None
        match = [a.name for a in level.attributes
                 if parts[2] in (a.id, a.name)]
        if not match:
            issues.append(_issue(
                f"level {level.name!r} has no attribute {parts[2]!r}",
                path, "query-reference"))
            return None
        return f"{dimension.id}.{level.id}.{match[0]}"
    issues.append(_issue(
        f"cannot resolve slice attribute {attribute!r}", path,
        "query-reference"))
    return None


def _check_additivity(spec: QuerySpec, model: GoldModel) -> None:
    """The engine's additivity rule, surfaced as 422 diagnostics."""
    fact = model.fact_class(spec.fact)
    issues: list[dict] = []
    for dimension_id, _level in spec.dices:
        dimension = model.dimension_class(dimension_id)
        for i, (measure_id, aggregation) in enumerate(spec.measures):
            attribute = fact.attribute(measure_id)
            kind = AggregationKind(aggregation)
            if kind not in attribute.allowed_aggregations(dimension.id):
                issues.append(_issue(
                    f"measure {attribute.name!r} may not be aggregated "
                    f"with {kind.value} along dimension "
                    f"{dimension.name!r} (additivity rule)",
                    f"/query/measures/{i}/aggregation",
                    "query-additivity"))
    if issues:
        raise QueryError("additivity", issues)
