"""The OLAP query service (DESIGN.md §16).

Turns stored models into a live, compute-bound OLAP workload: seeded
synthetic datasets derived per ``(model content hash, data seed)``, a
declarative slice/dice/roll-up query form, and a materialized-aggregate
cache with the same coalescing and serve-stale-or-shed degradation
contract as the site cache.
"""

from .aggcache import (
    AggregateCache,
    AggregateEntry,
    QueryExecutionError,
    QueryOverloadError,
)
from .datagen import DatasetConfig, synthesize_star
from .query import (
    QueryError,
    QuerySpec,
    RawQuery,
    parse_query,
    resolve_query,
)
from .render import RESULT_XSL, render_json, render_xml, result_payload
from .service import RESULT_FORMATS, OlapService

__all__ = [
    "AggregateCache", "AggregateEntry", "QueryExecutionError",
    "QueryOverloadError", "DatasetConfig", "synthesize_star",
    "QueryError", "QuerySpec", "RawQuery", "parse_query",
    "resolve_query", "RESULT_XSL", "render_json", "render_xml",
    "result_payload", "RESULT_FORMATS", "OlapService",
]
