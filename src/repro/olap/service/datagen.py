"""Seeded synthetic datasets for stored models (DESIGN.md §16).

The query service has no fact data of its own — it *derives* a star
schema from the model definition: every dimension's classification DAG
is populated bottom-up and every fact class gets random rows, exactly
the :mod:`repro.olap.loader` machinery, but seeded from
``(model content hash, data seed)`` so two servers holding the same
model bytes materialize byte-identical datasets (the chaos oracle and
the differential tests depend on this).  Re-uploading a model rolls the
content hash and therefore the whole dataset, the same freshness rule
the site cache uses.

Unlike the loader defaults, the service populates with a non-zero
``non_complete_rate``: members along relations *not* marked
``{completeness}`` occasionally roll up to no parent, so the engine's
``None`` groups (§2 non-complete hierarchies) appear in real responses
— together with the non-strict fan-out and M–M coordinates the loader
already produces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ...faults import FAULTS, fault_point
from ...mdm.model import GoldModel
from ...obs.recorder import RECORDER as _REC
from ..loader import generate_facts, populate_dimension
from ..star import StarSchema

__all__ = ["DatasetConfig", "dataset_seed_text", "synthesize_star"]

_GENERATE_FAULT = fault_point(
    "olap.generate", "raise/delay inside synthetic dataset generation, "
                     "before any member is created (datagen.py)")

#: Version tag baked into the RNG seed: bump to roll every dataset.
DATASET_VERSION = 1


@dataclass(frozen=True)
class DatasetConfig:
    """Sizing and shape knobs for derived datasets.

    Service-level configuration, not per-request: clients choose a
    ``seed``, the operator chooses the sizes, and both feed the RNG
    seed so any change regenerates rather than mismatches.
    """

    members_per_level: int = 8
    rows_per_fact: int = 2000
    non_strict_fanout: float = 0.3
    non_complete_rate: float = 0.15


def dataset_seed_text(content_hash: str, seed: int,
                      config: DatasetConfig) -> str:
    """The deterministic RNG seed for one ``(model, seed)`` dataset."""
    return (f"olap:{DATASET_VERSION}:{content_hash}:{seed}:"
            f"{config.members_per_level}:{config.rows_per_fact}:"
            f"{config.non_strict_fanout}:{config.non_complete_rate}")


def synthesize_star(model: GoldModel, content_hash: str, seed: int,
                    config: DatasetConfig | None = None) -> StarSchema:
    """Generate the dataset for ``(content_hash, seed)`` — deterministic.

    The ``olap.generate`` fault point fires before any work happens, so
    an injected failure leaves no half-populated star behind.
    """
    config = config or DatasetConfig()
    if FAULTS.enabled:
        FAULTS.hit(_GENERATE_FAULT)
    with _REC.span("olap.generate", model=model.name, seed=str(seed)):
        rng = random.Random(dataset_seed_text(content_hash, seed, config))
        star = StarSchema(model)
        for dimension in model.dimensions:
            populate_dimension(
                star.dimensions[dimension.id],
                members_per_level=config.members_per_level, rng=rng,
                non_strict_fanout=config.non_strict_fanout,
                non_complete_rate=config.non_complete_rate)
        for fact in model.facts:
            generate_facts(star, fact.id, rows=config.rows_per_fact,
                           rng=rng)
        return star
