"""Synthetic data generation for star schemas.

Populates a :class:`~repro.olap.star.StarSchema` with deterministic,
seeded data: dimension members are created bottom-up along each
classification hierarchy (respecting strict/non-strict edges — a member
under a non-strict relationship gets *two* parents with some
probability), and fact rows draw random coordinates and measure values.

Deterministic seeding keeps tests and benchmarks reproducible.
"""

from __future__ import annotations

import random
from typing import Mapping

from ..mdm.dimensions import DimensionClass
from ..mdm.model import GoldModel
from .star import DimensionData, StarSchema

__all__ = ["populate_star", "populate_dimension", "generate_facts"]


def populate_star(model: GoldModel, *, members_per_level: int = 10,
                  rows_per_fact: int = 1000, seed: int = 2002,
                  non_strict_fanout: float = 0.3,
                  non_complete_rate: float = 0.0) -> StarSchema:
    """Build and fully populate a star schema for *model*."""
    rng = random.Random(seed)
    star = StarSchema(model)
    for dimension in model.dimensions:
        populate_dimension(star.dimensions[dimension.id],
                           members_per_level=members_per_level, rng=rng,
                           non_strict_fanout=non_strict_fanout,
                           non_complete_rate=non_complete_rate)
    for fact in model.facts:
        generate_facts(star, fact.id, rows=rows_per_fact, rng=rng)
    return star


def populate_dimension(data: DimensionData, *, members_per_level: int = 10,
                       rng: random.Random | None = None,
                       non_strict_fanout: float = 0.3,
                       non_complete_rate: float = 0.0) -> None:
    """Create members for every level of *data*'s dimension.

    *non_complete_rate* drops a member's parent link along relations
    *not* marked ``{completeness}`` with the given probability, leaving
    hierarchy gaps (§2 non-complete hierarchies); the default 0.0 keeps
    the RNG stream identical to earlier releases.
    """
    rng = rng or random.Random(0)
    dimension = data.dimension

    # Topological order: create coarser levels before finer ones so
    # parent keys exist when the finer members reference them.
    order = _coarse_to_fine(dimension)
    counts: dict[str, int] = {}

    for level_id in order:
        if level_id == dimension.id:
            count = members_per_level * 2  # base grain is finer
            attributes = dimension.attributes
            relations = dimension.relations
            name = dimension.name
        else:
            level = dimension.level(level_id)
            count = max(2, members_per_level)
            attributes = level.attributes
            relations = level.relations
            name = level.name
        counts[level_id] = count

        for index in range(count):
            key = f"{level_id}-{index}"
            values: dict[str, object] = {}
            for attribute in attributes:
                if attribute.is_oid:
                    values[attribute.name] = key
                elif attribute.type in ("Number", "Integer"):
                    values[attribute.name] = rng.randint(0, 1000)
                else:
                    values[attribute.name] = f"{name} {index}"
            parents: dict[str, list[object]] = {}
            for relation in relations:
                parent_count = counts.get(relation.child)
                if not parent_count:
                    continue
                if (non_complete_rate and not relation.complete
                        and rng.random() < non_complete_rate):
                    continue  # hierarchy gap: member rolls up to no parent
                first = rng.randrange(parent_count)
                keys = [f"{relation.child}-{first}"]
                if not relation.strict and rng.random() < non_strict_fanout:
                    second = (first + 1) % parent_count
                    keys.append(f"{relation.child}-{second}")
                parents[relation.child] = keys
            data.add_member(level_id, key, values, parents)


def _coarse_to_fine(dimension: DimensionClass) -> list[str]:
    """Level ids ordered so every relation target precedes its source."""
    edges = dimension.hierarchy_edges()
    nodes = [dimension.id] + [lv.id for lv in dimension.iter_levels()]
    dependents: dict[str, list[str]] = {node: [] for node in nodes}
    indegree = {node: 0 for node in nodes}
    for source, target, _relation in edges:
        if target in dependents:
            dependents[target].append(source)
            indegree[source] += 1
    ready = [node for node in nodes if indegree[node] == 0]
    order: list[str] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for dependent in dependents.get(node, []):
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                ready.append(dependent)
    # Cycles would have been rejected by validate_model; fall back to the
    # declaration order for robustness.
    for node in nodes:
        if node not in order:
            order.append(node)
    return order


def generate_facts(star: StarSchema, fact_ref: str, *, rows: int = 1000,
                   rng: random.Random | None = None,
                   measure_ranges: Mapping[str, tuple[float, float]]
                   | None = None) -> None:
    """Append *rows* random fact rows for *fact_ref*."""
    rng = rng or random.Random(0)
    fact = star.model.fact_class(fact_ref)
    table = star.facts[fact.id]
    base_keys = {
        aggregation.dimension: list(
            star.dimensions[aggregation.dimension].members(
                star.dimensions[aggregation.dimension].dimension.id))
        for aggregation in fact.aggregations
    }
    for index in range(rows):
        coordinates: dict[str, object] = {}
        for aggregation in fact.aggregations:
            keys = base_keys[aggregation.dimension]
            if aggregation.many_to_many and rng.random() < 0.3:
                picked = rng.sample(keys, k=min(2, len(keys)))
                coordinates[aggregation.dimension] = picked
            else:
                coordinates[aggregation.dimension] = rng.choice(keys)
        values: dict[str, object] = {}
        for attribute in fact.attributes:
            if attribute.is_oid:
                values[attribute.name] = index
            else:
                low, high = (measure_ranges or {}).get(
                    attribute.name, (0.0, 100.0))
                values[attribute.name] = round(rng.uniform(low, high), 2)
        table.append(coordinates, values)
