"""Executing cube classes against a star schema.

Implements the OLAP semantics the GOLD model prescribes:

* **dice** groups fact rows by their ancestors at the requested levels —
  following the classification DAG, so alternative paths, non-strict
  relationships (a row then contributes to *every* parent group) and
  non-complete hierarchies (rows without an ancestor fall into the
  ``None`` group) behave per §2;
* **slice** filters on fact attributes (``Fact.attr`` or just ``attr``)
  and on dimension attributes at any level
  (``Dimension.attribute`` / ``Dimension.Level.attribute``);
* **additivity rules are enforced**: aggregating a measure along a
  dimension with a function its rules forbid raises
  :class:`AdditivityError` — the machine-checkable version of the
  paper's "additive rules are defined as constraints".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from ..mdm.cubes import CubeClass, SliceCondition
from ..mdm.enums import AggregationKind
from ..mdm.errors import ModelError, ModelReferenceError
from ..mdm.model import GoldModel
from .star import FactRow, StarSchema

__all__ = ["AdditivityError", "CubeResult", "execute_cube", "CubeEngine"]


class AdditivityError(ModelError):
    """An aggregation violates a measure's additivity rules."""


@dataclass
class CubeResult:
    """The table a cube class evaluates to.

    ``group_levels`` names the dice levels (column headers);
    ``rows`` maps group-key tuples to ``{measure_name: value}``.
    """

    cube: CubeClass
    group_levels: tuple[str, ...]
    measure_names: tuple[str, ...]
    rows: dict[tuple, dict[str, object]] = field(default_factory=dict)
    #: Fact rows that were excluded by slice conditions.
    sliced_out: int = 0

    def to_rows(self) -> list[tuple]:
        """Sorted ``(group..., measure values...)`` tuples."""
        out = []
        for key in sorted(self.rows, key=_sort_key):
            values = self.rows[key]
            out.append(key + tuple(values[m] for m in self.measure_names))
        return out

    def pretty(self) -> str:
        """A fixed-width table for terminal display."""
        headers = self.group_levels + self.measure_names
        body = [tuple(str(v) for v in row) for row in self.to_rows()]
        widths = [
            max(len(h), *(len(r[i]) for r in body)) if body else len(h)
            for i, h in enumerate(headers)
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def _sort_key(key: tuple):
    return tuple((v is None, str(v)) for v in key)


def execute_cube(cube: CubeClass, star: StarSchema) -> CubeResult:
    """Evaluate *cube* against *star*; enforces additivity rules."""
    return CubeEngine(star).execute(cube)


class CubeEngine:
    """A reusable executor bound to one star schema."""

    def __init__(self, star: StarSchema) -> None:
        self.star = star
        self.model: GoldModel = star.model

    # -- entry ----------------------------------------------------------------

    def execute(self, cube: CubeClass) -> CubeResult:
        # Additivity problems get their dedicated error type; everything
        # else (dangling refs) surfaces as ModelReferenceError.
        self._check_additivity(cube)
        problems = cube.check_against(self.model)
        if problems:
            raise ModelReferenceError("; ".join(problems))

        fact = self.model.fact_class(cube.fact)
        table = self.star.fact_table(fact.id)
        measure_names = tuple(
            fact.attribute(ref).name for ref in cube.measures)

        group_levels = tuple(
            self._level_label(d.dimension, d.level) for d in cube.dices)

        fact_conditions, dim_conditions = self._split_slices(cube, fact)

        # Pre-filter dimension members named by slice conditions.
        allowed_members = self._allowed_members(dim_conditions)

        accumulators: dict[tuple, list[_Accumulator]] = {}
        sliced_out = 0
        for row in table.rows:
            if not self._passes_fact_slices(row, fact, fact_conditions):
                sliced_out += 1
                continue
            if allowed_members is not None and \
                    not self._passes_member_slices(row, allowed_members):
                sliced_out += 1
                continue
            for key in self._group_keys(row, cube):
                slot = accumulators.get(key)
                if slot is None:
                    slot = [
                        _Accumulator(cube.aggregation_for(ref))
                        for ref in cube.measures
                    ]
                    accumulators[key] = slot
                for accumulator, ref in zip(slot, cube.measures):
                    name = fact.attribute(ref).name
                    value = row.values.get(name)
                    accumulator.feed(value)

        result = CubeResult(cube=cube, group_levels=group_levels,
                            measure_names=measure_names,
                            sliced_out=sliced_out)
        for key, slot in accumulators.items():
            result.rows[key] = {
                name: accumulator.value()
                for name, accumulator in zip(measure_names, slot)
            }
        return result

    # -- additivity ------------------------------------------------------------------

    def _check_additivity(self, cube: CubeClass) -> None:
        fact = self.model.fact_class(cube.fact)
        for dice in cube.dices:
            dimension = self.model.dimension_class(dice.dimension)
            for ref in cube.measures:
                attribute = fact.attribute(ref)
                kind = cube.aggregation_for(ref)
                if kind not in attribute.allowed_aggregations(dimension.id):
                    raise AdditivityError(
                        f"measure {attribute.name!r} may not be aggregated "
                        f"with {kind.value} along dimension "
                        f"{dimension.name!r} (additivity rule)")

    # -- grouping ---------------------------------------------------------------------

    def _level_label(self, dimension_ref: str, level_ref: str) -> str:
        dimension = self.model.dimension_class(dimension_ref)
        if level_ref in (dimension.id, dimension.name):
            return dimension.name
        return f"{dimension.name}.{dimension.level(level_ref).name}"

    def _group_keys(self, row: FactRow, cube: CubeClass
                    ) -> Iterable[tuple]:
        # Each dice axis yields one or more coordinates (non-strict or
        # many-to-many fan-out); the row contributes to every combination.
        per_axis: list[list[object]] = []
        for dice in cube.dices:
            dimension = self.model.dimension_class(dice.dimension)
            data = self.star.dimensions[dimension.id]
            coordinates: list[object] = []
            for base_key in row.member_keys(dimension.id):
                if dice.level in (dimension.id, dimension.name):
                    coordinates.append(base_key)
                    continue
                ancestors = data.ancestors_at(base_key, dice.level)
                if ancestors:
                    coordinates.extend(a.key for a in ancestors)
                else:
                    # Non-complete hierarchy: group under None.
                    coordinates.append(None)
            per_axis.append(sorted(set(coordinates), key=lambda v:
                            (v is None, str(v))) or [None])

        if not per_axis:
            yield ()
            return
        yield from _product(per_axis)

    # -- slicing -----------------------------------------------------------------------

    def _split_slices(self, cube: CubeClass, fact):
        fact_conditions: list[SliceCondition] = []
        dim_conditions: list[tuple[str, str | None, str, SliceCondition]] = []
        for condition in cube.slices:
            parts = condition.attribute.split(".")
            if len(parts) == 1 or parts[0] in (fact.id, fact.name):
                fact_conditions.append(condition)
                continue
            dimension = self.model.dimension_class(parts[0])
            if len(parts) == 2:
                dim_conditions.append(
                    (dimension.id, None, parts[1], condition))
            elif len(parts) == 3:
                level = dimension.level(parts[1])
                dim_conditions.append(
                    (dimension.id, level.id, parts[2], condition))
            else:
                raise ModelReferenceError(
                    f"cannot resolve slice attribute "
                    f"{condition.attribute!r}")
        return fact_conditions, dim_conditions

    def _passes_fact_slices(self, row: FactRow, fact,
                            conditions: list[SliceCondition]) -> bool:
        for condition in conditions:
            name = condition.attribute.split(".")[-1]
            attribute = fact.attribute(name)
            value = row.values.get(attribute.name)
            if not condition.operator.apply(value, condition.value):
                return False
        return True

    def _allowed_members(self, dim_conditions) -> dict[str, set] | None:
        """Base-level member keys allowed per dimension, or None (no slices)."""
        if not dim_conditions:
            return None
        allowed: dict[str, set] = {}
        for dimension_id, level_id, attr_name, condition in dim_conditions:
            data = self.star.dimensions[dimension_id]
            base_members = data.members(dimension_id)
            keys: set = set()
            if level_id is None:
                for key, member in base_members.items():
                    value = member.attributes.get(attr_name)
                    if condition.operator.apply(value, condition.value):
                        keys.add(key)
            else:
                # Keep base members whose ancestor at the level matches.
                for key in base_members:
                    for ancestor in data.ancestors_at(key, level_id):
                        value = ancestor.attributes.get(attr_name)
                        if condition.operator.apply(value, condition.value):
                            keys.add(key)
                            break
            if dimension_id in allowed:
                allowed[dimension_id] &= keys
            else:
                allowed[dimension_id] = keys
        return allowed

    def _passes_member_slices(self, row: FactRow,
                              allowed: dict[str, set]) -> bool:
        for dimension_id, keys in allowed.items():
            member_keys = row.member_keys(dimension_id)
            if member_keys and not any(k in keys for k in member_keys):
                return False
        return True


def _product(axes: list[list[object]]) -> Iterable[tuple]:
    if not axes:
        yield ()
        return
    head, *rest = axes
    for value in head:
        for tail in _product(rest):
            yield (value,) + tail


class _Accumulator:
    """Streaming aggregation for one measure in one group."""

    __slots__ = ("kind", "_sum", "_count", "_min", "_max")

    def __init__(self, kind: AggregationKind) -> None:
        self.kind = kind
        self._sum = 0.0
        self._count = 0
        self._min: object = None
        self._max: object = None

    def feed(self, value: object) -> None:
        if value is None:
            return
        self._count += 1
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self._sum += value
        if self._min is None or value < self._min:  # type: ignore[operator]
            self._min = value
        if self._max is None or value > self._max:  # type: ignore[operator]
            self._max = value

    def value(self) -> object:
        if self.kind is AggregationKind.COUNT:
            return self._count
        if self.kind is AggregationKind.SUM:
            return self._sum
        if self.kind is AggregationKind.MIN:
            return self._min
        if self.kind is AggregationKind.MAX:
            return self._max
        if self.kind is AggregationKind.AVG:
            return self._sum / self._count if self._count else math.nan
        raise AssertionError(self.kind)  # pragma: no cover
