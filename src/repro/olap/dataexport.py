"""Exporting populated star schemas as SQL data (INSERT statements).

Completes the "commercial OLAP tool" export path: :mod:`repro.olap.sqlgen`
emits the DDL, this module emits the data — denormalised dimension rows
(hierarchy attributes flattened in via :meth:`DimensionData.ancestors_at`),
fact rows with surrogate keys, and bridge rows for many-to-many
dimensions and non-strict fan-outs.

The output is deterministic: members and rows are emitted in insertion
order, surrogate keys are dense integers starting at 1.
"""

from __future__ import annotations

import math

from ..mdm.dimensions import DimensionClass
from ..mdm.model import GoldModel
from .sqlgen import _identifier
from .star import DimensionData, StarSchema

__all__ = ["star_data_sql"]


def _literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float) and not math.isfinite(value):
        # str() would emit bare nan/inf, which no SQL parser accepts;
        # the standard spelling is a cast of the quoted special value.
        if math.isnan(value):
            return "CAST('NaN' AS DOUBLE PRECISION)"
        sign = "-" if value < 0 else ""
        return f"CAST('{sign}Infinity' AS DOUBLE PRECISION)"
    if isinstance(value, (int, float)):
        return str(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def star_data_sql(star: StarSchema) -> str:
    """INSERT statements loading *star* into the star-layout DDL."""
    statements: list[str] = [
        f"-- Data export for model: {star.model.name}"]
    surrogate_keys: dict[str, dict[object, int]] = {}

    for dimension in star.model.dimensions:
        data = star.dimensions[dimension.id]
        keys = _dimension_inserts(dimension, data, statements)
        surrogate_keys[dimension.id] = keys

    for fact in star.model.facts:
        _fact_inserts(star.model, fact, star, surrogate_keys, statements)
    return "\n".join(statements) + "\n"


def _dimension_inserts(dimension: DimensionClass, data: DimensionData,
                       statements: list[str]) -> dict[object, int]:
    table = f"dim_{_identifier(dimension.name)}"
    columns = [f"{table}_key"]
    columns += [_identifier(a.name) for a in dimension.attributes]
    level_attribute_columns: list[tuple[str, str, str]] = []
    for level in dimension.levels:
        prefix = _identifier(level.name)
        for attribute in level.attributes:
            column = f"{prefix}_{_identifier(attribute.name)}"
            columns.append(column)
            level_attribute_columns.append(
                (level.id, attribute.name, column))

    statements.append(f"-- members of dimension {dimension.name}")
    surrogate: dict[object, int] = {}
    for index, (key, member) in enumerate(
            data.members(dimension.id).items(), start=1):
        surrogate[key] = index
        values: list[object] = [index]
        values += [member.attributes.get(a.name)
                   for a in dimension.attributes]
        # Flatten hierarchy values; ambiguous (non-strict) ancestors take
        # the first, the bridge table carries the rest.
        ancestor_cache: dict[str, list] = {}
        for level_id, attribute_name, _column in level_attribute_columns:
            ancestors = ancestor_cache.get(level_id)
            if ancestors is None:
                ancestors = data.ancestors_at(key, level_id)
                ancestor_cache[level_id] = ancestors
            values.append(
                ancestors[0].attributes.get(attribute_name)
                if ancestors else None)
        rendered = ", ".join(_literal(v) for v in values)
        statements.append(
            f"INSERT INTO {table} ({', '.join(columns)}) "
            f"VALUES ({rendered});")
    return surrogate


def _fact_inserts(model: GoldModel, fact, star: StarSchema,
                  surrogate_keys: dict[str, dict[object, int]],
                  statements: list[str]) -> None:
    table = f"fact_{_identifier(fact.name)}"
    fk_aggregations = [a for a in fact.aggregations if not a.many_to_many]
    mn_aggregations = [a for a in fact.aggregations if a.many_to_many]

    columns: list[str] = []
    for aggregation in fk_aggregations:
        dimension = model.dimension_class(aggregation.dimension)
        columns.append(f"dim_{_identifier(dimension.name)}_key")
    columns += [_identifier(a.name) for a in fact.attributes]

    statements.append(f"-- rows of fact {fact.name}")
    for row_number, row in enumerate(star.facts[fact.id].rows, start=1):
        values: list[object] = []
        for aggregation in fk_aggregations:
            member_keys = row.member_keys(aggregation.dimension)
            values.append(
                surrogate_keys[aggregation.dimension].get(member_keys[0])
                if member_keys else None)
        values += [row.values.get(a.name) for a in fact.attributes]
        rendered = ", ".join(_literal(v) for v in values)
        statements.append(
            f"INSERT INTO {table} ({', '.join(columns)}) "
            f"VALUES ({rendered});")
        for aggregation in mn_aggregations:
            dimension = model.dimension_class(aggregation.dimension)
            bridge = f"{table}_{_identifier(dimension.name)}_bridge"
            for member_key in row.member_keys(aggregation.dimension):
                surrogate = surrogate_keys[aggregation.dimension].get(
                    member_key)
                statements.append(
                    f"INSERT INTO {bridge} ({table}_row, "
                    f"dim_{_identifier(dimension.name)}_key) "
                    f"VALUES ({row_number}, {_literal(surrogate)});")
