"""The schema component model (XSD Part 1 subset).

Components mirror the W3C abstract data model: element and attribute
declarations, model groups, particles, complex types, and identity
constraints.  They can be created programmatically (how
``repro.mdm.schema_gen`` builds ``goldmodel.xsd``) or read from a schema
document by :mod:`repro.xsd.reader`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .simpletypes import AnySimpleType, ListType, SimpleType, UnionType

__all__ = [
    "AttributeDecl",
    "ElementDecl",
    "ModelGroup",
    "Particle",
    "AnyWildcard",
    "ComplexType",
    "IdentityConstraint",
    "UNBOUNDED",
    "SimpleTypeLike",
]

#: Sentinel for ``maxOccurs="unbounded"``.
UNBOUNDED: None = None

SimpleTypeLike = Union[SimpleType, ListType, UnionType, AnySimpleType]


@dataclass
class AttributeDecl:
    """An attribute declaration.

    ``use`` is ``"required"``, ``"optional"`` or ``"prohibited"``;
    ``default`` is applied by the validator when the attribute is absent;
    ``fixed`` both defaults and constrains the value.
    """

    name: str
    type: SimpleTypeLike = field(default_factory=AnySimpleType)
    use: str = "optional"
    default: str | None = None
    fixed: str | None = None

    def __post_init__(self) -> None:
        if self.use not in ("required", "optional", "prohibited"):
            raise ValueError(f"invalid attribute use {self.use!r}")
        if self.use == "required" and self.default is not None:
            raise ValueError(
                f"attribute {self.name!r}: required attributes cannot "
                "have defaults")


@dataclass
class IdentityConstraint:
    """``xsd:key`` / ``xsd:unique`` / ``xsd:keyref``.

    ``selector`` and ``fields`` are XPath expressions evaluated by the full
    engine (the spec's restricted subset is a subset of what we support).
    ``refer`` names the key a keyref targets.
    """

    kind: str  # 'key' | 'unique' | 'keyref'
    name: str
    selector: str
    fields: list[str]
    refer: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("key", "unique", "keyref"):
            raise ValueError(f"invalid identity constraint kind {self.kind!r}")
        if self.kind == "keyref" and not self.refer:
            raise ValueError(f"keyref {self.name!r} must have a 'refer'")
        if not self.fields:
            raise ValueError(
                f"identity constraint {self.name!r} needs at least one field")


@dataclass
class ElementDecl:
    """An element declaration.

    ``type`` is a complex type, a simple type, or None for ``anyType``
    content (anything well-formed).  Identity constraints are scoped to
    this element, matching where ``<xsd:key>`` elements appear in a schema
    document.
    """

    name: str
    type: "ComplexType | SimpleTypeLike | None" = None
    nillable: bool = False
    constraints: list[IdentityConstraint] = field(default_factory=list)

    def describe(self) -> str:
        return f"element {self.name}"


@dataclass
class AnyWildcard:
    """``xsd:any`` — matches any element (processContents=skip)."""

    def describe(self) -> str:
        return "any element"


@dataclass
class ModelGroup:
    """``xsd:sequence`` / ``xsd:choice`` / ``xsd:all`` of particles."""

    kind: str  # 'sequence' | 'choice' | 'all'
    particles: list["Particle"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in ("sequence", "choice", "all"):
            raise ValueError(f"invalid model group kind {self.kind!r}")

    def describe(self) -> str:
        return self.kind


@dataclass
class Particle:
    """A term with occurrence bounds; ``max_occurs=None`` means unbounded."""

    term: "ElementDecl | ModelGroup | AnyWildcard"
    min_occurs: int = 1
    max_occurs: int | None = 1

    def __post_init__(self) -> None:
        if self.min_occurs < 0:
            raise ValueError("minOccurs must be >= 0")
        if self.max_occurs is not None and self.max_occurs < self.min_occurs:
            raise ValueError("maxOccurs must be >= minOccurs")

    @property
    def occurs_label(self) -> str:
        """Short label like ``0..*`` used by the tree view (Fig. 2 style)."""
        high = "*" if self.max_occurs is None else str(self.max_occurs)
        return f"{self.min_occurs}..{high}"


@dataclass
class ComplexType:
    """A complex type: attributes plus element (or simple, or mixed) content.

    Exactly one of these shapes applies:

    * ``content`` is a Particle — element-only (or mixed) content;
    * ``simple_content`` is a simple type — text content with attributes;
    * both are None — empty content.
    """

    name: str | None = None
    attributes: list[AttributeDecl] = field(default_factory=list)
    content: Particle | None = None
    simple_content: SimpleTypeLike | None = None
    mixed: bool = False

    def __post_init__(self) -> None:
        if self.content is not None and self.simple_content is not None:
            raise ValueError(
                "a complex type cannot have both element and simple content")

    def attribute(self, name: str) -> AttributeDecl | None:
        """Find the declaration for attribute *name*, if any."""
        for decl in self.attributes:
            if decl.name == name:
                return decl
        return None
