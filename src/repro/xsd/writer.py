"""Serializing Schema objects back to ``.xsd`` documents.

The inverse of :mod:`repro.xsd.reader`: programmatically built schemas
(like the paper's ``goldmodel.xsd`` from :mod:`repro.mdm.schema_gen`) can
be written out as Russian-doll schema documents, shipped to users, and
read back — the reader/writer round-trip is covered by tests.
"""

from __future__ import annotations

from decimal import Decimal

from ..xml.dom import Comment, Document, Element
from .components import (
    AnyWildcard,
    AttributeDecl,
    ComplexType,
    ElementDecl,
    IdentityConstraint,
    ModelGroup,
    Particle,
)
from .datatypes import Datatype
from .errors import SchemaError
from .facets import (
    Enumeration,
    Facet,
    FractionDigits,
    Length,
    MaxExclusive,
    MaxInclusive,
    MaxLength,
    MinExclusive,
    MinInclusive,
    MinLength,
    Pattern,
    TotalDigits,
)
from .reader import XSD_NAMESPACE
from .schema import Schema
from .simpletypes import AnySimpleType, ListType, SimpleType, UnionType

__all__ = ["schema_to_document", "schema_to_xml"]


def schema_to_document(schema: Schema) -> Document:
    """Render *schema* as an ``<xsd:schema>`` DOM document."""
    return _Writer(schema).write()


def schema_to_xml(schema: Schema) -> str:
    """Render *schema* as pretty-printed ``.xsd`` text."""
    from ..xml.serializer import pretty_print

    return pretty_print(schema_to_document(schema))


class _Writer:
    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        # Reverse map: definition object → registered name.
        self._names: dict[int, str] = {
            id(definition): name
            for name, definition in schema.types.items()
        }

    def write(self) -> Document:
        document = Document()
        root = Element("xsd:schema")
        root.declare_namespace("xsd", XSD_NAMESPACE)
        root.set_attribute("xmlns:xsd", XSD_NAMESPACE)
        if self.schema.target_namespace:
            root.set_attribute("targetNamespace",
                               self.schema.target_namespace)
        document.append_child(root)

        if self.schema.documentation:
            annotation = root.append_child(Element("xsd:annotation"))
            doc_el = annotation.append_child(Element("xsd:documentation"))
            from ..xml.dom import Text

            doc_el.append_child(Text(self.schema.documentation))

        for name, definition in self.schema.types.items():
            if isinstance(definition, ComplexType):
                root.append_child(self._complex_type(definition, name=name))
            else:
                root.append_child(self._simple_type(definition, name=name))
        for decl in self.schema.elements.values():
            root.append_child(self._element(decl, top_level=True))
        return document

    # -- elements ---------------------------------------------------------------

    def _element(self, decl: ElementDecl, *, top_level: bool = False,
                 min_occurs: int = 1,
                 max_occurs: int | None = 1) -> Element:
        element = Element("xsd:element")
        element.set_attribute("name", decl.name)
        if decl.nillable:
            element.set_attribute("nillable", "true")
        if not top_level:
            if min_occurs != 1:
                element.set_attribute("minOccurs", str(min_occurs))
            if max_occurs != 1:
                element.set_attribute(
                    "maxOccurs",
                    "unbounded" if max_occurs is None else str(max_occurs))
        etype = decl.type
        if etype is None:
            pass  # anyType content
        elif self._names.get(id(etype)):
            element.set_attribute("type", self._names[id(etype)])
        elif isinstance(etype, ComplexType):
            element.append_child(self._complex_type(etype))
        elif isinstance(etype, SimpleType) and etype.name and \
                not etype.facets and isinstance(etype.base, Datatype):
            element.set_attribute("type", f"xsd:{etype.base.name}")
        else:
            element.append_child(self._simple_type(etype))
        for constraint in decl.constraints:
            element.append_child(self._identity_constraint(constraint))
        return element

    def _identity_constraint(self, constraint: IdentityConstraint) -> Element:
        element = Element(f"xsd:{constraint.kind}")
        element.set_attribute("name", constraint.name)
        if constraint.refer:
            element.set_attribute("refer", constraint.refer)
        selector = Element("xsd:selector")
        selector.set_attribute("xpath", constraint.selector)
        element.append_child(selector)
        for field_xpath in constraint.fields:
            field = Element("xsd:field")
            field.set_attribute("xpath", field_xpath)
            element.append_child(field)
        return element

    # -- complex types -------------------------------------------------------------

    def _complex_type(self, ctype: ComplexType,
                      name: str | None = None) -> Element:
        element = Element("xsd:complexType")
        if name:
            element.set_attribute("name", name)
        if ctype.mixed:
            element.set_attribute("mixed", "true")
        if ctype.simple_content is not None:
            content = Element("xsd:simpleContent")
            extension = Element("xsd:extension")
            extension.set_attribute(
                "base", self._type_reference(ctype.simple_content))
            for attr in ctype.attributes:
                extension.append_child(self._attribute(attr))
            content.append_child(extension)
            element.append_child(content)
            return element
        if ctype.content is not None:
            element.append_child(self._particle(ctype.content))
        for attr in ctype.attributes:
            element.append_child(self._attribute(attr))
        return element

    def _particle(self, particle: Particle) -> Element:
        term = particle.term
        if isinstance(term, ElementDecl):
            return self._element(term, min_occurs=particle.min_occurs,
                                 max_occurs=particle.max_occurs)
        if isinstance(term, AnyWildcard):
            element = Element("xsd:any")
            element.set_attribute("processContents", "skip")
            _occurs(element, particle)
            return element
        assert isinstance(term, ModelGroup)
        element = Element(f"xsd:{term.kind}")
        _occurs(element, particle)
        for child in term.particles:
            element.append_child(self._particle(child))
        return element

    def _attribute(self, decl: AttributeDecl) -> Element:
        element = Element("xsd:attribute")
        element.set_attribute("name", decl.name)
        reference = self._type_reference(decl.type, allow_none=True)
        if reference is not None:
            element.set_attribute("type", reference)
        else:
            element.append_child(self._simple_type(decl.type))
        if decl.use != "optional":
            element.set_attribute("use", decl.use)
        if decl.default is not None:
            element.set_attribute("default", decl.default)
        if decl.fixed is not None:
            element.set_attribute("fixed", decl.fixed)
        return element

    # -- simple types ----------------------------------------------------------------

    def _type_reference(self, stype, *, allow_none: bool = False
                        ) -> str | None:
        """A @type reference for *stype*, or None when it must be inline."""
        named = self._names.get(id(stype))
        if named:
            return named
        if isinstance(stype, AnySimpleType):
            return "xsd:string"
        if isinstance(stype, SimpleType) and not stype.facets and \
                isinstance(stype.base, Datatype):
            return f"xsd:{stype.base.name}"
        if allow_none:
            return None
        raise SchemaError(
            "cannot reference an anonymous restricted simple type here")

    def _simple_type(self, stype, name: str | None = None) -> Element:
        element = Element("xsd:simpleType")
        if name:
            element.set_attribute("name", name)
        if isinstance(stype, ListType):
            child = Element("xsd:list")
            child.set_attribute(
                "itemType", self._type_reference(stype.item_type))
            element.append_child(child)
            return element
        if isinstance(stype, UnionType):
            child = Element("xsd:union")
            child.set_attribute("memberTypes", " ".join(
                self._type_reference(member)
                for member in stype.member_types))
            element.append_child(child)
            return element
        assert isinstance(stype, SimpleType)
        restriction = Element("xsd:restriction")
        base = stype.base
        if isinstance(base, Datatype):
            restriction.set_attribute("base", f"xsd:{base.name}")
        else:
            reference = self._type_reference(base, allow_none=True)
            if reference is not None:
                restriction.set_attribute("base", reference)
            else:
                restriction.append_child(self._simple_type(base))
        for facet in stype.facets:
            for rendered in self._facet(facet):
                restriction.append_child(rendered)
        element.append_child(restriction)
        return element

    @staticmethod
    def _facet(facet: Facet) -> list[Element]:
        def single(tag: str, value: object) -> list[Element]:
            element = Element(f"xsd:{tag}")
            if isinstance(value, Decimal):
                value = format(value, "f")
            element.set_attribute("value", str(value))
            return [element]

        if isinstance(facet, Enumeration):
            out = []
            for value in facet.values:
                out.extend(single("enumeration", value))
            return out
        if isinstance(facet, Pattern):
            return single("pattern", facet.pattern)
        if isinstance(facet, Length):
            return single("length", facet.length)
        if isinstance(facet, MinLength):
            return single("minLength", facet.length)
        if isinstance(facet, MaxLength):
            return single("maxLength", facet.length)
        if isinstance(facet, MinInclusive):
            return single("minInclusive", facet.bound)
        if isinstance(facet, MaxInclusive):
            return single("maxInclusive", facet.bound)
        if isinstance(facet, MinExclusive):
            return single("minExclusive", facet.bound)
        if isinstance(facet, MaxExclusive):
            return single("maxExclusive", facet.bound)
        if isinstance(facet, TotalDigits):
            return single("totalDigits", facet.digits)
        if isinstance(facet, FractionDigits):
            return single("fractionDigits", facet.digits)
        raise SchemaError(f"cannot serialize facet {facet!r}")


def _occurs(element: Element, particle: Particle) -> None:
    if particle.min_occurs != 1:
        element.set_attribute("minOccurs", str(particle.min_occurs))
    if particle.max_occurs != 1:
        element.set_attribute(
            "maxOccurs",
            "unbounded" if particle.max_occurs is None
            else str(particle.max_occurs))
