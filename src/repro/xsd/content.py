"""Content-model validation via position automata.

A :class:`Particle` tree compiles to an epsilon-free NFA (Glushkov-style:
Thompson construction followed by epsilon-closure elimination).  Validation
simulates the NFA over an element's children with a set of live states —
linear in ``children × states`` and immune to pathological backtracking.

Bounded ``maxOccurs`` values are implemented by unrolling (the goldmodel
schema only uses 0, 1 and unbounded, but bounded counts up to
:data:`MAX_UNROLL` are supported for generality).

``xsd:all`` groups do not compose with the automaton construction and are
validated by a dedicated counting matcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..xml.dom import Comment, Element, Node, ProcessingInstruction, Text
from .components import AnyWildcard, ElementDecl, ModelGroup, Particle
from .errors import SchemaError

__all__ = ["ContentAutomaton", "compile_content", "MAX_UNROLL"]

#: Largest bounded maxOccurs the compiler will unroll.
MAX_UNROLL = 512


@dataclass
class _State:
    """One NFA state: transitions map symbol objects to state sets."""

    index: int
    transitions: list[tuple["ElementDecl | AnyWildcard", "_State"]] = \
        field(default_factory=list)
    accepting: bool = False


class ContentAutomaton:
    """A compiled content model ready to validate child sequences."""

    def __init__(self, particle: Particle) -> None:
        self._particle = particle
        self._all_group = self._extract_all_group(particle)
        if self._all_group is None:
            self._start, states = _compile_nfa(particle)
            self._states = states

    @staticmethod
    def _extract_all_group(particle: Particle) -> ModelGroup | None:
        term = particle.term
        if isinstance(term, ModelGroup) and term.kind == "all":
            if particle.max_occurs not in (0, 1):
                raise SchemaError("an xsd:all group cannot repeat")
            return term
        return None

    # -- validation ------------------------------------------------------------

    def validate(self, children: list[Element]) -> str | None:
        """Validate *children* (element nodes only).

        Returns None on success or an error message describing the first
        mismatch and what was expected.
        """
        if self._all_group is not None:
            return self._validate_all(children)
        return self._simulate(children)

    def matching_decl(self, name: str,
                      live: set[int] | None = None) -> ElementDecl | None:
        """The element declaration a child named *name* would match.

        Used by the validator to recurse into children with the right type.
        With no *live* state set, searches the whole automaton.
        """
        if self._all_group is not None:
            for particle in self._all_group.particles:
                term = particle.term
                if isinstance(term, ElementDecl) and term.name == name:
                    return term
            return None
        for state in self._states:
            for symbol, _ in state.transitions:
                if isinstance(symbol, ElementDecl) and symbol.name == name:
                    return symbol
        return None

    def _simulate(self, children: list[Element]) -> str | None:
        current = {self._start.index}
        states = self._states
        for position, child in enumerate(children):
            nxt: set[int] = set()
            for index in current:
                for symbol, target in states[index].transitions:
                    if _symbol_matches(symbol, child):
                        nxt.add(target.index)
            if not nxt:
                expected = self._expected_names(current)
                return (
                    f"unexpected element <{child.name}> at child position "
                    f"{position + 1}; expected "
                    f"{expected or 'no more elements'}")
            current = nxt
        if not any(states[index].accepting for index in current):
            expected = self._expected_names(current)
            return f"content is incomplete; expected {expected}"
        return None

    def _expected_names(self, live: set[int]) -> str:
        names = sorted({
            symbol.name if isinstance(symbol, ElementDecl) else "*"
            for index in live
            for symbol, _ in self._states[index].transitions
        })
        return ", ".join(f"<{name}>" for name in names)

    def _validate_all(self, children: list[Element]) -> str | None:
        assert self._all_group is not None
        counts: dict[str, int] = {}
        declared = {}
        for particle in self._all_group.particles:
            term = particle.term
            if not isinstance(term, ElementDecl):
                raise SchemaError("xsd:all may only contain elements")
            declared[term.name] = particle
        for child in children:
            if child.name not in declared:
                return f"unexpected element <{child.name}> in all-group"
            counts[child.name] = counts.get(child.name, 0) + 1
        for name, particle in declared.items():
            count = counts.get(name, 0)
            if count < particle.min_occurs:
                return f"element <{name}> occurs {count} time(s), " \
                       f"minimum is {particle.min_occurs}"
            if particle.max_occurs is not None and \
                    count > particle.max_occurs:
                return f"element <{name}> occurs {count} time(s), " \
                       f"maximum is {particle.max_occurs}"
        return None

    # -- introspection -----------------------------------------------------------

    def ambiguous_transitions(self) -> list[str]:
        """Element names reachable ambiguously (UPA violations).

        A content model violates Unique Particle Attribution when some
        state has two transitions on the same element name leading to
        different states.  Returns the offending names (empty = clean).
        """
        if self._all_group is not None:
            return []
        offenders: set[str] = set()
        for state in self._states:
            seen: dict[str, int] = {}
            for symbol, target in state.transitions:
                name = symbol.name if isinstance(symbol, ElementDecl) else "*"
                if name in seen and seen[name] != target.index:
                    offenders.add(name)
                seen[name] = target.index
        return sorted(offenders)


def compile_content(particle: Particle) -> ContentAutomaton:
    """Compile *particle* into a reusable :class:`ContentAutomaton`."""
    return ContentAutomaton(particle)


def _symbol_matches(symbol: ElementDecl | AnyWildcard, child: Element) -> bool:
    if isinstance(symbol, AnyWildcard):
        return True
    return child.name == symbol.name


# -- NFA construction -------------------------------------------------------------


class _Fragment:
    """An epsilon-NFA fragment under construction."""

    __slots__ = ("entries", "exits", "accepts_empty")

    def __init__(self, entries: list[tuple[object, "_State"]],
                 exits: list["_State"], accepts_empty: bool) -> None:
        # entries: transitions leaving the fragment's start.
        self.entries = entries
        # exits: states whose completion ends the fragment.
        self.exits = exits
        self.accepts_empty = accepts_empty


def _compile_nfa(particle: Particle) -> tuple[_State, list[_State]]:
    states: list[_State] = []

    def new_state() -> _State:
        state = _State(len(states))
        states.append(state)
        return state

    def build(particle: Particle) -> _Fragment:
        fragment = build_term(particle.term)
        return apply_occurs(fragment, particle.min_occurs,
                            particle.max_occurs, particle.term)

    def build_term(term: object) -> _Fragment:
        if isinstance(term, (ElementDecl, AnyWildcard)):
            state = new_state()
            return _Fragment([(term, state)], [state], False)
        if isinstance(term, ModelGroup):
            if term.kind == "sequence":
                return build_sequence([build(p) for p in term.particles])
            if term.kind == "choice":
                return build_choice([build(p) for p in term.particles])
            raise SchemaError(
                "xsd:all cannot be nested inside other groups")
        raise SchemaError(f"unsupported term {term!r}")

    def build_sequence(fragments: list[_Fragment]) -> _Fragment:
        if not fragments:
            return _Fragment([], [], True)
        result = fragments[0]
        for fragment in fragments[1:]:
            result = concatenate(result, fragment)
        return result

    def concatenate(left: _Fragment, right: _Fragment) -> _Fragment:
        for state in left.exits:
            state.transitions.extend(right.entries)
        entries = list(left.entries)
        if left.accepts_empty:
            entries.extend(right.entries)
        exits = list(right.exits)
        if right.accepts_empty:
            exits.extend(left.exits)
        return _Fragment(entries, exits,
                         left.accepts_empty and right.accepts_empty)

    def build_choice(fragments: list[_Fragment]) -> _Fragment:
        entries: list[tuple[object, _State]] = []
        exits: list[_State] = []
        accepts_empty = False
        for fragment in fragments:
            entries.extend(fragment.entries)
            exits.extend(fragment.exits)
            accepts_empty = accepts_empty or fragment.accepts_empty
        return _Fragment(entries, exits, accepts_empty or not fragments)

    def clone_term(term: object) -> _Fragment:
        return build_term(term)

    def apply_occurs(fragment: _Fragment, low: int, high: int | None,
                     term: object) -> _Fragment:
        if high is not None and high > MAX_UNROLL:
            raise SchemaError(
                f"maxOccurs={high} exceeds the unroll limit {MAX_UNROLL}; "
                "use 'unbounded'")
        if low == 1 and high == 1:
            return fragment
        if high is None:
            # fragment{low,} — chain `low` copies, make the last self-looping.
            looped = fragment
            for state in looped.exits:
                state.transitions.extend(looped.entries)
            if low <= 1:
                looped.accepts_empty = looped.accepts_empty or low == 0
                return looped
            chain = [clone_term(term) for _ in range(low - 1)]
            result = build_sequence(chain)
            return concatenate(result, looped)
        # Bounded: `low` mandatory copies + (high-low) optional copies.
        copies = [fragment] + [clone_term(term) for _ in range(high - 1)]
        for optional in copies[low:]:
            optional.accepts_empty = True
        if low == 0 and high == 0:
            return _Fragment([], [], True)
        return build_sequence(copies[:high])

    start = new_state()
    fragment = build(particle)
    start.transitions.extend(fragment.entries)
    for state in fragment.exits:
        state.accepting = True
    start.accepting = fragment.accepts_empty
    return start, states


def element_children(element: Element) -> list[Element]:
    """Child *elements* of a node (ignoring comments/PIs/whitespace text)."""
    return [c for c in element.children if isinstance(c, Element)]


def significant_text(element: Element) -> str:
    """Concatenated non-ignorable character data of *element*'s children."""
    return "".join(
        child.data for child in element.children if isinstance(child, Text))


def has_significant_text(element: Element) -> bool:
    """True if *element* has non-whitespace character data children."""
    return any(
        isinstance(child, Text) and child.data.strip()
        for child in element.children)
