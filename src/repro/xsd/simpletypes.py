"""Simple-type definitions: restriction, list, and union variants.

A :class:`SimpleType` wraps a built-in :class:`~repro.xsd.datatypes.Datatype`
(or another simple type) with constraining facets.  Validation returns the
typed value so the instance validator can track IDs and compare ordered
facets on values rather than text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .datatypes import Datatype, lookup_builtin
from .facets import Facet

__all__ = ["SimpleType", "ListType", "UnionType", "AnySimpleType",
           "builtin_simple_type"]


@dataclass
class SimpleType:
    """A simple type derived by restriction.

    ``name`` is None for anonymous (Russian-doll) types.  ``base`` may be a
    built-in datatype or another :class:`SimpleType` — facets accumulate
    down the derivation chain.
    """

    base: "Datatype | SimpleType"
    facets: list[Facet] = field(default_factory=list)
    name: str | None = None

    @property
    def primitive(self) -> Datatype:
        """The built-in datatype at the root of the derivation chain."""
        base = self.base
        while isinstance(base, SimpleType):
            base = base.base
        return base

    @property
    def id_kind(self) -> str | None:
        """ID/IDREF/IDREFS classification inherited from the primitive."""
        return self.primitive.id_kind

    def normalize(self, text: str) -> str:
        """Apply the primitive's whiteSpace facet."""
        return self.primitive.normalize(text)

    def validate(self, text: str) -> object:
        """Validate *text*; return the typed value or raise ``ValueError``."""
        lexical = self.normalize(text)
        value = self._parse(lexical)
        for facet in self.all_facets():
            problem = facet.check(lexical, value)
            if problem is not None:
                raise ValueError(problem)
        return value

    def _parse(self, lexical: str) -> object:
        base = self.base
        if isinstance(base, SimpleType):
            return base._parse(lexical)
        return base.parse(lexical)

    def all_facets(self) -> list[Facet]:
        """Facets of this type and every restriction ancestor."""
        facets: list[Facet] = []
        current: Datatype | SimpleType = self
        while isinstance(current, SimpleType):
            facets.extend(current.facets)
            current = current.base
        return facets

    def describe(self) -> str:
        """A short human-readable description for the tree view."""
        label = self.name or f"restriction of {self.primitive.name}"
        parts = [facet.describe() for facet in self.facets]
        return f"{label} [{'; '.join(parts)}]" if parts else label


@dataclass
class ListType:
    """A simple type whose value is a whitespace-separated item list."""

    item_type: "SimpleType | Datatype"
    facets: list[Facet] = field(default_factory=list)
    name: str | None = None
    id_kind = None

    def normalize(self, text: str) -> str:
        return " ".join(text.split())

    def validate(self, text: str) -> object:
        lexical = self.normalize(text)
        items = lexical.split()
        values = [
            self.item_type.validate(item)  # type: ignore[union-attr]
            for item in items
        ]
        for facet in self.facets:
            problem = facet.check(lexical, values)
            if problem is not None:
                raise ValueError(problem)
        return values

    def describe(self) -> str:
        item = getattr(self.item_type, "name", None) or "anonymous"
        return self.name or f"list of {item}"


@dataclass
class UnionType:
    """A simple type accepting any of its member types' values."""

    member_types: Sequence["SimpleType | Datatype"]
    name: str | None = None
    id_kind = None

    def normalize(self, text: str) -> str:
        return text.strip(" \t\r\n")

    def validate(self, text: str) -> object:
        problems: list[str] = []
        for member in self.member_types:
            try:
                return member.validate(text)  # type: ignore[union-attr]
            except ValueError as exc:
                problems.append(str(exc))
        raise ValueError(
            "no union member accepted the value: " + "; ".join(problems))

    def describe(self) -> str:
        members = ", ".join(
            getattr(m, "name", None) or "anonymous" for m in self.member_types)
        return self.name or f"union of ({members})"


class AnySimpleType:
    """The unconstrained simple type (used for untyped attributes)."""

    name = "anySimpleType"
    id_kind = None

    @staticmethod
    def normalize(text: str) -> str:
        return text

    @staticmethod
    def validate(text: str) -> object:
        return text

    @staticmethod
    def describe() -> str:
        return "anySimpleType"


def builtin_simple_type(name: str) -> SimpleType:
    """Wrap the built-in datatype *name* as a facet-less SimpleType."""
    datatype = lookup_builtin(name)
    return SimpleType(base=datatype, name=datatype.name)
