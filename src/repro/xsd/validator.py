"""Instance-document validation against a :class:`~repro.xsd.schema.Schema`.

This is the stand-in for Apache Xerces in the paper's toolchain (§3.2):
given a parsed document and a schema it checks

* element structure against compiled content automata,
* attribute presence, types, defaults and fixed values,
* ID uniqueness and IDREF resolution (document-wide),
* ``xsd:key`` / ``xsd:unique`` / ``xsd:keyref`` identity constraints —
  the selective references §3.1 highlights as the advantage over DTDs.

All problems are collected into a :class:`ValidationReport` rather than
stopping at the first, which is what a CASE tool needs to show users every
modelling mistake at once.
"""

from __future__ import annotations

from ..faults import FAULTS as _FAULTS
from ..faults import fault_point as _fault_point
from ..obs.recorder import RECORDER as _REC
from ..xml.dom import Attribute, Document, Element, Node
from ..xpath import Context, XPathEvaluator
from ..xpath.parser import parse_xpath
from .components import (
    AttributeDecl,
    ComplexType,
    ElementDecl,
    IdentityConstraint,
)
from .content import has_significant_text, significant_text
from .errors import ValidationReport
from .schema import Schema
from .simpletypes import AnySimpleType

__all__ = ["validate", "SchemaValidator"]

_VALIDATE_FAULT = _fault_point(
    "xsd.validate", "raise/delay at the start of a schema validation "
                    "(validator.py)")


def validate(document: Document | Element, schema: Schema) -> ValidationReport:
    """Validate *document* against *schema* and return the report."""
    return SchemaValidator(schema).validate(document)


class SchemaValidator:
    """A reusable validator bound to one schema."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._xpath = XPathEvaluator()

    # -- entry -------------------------------------------------------------

    def validate(self, document: Document | Element) -> ValidationReport:
        """Validate a document (or a detached element) and report issues."""
        if _FAULTS.enabled:
            _FAULTS.hit(_VALIDATE_FAULT)
        report = ValidationReport()
        root = document.root_element if isinstance(document, Document) \
            else document
        if root is None:
            report.add("document has no root element")
            return report

        decl = self.schema.elements.get(root.name)
        if decl is None:
            expected = ", ".join(sorted(self.schema.elements))
            report.add(
                f"root element <{root.name}> is not declared; expected one "
                f"of: {expected}", path=f"/{root.name}",
                line=root.line, code="cvc-elt.1")
            return report

        ids: dict[str, str] = {}
        idrefs: list[tuple[str, str, int | None]] = []
        with _REC.span("xsd.validate", root=root.name):
            self._validate_element(root, decl, f"/{root.name}", report, ids,
                                   idrefs)
            if _REC.enabled and idrefs:
                _REC.count("xsd.check:idref", len(idrefs))
            for value, path, line in idrefs:
                if value not in ids:
                    if _REC.enabled:
                        _REC.count("xsd.fail:idref")
                    report.add(
                        f"IDREF {value!r} does not match any ID in the "
                        f"document", path=path, line=line, code="cvc-id.1")
            self._check_identity_constraints(root, decl, report)
        return report

    # -- element validation -----------------------------------------------------

    def _validate_element(self, element: Element, decl: ElementDecl,
                          path: str, report: ValidationReport,
                          ids: dict[str, str],
                          idrefs: list[tuple[str, str, int | None]]) -> None:
        if _REC.enabled:
            _REC.count("xsd.check:element")
        nil = element.get_attribute("xsi:nil")
        if nil == "true":
            if not decl.nillable:
                report.add(
                    f"element <{element.name}> is not nillable",
                    path=path, line=element.line, code="cvc-elt.3.1")
            elif any(child.kind in ("element", "text")
                     for child in element.children):
                report.add(
                    f"element <{element.name}> is nil but has content",
                    path=path, line=element.line, code="cvc-elt.3.2.1")
            return
        etype = decl.type
        if etype is None:
            # anyType: anything goes, but still track IDs in the subtree.
            return
        if isinstance(etype, ComplexType):
            self._validate_complex(element, etype, path, report, ids, idrefs)
        else:
            # Simple-type element: no attributes, no element children.
            for attr in element.attributes:
                if not _is_namespace_decl(attr) and \
                        not attr.name.startswith("xsi:"):
                    report.add(
                        f"element <{element.name}> of simple type cannot "
                        f"have attribute {attr.name!r}", path=path,
                        line=element.line, code="cvc-type.3.1.1")
            children = [c for c in element.children if isinstance(c, Element)]
            if children:
                report.add(
                    f"element <{element.name}> of simple type cannot have "
                    "child elements", path=path, line=element.line,
                    code="cvc-type.3.1.2")
            self._check_simple_value(
                element.text_content(), etype,
                f"content of <{element.name}>", path, element.line,
                report, ids, idrefs)

    def _validate_complex(self, element: Element, ctype: ComplexType,
                          path: str, report: ValidationReport,
                          ids: dict[str, str],
                          idrefs: list[tuple[str, str, int | None]]) -> None:
        self._validate_attributes(element, ctype, path, report, ids, idrefs)

        children = [c for c in element.children if isinstance(c, Element)]

        if ctype.simple_content is not None:
            if children:
                report.add(
                    f"element <{element.name}> has simple content but "
                    "contains child elements", path=path, line=element.line,
                    code="cvc-complex-type.2.2")
            else:
                self._check_simple_value(
                    significant_text(element), ctype.simple_content,
                    f"content of <{element.name}>", path, element.line,
                    report, ids, idrefs)
            return

        if ctype.content is None:
            if children:
                report.add(
                    f"element <{element.name}> must be empty but has child "
                    "elements", path=path, line=element.line,
                    code="cvc-complex-type.2.1")
            if has_significant_text(element) and not ctype.mixed:
                report.add(
                    f"element <{element.name}> must be empty but has "
                    "character data", path=path, line=element.line,
                    code="cvc-complex-type.2.1")
            return

        if has_significant_text(element) and not ctype.mixed:
            report.add(
                f"element <{element.name}> has element-only content but "
                "contains character data", path=path, line=element.line,
                code="cvc-complex-type.2.3")

        automaton = self.schema.automaton_for(ctype)
        assert automaton is not None
        problem = automaton.validate(children)
        if problem is not None:
            report.add(
                f"in <{element.name}>: {problem}", path=path,
                line=element.line, code="cvc-complex-type.2.4")

        # Recurse into children that have a matching declaration even if the
        # overall sequence failed — nested errors are still worth reporting.
        sibling_index: dict[str, int] = {}
        for child in children:
            ordinal = sibling_index.get(child.name, 0) + 1
            sibling_index[child.name] = ordinal
            child_path = f"{path}/{child.name}[{ordinal}]"
            child_decl = automaton.matching_decl(child.name)
            if child_decl is not None:
                self._validate_element(child, child_decl, child_path,
                                       report, ids, idrefs)

    def _validate_attributes(self, element: Element, ctype: ComplexType,
                             path: str, report: ValidationReport,
                             ids: dict[str, str],
                             idrefs: list[tuple[str, str, int | None]]
                             ) -> None:
        present = {
            attr.name: attr for attr in element.attributes
            if not _is_namespace_decl(attr)
        }
        for decl in ctype.attributes:
            attr = present.pop(decl.name, None)
            if attr is None:
                if decl.use == "required":
                    report.add(
                        f"required attribute {decl.name!r} is missing on "
                        f"<{element.name}>", path=path, line=element.line,
                        code="cvc-complex-type.4")
                elif decl.default is not None or decl.fixed is not None:
                    default = decl.fixed if decl.fixed is not None \
                        else decl.default
                    added = element.set_attribute(decl.name, default)
                    added.specified = False
                continue
            if decl.use == "prohibited":
                report.add(
                    f"attribute {decl.name!r} is prohibited on "
                    f"<{element.name}>", path=path, line=attr.line,
                    code="cvc-complex-type.4.1")
                continue
            if decl.fixed is not None and \
                    decl.type.normalize(attr.value) != \
                    decl.type.normalize(decl.fixed):
                report.add(
                    f"attribute {decl.name!r} must have the fixed value "
                    f"{decl.fixed!r}, got {attr.value!r}", path=path,
                    line=attr.line, code="cvc-au")
            self._check_simple_value(
                attr.value, decl.type, f"attribute {decl.name!r}", path,
                attr.line, report, ids, idrefs, attr_node=attr)
        for leftover in present.values():
            if leftover.name.startswith("xsi:"):
                continue
            report.add(
                f"attribute {leftover.name!r} is not declared on "
                f"<{element.name}>", path=path, line=leftover.line,
                code="cvc-complex-type.3.2.2")

    def _check_simple_value(self, text: str, stype, what: str, path: str,
                            line: int | None, report: ValidationReport,
                            ids: dict[str, str],
                            idrefs: list[tuple[str, str, int | None]],
                            attr_node: Attribute | None = None) -> None:
        if _REC.enabled:
            _REC.count("xsd.check:simple-value")
        try:
            stype.validate(text)
        except ValueError as exc:
            if _REC.enabled:
                _REC.count("xsd.fail:datatype")
            report.add(f"{what}: {exc}", path=path, line=line,
                       code="cvc-datatype-valid")
            return
        id_kind = getattr(stype, "id_kind", None)
        if id_kind == "ID":
            value = stype.normalize(text)
            if attr_node is not None:
                attr_node.is_id = True
            if value in ids:
                if _REC.enabled:
                    _REC.count("xsd.fail:id")
                report.add(
                    f"duplicate ID {value!r} (first used at {ids[value]})",
                    path=path, line=line, code="cvc-id.2")
            else:
                ids[value] = path
        elif id_kind == "IDREF":
            idrefs.append((stype.normalize(text), path, line))
        elif id_kind == "IDREFS":
            for token in stype.normalize(text).split():
                idrefs.append((token, path, line))

    # -- identity constraints ------------------------------------------------------

    def _check_identity_constraints(self, root: Element, root_decl: ElementDecl,
                                    report: ValidationReport) -> None:
        # Collect the scope elements for every declaration with constraints.
        scopes = self._constraint_scopes(root, root_decl)
        key_tables: dict[str, set[tuple[str, ...]]] = {}

        # Keys and uniques first, so keyrefs can refer to them.
        for element, constraint, path in scopes:
            if constraint.kind in ("key", "unique"):
                rows = self._evaluate_constraint(
                    element, constraint, path, report)
                if constraint.kind == "key":
                    key_tables.setdefault(constraint.name, set()).update(
                        row for row, _ in rows)

        for element, constraint, path in scopes:
            if constraint.kind != "keyref":
                continue
            rows = self._evaluate_constraint(element, constraint, path,
                                             report, allow_missing=True)
            target = key_tables.get(constraint.refer or "")
            if target is None:
                report.add(
                    f"keyref {constraint.name!r} refers to unknown key "
                    f"{constraint.refer!r}", path=path,
                    code="cvc-identity-constraint.4.3")
                continue
            for value, node in rows:
                if value not in target:
                    if _REC.enabled:
                        _REC.count("xsd.fail:keyref")
                    shown = value[0] if len(value) == 1 else value
                    where = self._instance_path(node)
                    report.add(
                        f"keyref {constraint.name!r}: value {shown!r} (at "
                        f"{where}) does not match any {constraint.refer} "
                        f"key", path=where,
                        line=getattr(node, "line", None),
                        code="cvc-identity-constraint.4.3")

    def _constraint_scopes(self, root: Element, root_decl: ElementDecl):
        scopes: list[tuple[Element, IdentityConstraint, str]] = []
        # Walk the instance tree alongside the schema's declarations.
        def walk(element: Element, decl: ElementDecl, path: str) -> None:
            for constraint in decl.constraints:
                scopes.append((element, constraint, path))
            etype = decl.type
            if not isinstance(etype, ComplexType) or etype.content is None:
                return
            automaton = self.schema.automaton_for(etype)
            if automaton is None:
                return
            ordinal: dict[str, int] = {}
            for child in element.children:
                if not isinstance(child, Element):
                    continue
                number = ordinal.get(child.name, 0) + 1
                ordinal[child.name] = number
                child_decl = automaton.matching_decl(child.name)
                if child_decl is not None:
                    walk(child, child_decl,
                         f"{path}/{child.name}[{number}]")

        walk(root, root_decl, f"/{root.name}")
        return scopes

    def _evaluate_constraint(self, scope: Element,
                             constraint: IdentityConstraint, path: str,
                             report: ValidationReport,
                             allow_missing: bool = False
                             ) -> list[tuple[tuple[str, ...], Node]]:
        if _REC.enabled:
            _REC.count(f"xsd.check:{constraint.kind}")
        selector = parse_xpath(constraint.selector)
        context = Context(node=scope)
        try:
            selected = self._xpath.evaluate_node_set(selector, context)
        except Exception as exc:  # pragma: no cover - schema authoring error
            report.add(
                f"identity constraint {constraint.name!r}: selector "
                f"{constraint.selector!r} failed: {exc}", path=path)
            return []

        # Rows carry the node they came from, so every diagnostic below
        # (and the keyref check in the caller) can name the offending
        # node instead of just the constraint's scope.
        table: list[tuple[tuple[str, ...], Node]] = []
        seen: dict[tuple[str, ...], str] = {}
        for node in selected:
            where = self._instance_path(node)
            values: list[str] = []
            missing = False
            for field_expr in constraint.fields:
                field_ast = parse_xpath(field_expr)
                result = self._xpath.evaluate(field_ast,
                                              Context(node=node))
                nodes = result if isinstance(result, list) else []
                if not nodes:
                    missing = True
                    if not allow_missing and constraint.kind == "key":
                        report.add(
                            f"key {constraint.name!r}: field "
                            f"{field_expr!r} selects nothing for "
                            f"{where}", path=where,
                            line=getattr(node, "line", None),
                            code="cvc-identity-constraint.4.2.1")
                    break
                values.append(nodes[0].string_value())
            if missing:
                continue
            row = tuple(values)
            if row in seen and constraint.kind in ("key", "unique"):
                if _REC.enabled:
                    _REC.count(f"xsd.fail:{constraint.kind}")
                shown = row[0] if len(row) == 1 else row
                report.add(
                    f"{constraint.kind} {constraint.name!r}: duplicate "
                    f"value {shown!r} at {where} (first at {seen[row]})",
                    path=where, line=getattr(node, "line", None),
                    code="cvc-identity-constraint.4.1")
            else:
                seen[row] = where
            table.append((row, node))
        return table

    @staticmethod
    def _instance_path(node: Node) -> str:
        """A ``/root/child[2]/…`` locator for any node of the instance.

        Ordinals count same-named element siblings, matching the paths
        the structural validation phase reports; attribute nodes get an
        ``/@name`` suffix.
        """
        suffix = ""
        if isinstance(node, Attribute):
            suffix = f"/@{node.name}"
            node = node.parent  # type: ignore[assignment]
        parts: list[str] = []
        current = node
        while isinstance(current, Element):
            parent = current.parent
            if isinstance(parent, Element):
                siblings = [c for c in parent.children
                            if isinstance(c, Element) and
                            c.name == current.name]
                ordinal = next(
                    i for i, s in enumerate(siblings, 1) if s is current)
                parts.append(f"{current.name}[{ordinal}]")
            else:
                parts.append(current.name)
            current = parent
        return "/" + "/".join(reversed(parts)) + suffix


def _is_namespace_decl(attr: Attribute) -> bool:
    return attr.name == "xmlns" or attr.name.startswith("xmlns:")
