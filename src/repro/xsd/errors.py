"""XSD error and result types."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["XSDError", "SchemaError", "ValidationIssue", "ValidationReport"]


class XSDError(Exception):
    """Base class for schema-processing failures."""


class SchemaError(XSDError):
    """The schema itself is invalid (bad facet, unknown type, UPA, ...)."""


@dataclass(frozen=True)
class ValidationIssue:
    """One validation problem found in an instance document.

    ``severity`` is ``"error"`` or ``"warning"``; ``path`` is a simple
    slash-separated location of the offending node.
    """

    message: str
    path: str = ""
    line: int | None = None
    column: int | None = None
    severity: str = "error"
    code: str = ""

    def __str__(self) -> str:
        location = self.path or "document"
        position = ""
        if self.line is not None:
            position = f" (line {self.line})"
        return f"[{self.severity}] {location}: {self.message}{position}"


@dataclass
class ValidationReport:
    """The outcome of validating one document against one schema."""

    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def errors(self) -> list[ValidationIssue]:
        """Issues with error severity."""
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> list[ValidationIssue]:
        """Issues with warning severity."""
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def valid(self) -> bool:
        """True when no errors were recorded (warnings allowed)."""
        return not self.errors

    def add(self, message: str, *, path: str = "", line: int | None = None,
            column: int | None = None, severity: str = "error",
            code: str = "") -> None:
        """Record a new issue."""
        self.issues.append(ValidationIssue(
            message, path, line, column, severity, code))

    def __bool__(self) -> bool:
        return self.valid

    def __str__(self) -> str:
        if not self.issues:
            return "valid (no issues)"
        return "\n".join(str(issue) for issue in self.issues)
