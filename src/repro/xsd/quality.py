"""Schema quality checking — the stand-in for IBM's Schema Quality Checker.

The paper (§3.2) validated ``goldmodel.xsd`` itself with IBM SQC before
using it.  :func:`check_schema` performs the analogous static analysis on
our compiled schemas:

* **UPA** — Unique Particle Attribution violations in content models;
* **identity constraints** — keyrefs referring to undefined keys,
  field-count mismatches between keyref and key;
* **attribute sanity** — defaults/fixed values that are invalid for the
  declared attribute type, duplicate attribute names on one type;
* **structure** — element declarations with neither content nor
  attributes (warning), unreachable named types (warning), duplicate
  element names inside one scope with different types (error).
"""

from __future__ import annotations

from .components import (
    AttributeDecl,
    ComplexType,
    ElementDecl,
    ModelGroup,
    Particle,
)
from .errors import ValidationReport
from .schema import Schema

__all__ = ["check_schema"]


def check_schema(schema: Schema) -> ValidationReport:
    """Statically analyse *schema*; errors make it unusable, warnings advise."""
    report = ValidationReport()
    _check_identity_constraints(schema, report)

    seen_types: set[int] = set()
    for decl in schema.iter_element_decls():
        ctype = decl.type
        if not isinstance(ctype, ComplexType) or id(ctype) in seen_types:
            continue
        seen_types.add(id(ctype))
        scope = ctype.name or f"type of element <{decl.name}>"
        _check_upa(schema, ctype, scope, report)
        _check_attributes(ctype, scope, report)
        _check_child_consistency(ctype, scope, report)
        if ctype.content is None and ctype.simple_content is None \
                and not ctype.attributes:
            report.add(
                f"{scope}: empty complex type (no content, no attributes)",
                severity="warning", code="sqc-empty-type")

    _check_unreachable_types(schema, seen_types, report)
    return report


def _check_upa(schema: Schema, ctype: ComplexType, scope: str,
               report: ValidationReport) -> None:
    automaton = schema.automaton_for(ctype)
    if automaton is None:
        return
    for name in automaton.ambiguous_transitions():
        report.add(
            f"{scope}: content model is ambiguous on element <{name}> "
            "(Unique Particle Attribution violation)",
            code="cos-nonambig")


def _check_attributes(ctype: ComplexType, scope: str,
                      report: ValidationReport) -> None:
    seen: set[str] = set()
    for decl in ctype.attributes:
        if decl.name in seen:
            report.add(
                f"{scope}: duplicate attribute declaration {decl.name!r}",
                code="ct-props-correct.4")
        seen.add(decl.name)
        for label, value in (("default", decl.default), ("fixed", decl.fixed)):
            if value is None:
                continue
            try:
                decl.type.validate(value)
            except ValueError as exc:
                report.add(
                    f"{scope}: attribute {decl.name!r} has an invalid "
                    f"{label} value {value!r}: {exc}",
                    code="a-props-correct.2")
        id_kind = getattr(decl.type, "id_kind", None)
        if id_kind == "ID" and (decl.default is not None or
                                decl.fixed is not None):
            report.add(
                f"{scope}: ID attribute {decl.name!r} must not have a "
                "default or fixed value", code="a-props-correct.3")


def _check_child_consistency(ctype: ComplexType, scope: str,
                             report: ValidationReport) -> None:
    """Element Declarations Consistent: same name → same type in one scope."""
    if ctype.content is None:
        return
    by_name: dict[str, ElementDecl] = {}
    for decl in _iter_particle_elements(ctype.content):
        existing = by_name.get(decl.name)
        if existing is not None and existing.type is not decl.type:
            report.add(
                f"{scope}: element <{decl.name}> is declared twice with "
                "different types", code="cos-element-consistent")
        by_name[decl.name] = decl


def _iter_particle_elements(particle: Particle):
    stack = [particle]
    while stack:
        current = stack.pop()
        term = current.term
        if isinstance(term, ElementDecl):
            yield term
        elif isinstance(term, ModelGroup):
            stack.extend(term.particles)


def _check_identity_constraints(schema: Schema,
                                report: ValidationReport) -> None:
    keys: dict[str, int] = {}
    names: set[str] = set()
    constraints = list(schema.iter_identity_constraints())
    for _decl, constraint in constraints:
        if constraint.name in names:
            report.add(
                f"duplicate identity constraint name {constraint.name!r}",
                code="c-props-correct.1")
        names.add(constraint.name)
        if constraint.kind == "key":
            keys[constraint.name] = len(constraint.fields)
    for decl, constraint in constraints:
        if constraint.kind != "keyref":
            continue
        refer = constraint.refer or ""
        if refer not in keys:
            report.add(
                f"keyref {constraint.name!r} (on element <{decl.name}>) "
                f"refers to undefined key {refer!r}",
                code="c-props-correct.2")
        elif keys[refer] != len(constraint.fields):
            report.add(
                f"keyref {constraint.name!r} has {len(constraint.fields)} "
                f"field(s) but key {refer!r} has {keys[refer]}",
                code="c-props-correct.2")


def _check_unreachable_types(schema: Schema, reachable_ids: set[int],
                             report: ValidationReport) -> None:
    reachable_simple: set[int] = set()
    for decl in schema.iter_element_decls():
        ctype = decl.type
        if isinstance(ctype, ComplexType):
            for attr in ctype.attributes:
                reachable_simple.add(id(attr.type))
            if ctype.simple_content is not None:
                reachable_simple.add(id(ctype.simple_content))
        elif ctype is not None:
            reachable_simple.add(id(ctype))
    for name, definition in schema.types.items():
        if isinstance(definition, ComplexType):
            if id(definition) not in reachable_ids:
                report.add(
                    f"named complex type {name!r} is never used",
                    severity="warning", code="sqc-unused-type")
        elif id(definition) not in reachable_simple:
            report.add(
                f"named simple type {name!r} is never used",
                severity="warning", code="sqc-unused-type")
