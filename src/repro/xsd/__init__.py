"""XML Schema (XSD) subset: datatypes, schema model, reader, validator.

The subset covers everything the paper's ``goldmodel.xsd`` uses — nested
(Russian-doll) complex types, user-defined simple types with enumerations,
ID/IDREF, ``xsd:key``/``xsd:keyref`` — plus list/union types, bounds
facets, patterns, and an ``xsd:all`` matcher for generality.

Typical use::

    from repro.xsd import read_schema_file, validate
    schema = read_schema_file('goldmodel.xsd')
    report = validate(document, schema)
    if not report.valid:
        print(report)
"""

from .components import (
    AttributeDecl,
    ComplexType,
    ElementDecl,
    IdentityConstraint,
    ModelGroup,
    Particle,
    UNBOUNDED,
)
from .datatypes import BUILTIN_TYPES, Datatype, lookup_builtin
from .errors import SchemaError, ValidationIssue, ValidationReport, XSDError
from .facets import (
    Enumeration,
    Length,
    MaxExclusive,
    MaxInclusive,
    MaxLength,
    MinExclusive,
    MinInclusive,
    MinLength,
    Pattern,
)
from .quality import check_schema
from .reader import read_schema, read_schema_file
from .schema import Schema, SchemaBuilder
from .simpletypes import ListType, SimpleType, UnionType, builtin_simple_type
from .validator import SchemaValidator, validate

__all__ = [
    "AttributeDecl",
    "ComplexType",
    "ElementDecl",
    "IdentityConstraint",
    "ModelGroup",
    "Particle",
    "UNBOUNDED",
    "BUILTIN_TYPES",
    "Datatype",
    "lookup_builtin",
    "SchemaError",
    "ValidationIssue",
    "ValidationReport",
    "XSDError",
    "Enumeration",
    "Length",
    "MaxExclusive",
    "MaxInclusive",
    "MaxLength",
    "MinExclusive",
    "MinInclusive",
    "MinLength",
    "Pattern",
    "check_schema",
    "read_schema",
    "read_schema_file",
    "Schema",
    "SchemaBuilder",
    "SimpleType",
    "ListType",
    "UnionType",
    "builtin_simple_type",
    "SchemaValidator",
    "validate",
]
