"""Reading schema documents (``.xsd`` files) into Schema objects.

The reader accepts the feature set the paper's ``goldmodel.xsd`` uses,
plus list/union simple types and ``xsd:all`` for headroom:

* Russian-doll (inline anonymous) and flat (named, top-level) styles,
* ``sequence`` / ``choice`` / ``all`` groups with ``minOccurs`` /
  ``maxOccurs``,
* element ``ref=`` to global declarations,
* restriction facets, ``simpleContent`` extensions,
* ``key`` / ``keyref`` / ``unique`` with ``selector`` / ``field``.

Named type references are resolved lazily with cycle detection, so types
may be declared in any order — as in real schema documents.
"""

from __future__ import annotations

from ..xml.dom import Document, Element
from ..xml.parser import parse as parse_xml
from .components import (
    AttributeDecl,
    ComplexType,
    ElementDecl,
    IdentityConstraint,
    ModelGroup,
    Particle,
)
from .datatypes import BUILTIN_TYPES
from .errors import SchemaError
from .facets import (
    Enumeration,
    FractionDigits,
    Length,
    MaxExclusive,
    MaxInclusive,
    MaxLength,
    MinExclusive,
    MinInclusive,
    MinLength,
    Pattern,
    TotalDigits,
)
from .schema import Schema
from .simpletypes import ListType, SimpleType, UnionType, builtin_simple_type

__all__ = ["read_schema", "read_schema_file", "XSD_NAMESPACE"]

XSD_NAMESPACE = "http://www.w3.org/2001/XMLSchema"

_BOUND_FACETS = {
    "minInclusive": MinInclusive,
    "maxInclusive": MaxInclusive,
    "minExclusive": MinExclusive,
    "maxExclusive": MaxExclusive,
}

_LENGTH_FACETS = {
    "length": Length,
    "minLength": MinLength,
    "maxLength": MaxLength,
    "totalDigits": TotalDigits,
    "fractionDigits": FractionDigits,
}


def read_schema(source: str | bytes | Document) -> Schema:
    """Parse a schema document (text or parsed DOM) into a Schema."""
    document = source if isinstance(source, Document) else parse_xml(source)
    return _Reader(document).read()


def read_schema_file(path) -> Schema:
    """Read a schema from the ``.xsd`` file at *path*."""
    with open(path, "rb") as handle:
        return read_schema(handle.read())


class _Reader:
    def __init__(self, document: Document) -> None:
        root = document.root_element
        if root is None:
            raise SchemaError("schema document has no root element")
        if root.local_name != "schema":
            raise SchemaError(
                f"expected an <xsd:schema> root, found <{root.name}>")
        if root.namespace_uri not in (XSD_NAMESPACE, None):
            raise SchemaError(
                f"unexpected schema namespace {root.namespace_uri!r}")
        self.root = root
        self.target_namespace = root.get_attribute("targetNamespace")
        # Raw DOM nodes of named definitions, resolved lazily.
        self._raw_types: dict[str, Element] = {}
        self._raw_elements: dict[str, Element] = {}
        self._resolved_types: dict[str, ComplexType | SimpleType | ListType |
                                   UnionType] = {}
        self._resolved_elements: dict[str, ElementDecl] = {}
        self._resolving: set[str] = set()

    # -- helpers ---------------------------------------------------------------

    def _xsd_children(self, element: Element, *names: str) -> list[Element]:
        wanted = set(names)
        return [
            child for child in element.children
            if isinstance(child, Element) and child.local_name in wanted
            and child.namespace_uri in (XSD_NAMESPACE, None)
        ]

    def _first(self, element: Element, *names: str) -> Element | None:
        found = self._xsd_children(element, *names)
        return found[0] if found else None

    @staticmethod
    def _occurs(element: Element) -> tuple[int, int | None]:
        low_text = element.get_attribute("minOccurs", "1")
        high_text = element.get_attribute("maxOccurs", "1")
        try:
            low = int(low_text)
        except ValueError:
            raise SchemaError(f"invalid minOccurs {low_text!r}") from None
        if high_text == "unbounded":
            return low, None
        try:
            high = int(high_text)
        except ValueError:
            raise SchemaError(f"invalid maxOccurs {high_text!r}") from None
        return low, high

    # -- entry -------------------------------------------------------------------

    def read(self) -> Schema:
        documentation = self._read_documentation(self.root)
        for child in self._xsd_children(self.root, "simpleType",
                                        "complexType"):
            name = child.get_attribute("name")
            if not name:
                raise SchemaError("top-level types must be named")
            if name in self._raw_types:
                raise SchemaError(f"duplicate type definition {name!r}")
            self._raw_types[name] = child
        for child in self._xsd_children(self.root, "element"):
            name = child.get_attribute("name")
            if not name:
                raise SchemaError("top-level elements must be named")
            if name in self._raw_elements:
                raise SchemaError(f"duplicate element declaration {name!r}")
            self._raw_elements[name] = child

        elements = {
            name: self._resolve_element(name)
            for name in self._raw_elements
        }
        types = {
            name: self._resolve_type(name) for name in self._raw_types
        }
        return Schema(elements=elements, types=types,
                      target_namespace=self.target_namespace,
                      documentation=documentation)

    def _read_documentation(self, element: Element) -> str | None:
        annotation = self._first(element, "annotation")
        if annotation is None:
            return None
        documentation = self._first(annotation, "documentation")
        return documentation.text_content().strip() if documentation else None

    # -- named resolution ----------------------------------------------------------

    def _resolve_type(self, name: str):
        if name in self._resolved_types:
            return self._resolved_types[name]
        if name in self._resolving:
            raise SchemaError(f"circular type definition {name!r}")
        raw = self._raw_types.get(name)
        if raw is None:
            raise SchemaError(f"reference to undefined type {name!r}")
        self._resolving.add(name)
        try:
            if raw.local_name == "simpleType":
                resolved = self._read_simple_type(raw, name=name)
            else:
                resolved = self._read_complex_type(raw, name=name)
        finally:
            self._resolving.discard(name)
        self._resolved_types[name] = resolved
        return resolved

    def _resolve_element(self, name: str) -> ElementDecl:
        if name in self._resolved_elements:
            return self._resolved_elements[name]
        raw = self._raw_elements.get(name)
        if raw is None:
            raise SchemaError(
                f"reference to undefined global element {name!r}")
        # Pre-register a placeholder so recursive content models terminate.
        placeholder = ElementDecl(name)
        self._resolved_elements[name] = placeholder
        declared = self._read_element(raw)
        placeholder.type = declared.type
        placeholder.nillable = declared.nillable
        placeholder.constraints = declared.constraints
        return placeholder

    def _lookup_type_ref(self, ref: str):
        local = ref.split(":", 1)[-1]
        if local in BUILTIN_TYPES and local not in self._raw_types:
            return builtin_simple_type(local)
        return self._resolve_type(local)

    # -- element declarations ---------------------------------------------------------

    def _read_element(self, node: Element) -> ElementDecl:
        ref = node.get_attribute("ref")
        if ref:
            return self._resolve_element(ref.split(":", 1)[-1])
        name = node.get_attribute("name")
        if not name:
            raise SchemaError("element declaration requires @name or @ref")

        type_ref = node.get_attribute("type")
        inline_complex = self._first(node, "complexType")
        inline_simple = self._first(node, "simpleType")
        if sum(bool(x) for x in (type_ref, inline_complex,
                                 inline_simple)) > 1:
            raise SchemaError(
                f"element {name!r} has conflicting type definitions")

        etype = None
        if type_ref:
            etype = self._lookup_type_ref(type_ref)
        elif inline_complex is not None:
            etype = self._read_complex_type(inline_complex)
        elif inline_simple is not None:
            etype = self._read_simple_type(inline_simple)

        constraints = [
            self._read_identity_constraint(child)
            for child in self._xsd_children(node, "key", "keyref", "unique")
        ]
        nillable = node.get_attribute("nillable") == "true"
        return ElementDecl(name, etype, nillable=nillable,
                           constraints=constraints)

    def _read_identity_constraint(self, node: Element) -> IdentityConstraint:
        name = node.get_attribute("name")
        if not name:
            raise SchemaError("identity constraints must be named")
        selector = self._first(node, "selector")
        if selector is None or not selector.get_attribute("xpath"):
            raise SchemaError(
                f"identity constraint {name!r} needs a <selector xpath=...>")
        fields = [
            field.get_attribute("xpath") or ""
            for field in self._xsd_children(node, "field")
        ]
        if not all(fields):
            raise SchemaError(
                f"identity constraint {name!r} has a field without @xpath")
        refer = node.get_attribute("refer")
        return IdentityConstraint(
            kind=node.local_name,
            name=name,
            selector=selector.get_attribute("xpath") or "",
            fields=fields,
            refer=refer.split(":", 1)[-1] if refer else None,
        )

    # -- complex types -------------------------------------------------------------------

    def _read_complex_type(self, node: Element,
                           name: str | None = None) -> ComplexType:
        mixed = node.get_attribute("mixed") == "true"
        attributes = [
            self._read_attribute(child)
            for child in self._xsd_children(node, "attribute")
        ]

        simple_content = self._first(node, "simpleContent")
        if simple_content is not None:
            return self._read_simple_content(simple_content, attributes,
                                             name, mixed)

        group = self._first(node, "sequence", "choice", "all")
        content = self._read_group_particle(group) if group is not None \
            else None
        return ComplexType(name=name, attributes=attributes, content=content,
                           mixed=mixed)

    def _read_simple_content(self, node: Element,
                             attributes: list[AttributeDecl],
                             name: str | None, mixed: bool) -> ComplexType:
        extension = self._first(node, "extension", "restriction")
        if extension is None:
            raise SchemaError("simpleContent needs extension or restriction")
        base_ref = extension.get_attribute("base")
        if not base_ref:
            raise SchemaError("simpleContent extension requires @base")
        base = self._lookup_type_ref(base_ref)
        if isinstance(base, ComplexType):
            raise SchemaError(
                "simpleContent base must be a simple type in this subset")
        attributes = attributes + [
            self._read_attribute(child)
            for child in self._xsd_children(extension, "attribute")
        ]
        return ComplexType(name=name, attributes=attributes,
                           simple_content=base, mixed=mixed)

    def _read_group_particle(self, node: Element) -> Particle:
        low, high = self._occurs(node)
        group = ModelGroup(node.local_name, [])
        for child in self._xsd_children(node, "element", "sequence",
                                        "choice", "all", "any"):
            if child.local_name == "element":
                clow, chigh = self._occurs(child)
                decl = self._read_element(child)
                group.particles.append(Particle(decl, clow, chigh))
            elif child.local_name == "any":
                from .components import AnyWildcard

                clow, chigh = self._occurs(child)
                group.particles.append(Particle(AnyWildcard(), clow, chigh))
            else:
                group.particles.append(self._read_group_particle(child))
        return Particle(group, low, high)

    def _read_attribute(self, node: Element) -> AttributeDecl:
        name = node.get_attribute("name")
        if not name:
            raise SchemaError("attribute declaration requires @name")
        type_ref = node.get_attribute("type")
        inline = self._first(node, "simpleType")
        if type_ref and inline is not None:
            raise SchemaError(
                f"attribute {name!r} has both @type and inline simpleType")
        if type_ref:
            atype = self._lookup_type_ref(type_ref)
            if isinstance(atype, ComplexType):
                raise SchemaError(
                    f"attribute {name!r} cannot have a complex type")
        elif inline is not None:
            atype = self._read_simple_type(inline)
        else:
            atype = builtin_simple_type("string")
        return AttributeDecl(
            name=name,
            type=atype,
            use=node.get_attribute("use", "optional") or "optional",
            default=node.get_attribute("default"),
            fixed=node.get_attribute("fixed"),
        )

    # -- simple types ---------------------------------------------------------------------

    def _read_simple_type(self, node: Element, name: str | None = None):
        restriction = self._first(node, "restriction")
        list_node = self._first(node, "list")
        union_node = self._first(node, "union")

        if restriction is not None:
            return self._read_restriction(restriction, name)
        if list_node is not None:
            item_ref = list_node.get_attribute("itemType")
            if item_ref:
                item = self._lookup_type_ref(item_ref)
            else:
                inline = self._first(list_node, "simpleType")
                if inline is None:
                    raise SchemaError("xsd:list needs itemType or inline type")
                item = self._read_simple_type(inline)
            return ListType(item_type=item, name=name)
        if union_node is not None:
            member_refs = (union_node.get_attribute("memberTypes") or
                           "").split()
            members = [self._lookup_type_ref(ref) for ref in member_refs]
            members.extend(
                self._read_simple_type(inline)
                for inline in self._xsd_children(union_node, "simpleType"))
            if not members:
                raise SchemaError("xsd:union needs at least one member type")
            return UnionType(member_types=members, name=name)
        raise SchemaError(
            "simpleType needs restriction, list, or union")

    def _read_restriction(self, node: Element,
                          name: str | None) -> SimpleType:
        base_ref = node.get_attribute("base")
        if base_ref:
            base = self._lookup_type_ref(base_ref)
        else:
            inline = self._first(node, "simpleType")
            if inline is None:
                raise SchemaError("restriction needs @base or inline type")
            base = self._read_simple_type(inline)
        if isinstance(base, ComplexType):
            raise SchemaError("cannot restrict a complex type here")

        facets = []
        enum_values: list[str] = []
        for child in self._xsd_children(
                node, "enumeration", "pattern", "length", "minLength",
                "maxLength", "minInclusive", "maxInclusive", "minExclusive",
                "maxExclusive", "totalDigits", "fractionDigits",
                "whiteSpace"):
            value = child.get_attribute("value")
            if value is None:
                raise SchemaError(
                    f"facet {child.local_name} requires @value")
            kind = child.local_name
            if kind == "enumeration":
                enum_values.append(value)
            elif kind == "pattern":
                facets.append(Pattern(value))
            elif kind in _LENGTH_FACETS:
                facets.append(_LENGTH_FACETS[kind](int(value)))
            elif kind in _BOUND_FACETS:
                typed = self._typed_bound(base, value, kind)
                facets.append(_BOUND_FACETS[kind](typed))
            # whiteSpace: the primitive's policy already applies; the
            # goldmodel schema never overrides it.
        if enum_values:
            facets.insert(0, Enumeration(tuple(enum_values)))
        return SimpleType(base=base, facets=facets, name=name)

    @staticmethod
    def _typed_bound(base, value: str, facet_name: str):
        try:
            return base.validate(value)
        except ValueError as exc:
            raise SchemaError(
                f"facet {facet_name} value {value!r} is not valid for the "
                f"base type: {exc}") from None
