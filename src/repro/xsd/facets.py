"""Constraining facets for simple types (XSD Part 2 §4.3).

Facets validate the *typed value* produced by the base datatype (ordering
facets) or the *normalized lexical form* (length, pattern, enumeration).
:func:`translate_pattern` converts XML Schema regular expressions to Python
``re`` syntax — XSD patterns are implicitly anchored and use a few
multi-character escapes Python lacks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from .errors import SchemaError

__all__ = [
    "Facet",
    "Enumeration",
    "Pattern",
    "Length",
    "MinLength",
    "MaxLength",
    "MinInclusive",
    "MaxInclusive",
    "MinExclusive",
    "MaxExclusive",
    "TotalDigits",
    "FractionDigits",
    "translate_pattern",
]


class Facet:
    """Base class; subclasses implement :meth:`check`."""

    name = "facet"

    def check(self, lexical: str, value: object) -> str | None:
        """Return an error message, or None when the facet is satisfied."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable form used by the schema tree view."""
        return self.name


@dataclass
class Enumeration(Facet):
    """``xsd:enumeration`` — the lexical form must be one of the values."""

    values: Sequence[str]
    name = "enumeration"

    def check(self, lexical: str, value: object) -> str | None:
        if lexical not in self.values:
            allowed = ", ".join(repr(v) for v in self.values)
            return f"value {lexical!r} not in enumeration {{{allowed}}}"
        return None

    def describe(self) -> str:
        return "enumeration {" + ", ".join(self.values) + "}"


#: Multi-character escapes of XML Schema regexes mapped to Python classes.
_XSD_ESCAPES = {
    "i": "[A-Za-z_:]",
    "I": "[^A-Za-z_:]",
    "c": r"[-.\w:]",
    "C": r"[^-.\w:]",
    "d": r"\d",
    "D": r"\D",
    "s": r"\s",
    "S": r"\S",
    "w": r"\w",
    "W": r"\W",
}


def translate_pattern(pattern: str) -> str:
    """Translate an XSD regular expression into a Python one.

    Handles the XSD-specific escapes (``\\i``, ``\\c``) and leaves the rest
    untouched — the common subset (character classes, quantifiers,
    alternation, groups) is shared syntax.
    """
    out: list[str] = []
    index = 0
    while index < len(pattern):
        ch = pattern[index]
        if ch == "\\" and index + 1 < len(pattern):
            escape = pattern[index + 1]
            if escape in _XSD_ESCAPES:
                out.append(_XSD_ESCAPES[escape])
                index += 2
                continue
            out.append(ch + escape)
            index += 2
            continue
        out.append(ch)
        index += 1
    return "".join(out)


@dataclass
class Pattern(Facet):
    """``xsd:pattern`` — anchored regular-expression match."""

    pattern: str
    name = "pattern"

    def __post_init__(self) -> None:
        try:
            self._compiled = re.compile(translate_pattern(self.pattern))
        except re.error as exc:
            raise SchemaError(
                f"invalid pattern facet {self.pattern!r}: {exc}") from None

    def check(self, lexical: str, value: object) -> str | None:
        if not self._compiled.fullmatch(lexical):
            return f"value {lexical!r} does not match pattern " \
                   f"{self.pattern!r}"
        return None

    def describe(self) -> str:
        return f"pattern {self.pattern!r}"


def _measure(value: object, lexical: str) -> int:
    if isinstance(value, (list, tuple)):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    return len(lexical)


@dataclass
class Length(Facet):
    """``xsd:length`` — exact length of the value."""

    length: int
    name = "length"

    def check(self, lexical: str, value: object) -> str | None:
        actual = _measure(value, lexical)
        if actual != self.length:
            return f"length {actual} differs from required {self.length}"
        return None

    def describe(self) -> str:
        return f"length = {self.length}"


@dataclass
class MinLength(Facet):
    """``xsd:minLength``."""

    length: int
    name = "minLength"

    def check(self, lexical: str, value: object) -> str | None:
        actual = _measure(value, lexical)
        if actual < self.length:
            return f"length {actual} below minLength {self.length}"
        return None

    def describe(self) -> str:
        return f"minLength = {self.length}"


@dataclass
class MaxLength(Facet):
    """``xsd:maxLength``."""

    length: int
    name = "maxLength"

    def check(self, lexical: str, value: object) -> str | None:
        actual = _measure(value, lexical)
        if actual > self.length:
            return f"length {actual} above maxLength {self.length}"
        return None

    def describe(self) -> str:
        return f"maxLength = {self.length}"


class _Bound(Facet):
    """Shared implementation of the four ordering facets."""

    def __init__(self, bound: object) -> None:
        self.bound = bound

    def _compare(self, value: object) -> int | None:
        try:
            if value < self.bound:  # type: ignore[operator]
                return -1
            if value > self.bound:  # type: ignore[operator]
                return 1
            return 0
        except TypeError:
            return None

    def describe(self) -> str:
        return f"{self.name} = {self.bound}"


class MinInclusive(_Bound):
    """``xsd:minInclusive``."""

    name = "minInclusive"

    def check(self, lexical: str, value: object) -> str | None:
        order = self._compare(value)
        if order is None or order < 0:
            return f"value {lexical!r} below minInclusive {self.bound}"
        return None


class MaxInclusive(_Bound):
    """``xsd:maxInclusive``."""

    name = "maxInclusive"

    def check(self, lexical: str, value: object) -> str | None:
        order = self._compare(value)
        if order is None or order > 0:
            return f"value {lexical!r} above maxInclusive {self.bound}"
        return None


class MinExclusive(_Bound):
    """``xsd:minExclusive``."""

    name = "minExclusive"

    def check(self, lexical: str, value: object) -> str | None:
        order = self._compare(value)
        if order is None or order <= 0:
            return f"value {lexical!r} not above minExclusive {self.bound}"
        return None


class MaxExclusive(_Bound):
    """``xsd:maxExclusive``."""

    name = "maxExclusive"

    def check(self, lexical: str, value: object) -> str | None:
        order = self._compare(value)
        if order is None or order >= 0:
            return f"value {lexical!r} not below maxExclusive {self.bound}"
        return None


@dataclass
class TotalDigits(Facet):
    """``xsd:totalDigits`` — significant digits of a decimal value."""

    digits: int
    name = "totalDigits"

    def check(self, lexical: str, value: object) -> str | None:
        text = lexical.lstrip("+-").replace(".", "").lstrip("0") or "0"
        if len(text) > self.digits:
            return f"value {lexical!r} exceeds totalDigits {self.digits}"
        return None

    def describe(self) -> str:
        return f"totalDigits = {self.digits}"


@dataclass
class FractionDigits(Facet):
    """``xsd:fractionDigits`` — digits after the decimal point."""

    digits: int
    name = "fractionDigits"

    def check(self, lexical: str, value: object) -> str | None:
        _, _, fraction = lexical.partition(".")
        if len(fraction.rstrip("0")) > self.digits:
            return f"value {lexical!r} exceeds fractionDigits {self.digits}"
        return None

    def describe(self) -> str:
        return f"fractionDigits = {self.digits}"
