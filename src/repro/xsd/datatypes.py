"""Built-in XML Schema datatypes (XSD Part 2 subset).

Each datatype knows how to normalize a lexical form (whiteSpace facet),
parse it into a typed Python value, and describe itself.  The set covers
everything ``goldmodel.xsd`` uses (``string``, ``boolean``, ``date``,
``ID``, ``IDREF``) plus the numeric, temporal and token types any realistic
schema needs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from datetime import date, datetime, time
from decimal import Decimal, InvalidOperation
from typing import Callable

from ..xml.chars import collapse_whitespace, is_name, is_ncname, is_qname

__all__ = ["Datatype", "BUILTIN_TYPES", "lookup_builtin"]

# whiteSpace facet values.
PRESERVE = "preserve"
REPLACE = "replace"
COLLAPSE = "collapse"


@dataclass(frozen=True)
class Datatype:
    """A built-in atomic datatype.

    ``parse`` maps a whitespace-normalized lexical form to a Python value,
    raising ``ValueError`` when the form is not in the lexical space.
    """

    name: str
    parse: Callable[[str], object]
    whitespace: str = COLLAPSE
    #: Set for the ID/IDREF family so the validator can track references.
    id_kind: str | None = None

    def normalize(self, text: str) -> str:
        """Apply this type's whiteSpace facet to raw text."""
        if self.whitespace == PRESERVE:
            return text
        replaced = text.replace("\t", " ").replace("\n", " ").replace("\r", " ")
        if self.whitespace == REPLACE:
            return replaced
        return collapse_whitespace(replaced)

    def validate(self, text: str) -> object:
        """Normalize and parse *text*; raises ``ValueError`` when invalid."""
        return self.parse(self.normalize(text))


# -- parsers -----------------------------------------------------------------


def _parse_string(text: str) -> str:
    return text


def _parse_boolean(text: str) -> bool:
    if text in ("true", "1"):
        return True
    if text in ("false", "0"):
        return False
    raise ValueError(f"not a boolean: {text!r}")


def _parse_decimal(text: str) -> Decimal:
    if not re.fullmatch(r"[+-]?(\d+(\.\d*)?|\.\d+)", text):
        raise ValueError(f"not a decimal: {text!r}")
    try:
        return Decimal(text)
    except InvalidOperation:  # pragma: no cover - regex should prevent this
        raise ValueError(f"not a decimal: {text!r}") from None


def _integer_parser(low: int | None, high: int | None,
                    type_name: str) -> Callable[[str], int]:
    def parse(text: str) -> int:
        if not re.fullmatch(r"[+-]?\d+", text):
            raise ValueError(f"not an integer: {text!r}")
        value = int(text)
        if low is not None and value < low:
            raise ValueError(f"{value} below minimum of {type_name}")
        if high is not None and value > high:
            raise ValueError(f"{value} above maximum of {type_name}")
        return value

    return parse


def _parse_float(text: str) -> float:
    if text in ("INF", "+INF"):
        return float("inf")
    if text == "-INF":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    if not re.fullmatch(r"[+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?", text):
        raise ValueError(f"not a float: {text!r}")
    return float(text)


_DATE_RE = re.compile(
    r"(-?\d{4,})-(\d{2})-(\d{2})(Z|[+-]\d{2}:\d{2})?")
_TIME_RE = re.compile(
    r"(\d{2}):(\d{2}):(\d{2})(\.\d+)?(Z|[+-]\d{2}:\d{2})?")
_DATETIME_RE = re.compile(
    r"(-?\d{4,})-(\d{2})-(\d{2})T"
    r"(\d{2}):(\d{2}):(\d{2})(\.\d+)?(Z|[+-]\d{2}:\d{2})?")


def _parse_date(text: str) -> date:
    match = _DATE_RE.fullmatch(text)
    if not match:
        raise ValueError(f"not a date: {text!r}")
    year, month, day = int(match[1]), int(match[2]), int(match[3])
    try:
        return date(year, month, day)
    except ValueError:
        raise ValueError(f"not a valid calendar date: {text!r}") from None


def _parse_time(text: str) -> time:
    match = _TIME_RE.fullmatch(text)
    if not match:
        raise ValueError(f"not a time: {text!r}")
    hour, minute, second = int(match[1]), int(match[2]), int(match[3])
    micro = int(float(match[4] or "0") * 1_000_000)
    if hour == 24 and minute == 0 and second == 0:
        hour = 0
    try:
        return time(hour, minute, second, micro)
    except ValueError:
        raise ValueError(f"not a valid time: {text!r}") from None


def _parse_datetime(text: str) -> datetime:
    match = _DATETIME_RE.fullmatch(text)
    if not match:
        raise ValueError(f"not a dateTime: {text!r}")
    micro = int(float(match[7] or "0") * 1_000_000)
    try:
        return datetime(int(match[1]), int(match[2]), int(match[3]),
                        int(match[4]), int(match[5]), int(match[6]), micro)
    except ValueError:
        raise ValueError(f"not a valid dateTime: {text!r}") from None


def _parse_gyear(text: str) -> int:
    if not re.fullmatch(r"-?\d{4,}(Z|[+-]\d{2}:\d{2})?", text):
        raise ValueError(f"not a gYear: {text!r}")
    return int(text.rstrip("Z").split("+")[0])


_DURATION_RE = re.compile(
    r"-?P(?=.)(\d+Y)?(\d+M)?(\d+D)?(T(?=.)(\d+H)?(\d+M)?(\d+(\.\d+)?S)?)?")


def _parse_duration(text: str) -> str:
    if not _DURATION_RE.fullmatch(text):
        raise ValueError(f"not a duration: {text!r}")
    return text


def _parse_any_uri(text: str) -> str:
    # anyURI's lexical space is deliberately loose; reject only whitespace
    # (already collapsed) and control characters.
    if any(ord(ch) < 0x20 for ch in text):
        raise ValueError(f"not a URI: {text!r}")
    return text


def _name_parser(predicate: Callable[[str], bool],
                 type_name: str) -> Callable[[str], str]:
    def parse(text: str) -> str:
        if not predicate(text):
            raise ValueError(f"not a valid {type_name}: {text!r}")
        return text

    return parse


_NMTOKEN_RE = re.compile(r"[-.:\w·̀-ͯ‿-⁀]+")


def _parse_nmtoken(text: str) -> str:
    if not _NMTOKEN_RE.fullmatch(text):
        raise ValueError(f"not an NMTOKEN: {text!r}")
    return text


def _list_parser(item: Callable[[str], object],
                 type_name: str) -> Callable[[str], list[object]]:
    def parse(text: str) -> list[object]:
        tokens = text.split()
        if not tokens:
            raise ValueError(f"empty {type_name} list")
        return [item(token) for token in tokens]

    return parse


def _parse_language(text: str) -> str:
    if not re.fullmatch(r"[a-zA-Z]{1,8}(-[a-zA-Z0-9]{1,8})*", text):
        raise ValueError(f"not a language code: {text!r}")
    return text


def _parse_base64(text: str) -> bytes:
    import base64

    try:
        return base64.b64decode(text.replace(" ", ""), validate=True)
    except Exception:
        raise ValueError(f"not base64: {text!r}") from None


def _parse_hex(text: str) -> bytes:
    if len(text) % 2 or not re.fullmatch(r"[0-9a-fA-F]*", text):
        raise ValueError(f"not hexBinary: {text!r}")
    return bytes.fromhex(text)


# -- registry --------------------------------------------------------------------

_INT32 = 2 ** 31
_INT64 = 2 ** 63

BUILTIN_TYPES: dict[str, Datatype] = {}


def _register(datatype: Datatype) -> Datatype:
    BUILTIN_TYPES[datatype.name] = datatype
    return datatype


_register(Datatype("string", _parse_string, PRESERVE))
_register(Datatype("normalizedString", _parse_string, REPLACE))
_register(Datatype("token", _parse_string))
_register(Datatype("language", _parse_language))
_register(Datatype("boolean", _parse_boolean))
_register(Datatype("decimal", _parse_decimal))
_register(Datatype("integer", _integer_parser(None, None, "integer")))
_register(Datatype("nonNegativeInteger",
                   _integer_parser(0, None, "nonNegativeInteger")))
_register(Datatype("positiveInteger",
                   _integer_parser(1, None, "positiveInteger")))
_register(Datatype("nonPositiveInteger",
                   _integer_parser(None, 0, "nonPositiveInteger")))
_register(Datatype("negativeInteger",
                   _integer_parser(None, -1, "negativeInteger")))
_register(Datatype("long", _integer_parser(-_INT64, _INT64 - 1, "long")))
_register(Datatype("int", _integer_parser(-_INT32, _INT32 - 1, "int")))
_register(Datatype("short", _integer_parser(-32768, 32767, "short")))
_register(Datatype("byte", _integer_parser(-128, 127, "byte")))
_register(Datatype("unsignedLong",
                   _integer_parser(0, 2 ** 64 - 1, "unsignedLong")))
_register(Datatype("unsignedInt",
                   _integer_parser(0, 2 ** 32 - 1, "unsignedInt")))
_register(Datatype("unsignedShort",
                   _integer_parser(0, 65535, "unsignedShort")))
_register(Datatype("unsignedByte", _integer_parser(0, 255, "unsignedByte")))
_register(Datatype("float", _parse_float))
_register(Datatype("double", _parse_float))
_register(Datatype("date", _parse_date))
_register(Datatype("time", _parse_time))
_register(Datatype("dateTime", _parse_datetime))
_register(Datatype("gYear", _parse_gyear))
_register(Datatype("duration", _parse_duration))
_register(Datatype("anyURI", _parse_any_uri))
_register(Datatype("Name", _name_parser(is_name, "Name")))
_register(Datatype("NCName", _name_parser(is_ncname, "NCName")))
_register(Datatype("QName", _name_parser(is_qname, "QName")))
_register(Datatype("NMTOKEN", _parse_nmtoken))
_register(Datatype("NMTOKENS", _list_parser(_parse_nmtoken, "NMTOKENS")))
_register(Datatype("ID", _name_parser(is_ncname, "ID"), id_kind="ID"))
_register(Datatype("IDREF", _name_parser(is_ncname, "IDREF"),
                   id_kind="IDREF"))
_register(Datatype(
    "IDREFS",
    _list_parser(_name_parser(is_ncname, "IDREF"), "IDREFS"),
    id_kind="IDREFS"))
_register(Datatype("ENTITY", _name_parser(is_ncname, "ENTITY")))
_register(Datatype("base64Binary", _parse_base64))
_register(Datatype("hexBinary", _parse_hex))
_register(Datatype("anySimpleType", _parse_string, PRESERVE))


def lookup_builtin(name: str) -> Datatype:
    """Return the built-in datatype *name* (``xsd:`` prefix stripped).

    Raises ``KeyError`` with a helpful message for unknown names.
    """
    local = name.split(":", 1)[-1]
    try:
        return BUILTIN_TYPES[local]
    except KeyError:
        raise KeyError(f"unknown built-in XSD type {name!r}") from None
