"""The Schema object: a registry of global components plus validation entry.

A :class:`Schema` holds global element declarations, named simple and
complex types, and (derived) the key constraints reachable from its root
elements.  Build one programmatically with :class:`SchemaBuilder` (how the
``goldmodel`` schema is produced) or parse a schema document with
:func:`repro.xsd.reader.read_schema`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .components import (
    AttributeDecl,
    ComplexType,
    ElementDecl,
    IdentityConstraint,
    ModelGroup,
    Particle,
    SimpleTypeLike,
)
from .content import ContentAutomaton, compile_content
from .errors import SchemaError
from .simpletypes import ListType, SimpleType, UnionType

__all__ = ["Schema", "SchemaBuilder"]


@dataclass
class Schema:
    """A compiled schema ready for validation.

    ``elements`` maps global element names to declarations; ``types`` maps
    user-defined type names (simple and complex) to definitions.
    """

    elements: dict[str, ElementDecl] = field(default_factory=dict)
    types: dict[str, "ComplexType | SimpleTypeLike"] = field(
        default_factory=dict)
    target_namespace: str | None = None
    #: Optional free-text annotation (xsd:documentation of the schema).
    documentation: str | None = None

    def __post_init__(self) -> None:
        self._automata: dict[int, ContentAutomaton] = {}

    # -- lookups -----------------------------------------------------------

    def element(self, name: str) -> ElementDecl:
        """The global element declaration *name* (raises SchemaError)."""
        try:
            return self.elements[name]
        except KeyError:
            raise SchemaError(
                f"no global element declaration named {name!r}") from None

    def type_definition(self, name: str) -> "ComplexType | SimpleTypeLike":
        """The named type *name* (raises SchemaError when undefined)."""
        try:
            return self.types[name]
        except KeyError:
            raise SchemaError(f"no type definition named {name!r}") from None

    def automaton_for(self, ctype: ComplexType) -> ContentAutomaton | None:
        """The (cached) compiled content automaton of *ctype*."""
        if ctype.content is None:
            return None
        key = id(ctype)
        automaton = self._automata.get(key)
        if automaton is None:
            automaton = compile_content(ctype.content)
            self._automata[key] = automaton
        return automaton

    # -- traversal ----------------------------------------------------------

    def iter_element_decls(self):
        """Yield every element declaration reachable from the globals."""
        seen: set[int] = set()
        stack = list(self.elements.values())
        while stack:
            decl = stack.pop()
            if id(decl) in seen:
                continue
            seen.add(id(decl))
            yield decl
            ctype = decl.type
            if isinstance(ctype, ComplexType) and ctype.content is not None:
                stack.extend(_particle_elements(ctype.content))

    def iter_identity_constraints(self):
        """Yield ``(element_decl, constraint)`` pairs across the schema."""
        for decl in self.iter_element_decls():
            for constraint in decl.constraints:
                yield decl, constraint


def _particle_elements(particle: Particle) -> list[ElementDecl]:
    found: list[ElementDecl] = []
    stack = [particle]
    while stack:
        current = stack.pop()
        term = current.term
        if isinstance(term, ElementDecl):
            found.append(term)
        elif isinstance(term, ModelGroup):
            stack.extend(term.particles)
    return found


class SchemaBuilder:
    """Fluent helper for building schemas programmatically.

    The Russian-doll style of the paper maps naturally: nested calls create
    anonymous complex types inline.

    >>> builder = SchemaBuilder()
    >>> root = builder.element(
    ...     'model',
    ...     builder.complex_type(
    ...         content=builder.sequence(
    ...             builder.particle(builder.element('item'), 0, None)),
    ...         attributes=[builder.attribute('id', 'ID', use='required')]))
    >>> schema = builder.build(root)
    >>> sorted(schema.elements)
    ['model']
    """

    def __init__(self) -> None:
        self._named_types: dict[str, ComplexType | SimpleTypeLike] = {}

    # -- simple types ------------------------------------------------------------

    def simple_type(self, base: str | SimpleTypeLike, *,
                    name: str | None = None,
                    facets: list | None = None) -> SimpleType:
        """A restriction simple type over *base* (builtin name or type)."""
        from .simpletypes import builtin_simple_type

        base_type = builtin_simple_type(base) if isinstance(base, str) else base
        stype = SimpleType(base=base_type, facets=facets or [], name=name)
        if name:
            self.register_type(name, stype)
        return stype

    def enumeration(self, base: str, values: list[str], *,
                    name: str | None = None) -> SimpleType:
        """Shorthand for a restriction with an enumeration facet."""
        from .facets import Enumeration

        return self.simple_type(base, name=name,
                                facets=[Enumeration(tuple(values))])

    # -- structures -----------------------------------------------------------------

    @staticmethod
    def attribute(name: str, type_: str | SimpleTypeLike = "string", *,
                  use: str = "optional", default: str | None = None,
                  fixed: str | None = None) -> AttributeDecl:
        """An attribute declaration; *type_* may be a builtin type name."""
        from .simpletypes import builtin_simple_type

        resolved = builtin_simple_type(type_) if isinstance(type_, str) \
            else type_
        return AttributeDecl(name, resolved, use=use, default=default,
                             fixed=fixed)

    @staticmethod
    def element(name: str,
                type_: "ComplexType | SimpleTypeLike | str | None" = None,
                *, constraints: list[IdentityConstraint] | None = None
                ) -> ElementDecl:
        """An element declaration; *type_* may be a builtin type name."""
        from .simpletypes import builtin_simple_type

        resolved = builtin_simple_type(type_) if isinstance(type_, str) \
            else type_
        return ElementDecl(name, resolved, constraints=constraints or [])

    @staticmethod
    def particle(term, min_occurs: int = 1,
                 max_occurs: int | None = 1) -> Particle:
        """Wrap *term* with occurrence bounds."""
        return Particle(term, min_occurs, max_occurs)

    @staticmethod
    def sequence(*parts: "Particle | ElementDecl | ModelGroup") -> Particle:
        """A sequence group particle (bare terms get 1..1 bounds)."""
        return Particle(ModelGroup("sequence", [_as_particle(p)
                                                for p in parts]))

    @staticmethod
    def choice(*parts: "Particle | ElementDecl | ModelGroup") -> Particle:
        """A choice group particle."""
        return Particle(ModelGroup("choice", [_as_particle(p)
                                              for p in parts]))

    def complex_type(self, *, name: str | None = None,
                     content: Particle | None = None,
                     attributes: list[AttributeDecl] | None = None,
                     simple_content: SimpleTypeLike | None = None,
                     mixed: bool = False) -> ComplexType:
        """A complex type; named ones are registered on the builder."""
        ctype = ComplexType(name=name, attributes=attributes or [],
                            content=content, simple_content=simple_content,
                            mixed=mixed)
        if name:
            self.register_type(name, ctype)
        return ctype

    def register_type(self, name: str,
                      definition: "ComplexType | SimpleTypeLike") -> None:
        """Register a named type, rejecting duplicates."""
        if name in self._named_types:
            raise SchemaError(f"duplicate type definition {name!r}")
        self._named_types[name] = definition

    @staticmethod
    def key(name: str, selector: str, fields: list[str]) -> IdentityConstraint:
        """An ``xsd:key`` constraint."""
        return IdentityConstraint("key", name, selector, fields)

    @staticmethod
    def unique(name: str, selector: str,
               fields: list[str]) -> IdentityConstraint:
        """An ``xsd:unique`` constraint."""
        return IdentityConstraint("unique", name, selector, fields)

    @staticmethod
    def keyref(name: str, selector: str, fields: list[str],
               refer: str) -> IdentityConstraint:
        """An ``xsd:keyref`` constraint referring to key *refer*."""
        return IdentityConstraint("keyref", name, selector, fields,
                                  refer=refer)

    def build(self, *roots: ElementDecl,
              documentation: str | None = None) -> Schema:
        """Assemble the schema from global *roots* and registered types."""
        if not roots:
            raise SchemaError("a schema needs at least one global element")
        return Schema(
            elements={decl.name: decl for decl in roots},
            types=dict(self._named_types),
            documentation=documentation,
        )


def _as_particle(part) -> Particle:
    if isinstance(part, Particle):
        return part
    return Particle(part)
