"""repro — reproduction of "A Web-Oriented Approach to Manage
Multidimensional Models through XML Schemas and XSLT" (Luján-Mora,
Medina, Trujillo; EDBT 2002 Workshops).

Subpackages
-----------
``repro.mdm``
    The GOLD conceptual multidimensional metamodel (the paper's core):
    fact/dimension/cube classes, semantic validation, XML round-trip,
    generated XML Schema and DTD.
``repro.xml`` / ``repro.xpath`` / ``repro.xsd`` / ``repro.dtd`` /
``repro.xslt``
    The web substrate, built from scratch: XML 1.0 parser and DOM,
    XPath 1.0 engine, XML Schema validator (with key/keyref), DTD
    validator (the baseline), and an XSLT 1.0/1.1 engine.
``repro.web``
    Presentation layer (§4): built-in stylesheets, multi-/single-page
    site publishing, per-fact-class presentations (Fig. 5), schema tree
    view (Fig. 2), link checking (Fig. 6).
``repro.olap``
    The "commercial OLAP tool" stand-in: star-schema storage, cube-class
    execution with additivity enforcement, SQL DDL export.
``repro.casetool``
    The ``goldcase`` CLI tying the workflow together.

Quickstart
----------
>>> from repro.mdm import sales_model, model_to_xml, gold_schema
>>> from repro.xsd import validate
>>> from repro.xml import parse
>>> model = sales_model()
>>> report = validate(parse(model_to_xml(model)), gold_schema())
>>> report.valid
True
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
