"""The live ops dashboard, published through the engine it monitors.

Like the PR 3 profile page (:mod:`repro.obs.htmlreport`), the dashboard
is rendered by the repo's own XSLT pipeline: :func:`dashboard_document`
lowers a :meth:`~repro.server.telemetry.ServerTelemetry.snapshot` dict
into a ``<dashboard>`` XML tree and :data:`DASHBOARD_XSL` turns it into
the HTML page served at ``GET /dashboard`` — the paper's web-oriented
presentation layer, pointed at the server itself.

The page is a plain snapshot with a 2-second ``meta http-equiv``
refresh: no JavaScript, no state on the server, so it stays serveable
under the same degraded conditions the chaos suite exercises.  The
traffic sparkline is computed Python-side (unicode block glyphs) so the
stylesheet stays a pure layout concern.
"""

from __future__ import annotations

from ..xml.dom import Document, Element

__all__ = ["DASHBOARD_XSL", "dashboard_document", "render_dashboard_html",
           "sparkline"]

#: Eight block glyphs give the sparkline eight vertical levels.
_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"

DASHBOARD_XSL = """<?xml version="1.0"?>
<xsl:stylesheet version="1.0"
    xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:output method="html" indent="no"/>

  <xsl:template match="/dashboard">
    <html>
      <head>
        <title>goldcase ops</title>
        <meta http-equiv="refresh" content="2"/>
        <link rel="stylesheet" type="text/css" href="gold.css"/>
      </head>
      <body bgcolor="mintcream">
        <h1>goldcase ops</h1>
        <p>
          <font size="2">up <xsl:value-of select="@uptime"/>,
          <xsl:value-of select="@requests"/> requests served,
          request id <xsl:value-of select="@request-id"/></font>
        </p>

        <h2>Traffic (last 60s)</h2>
        <p><tt><xsl:value-of select="traffic/@sparkline"/></tt>
          <font size="2"> peak <xsl:value-of select="traffic/@peak"/>/s</font>
        </p>

        <h2>Service objectives</h2>
        <table border="1" cellspacing="0">
          <tr bgcolor="#C0C0C0">
            <th>objective</th><th>window</th><th>value</th>
            <th>threshold</th><th>budget burn</th><th>state</th>
          </tr>
          <xsl:for-each select="slos/slo">
            <tr>
              <xsl:if test="@ok = 'no'">
                <xsl:attribute name="bgcolor">#FFC0C0</xsl:attribute>
              </xsl:if>
              <td><font size="2"><xsl:value-of select="@name"/></font></td>
              <td align="right"><font size="2">
                <xsl:value-of select="@window"/></font></td>
              <td align="right"><font size="2">
                <xsl:value-of select="@value"/></font></td>
              <td align="right"><font size="2">
                <xsl:value-of select="@threshold"/></font></td>
              <td align="right"><font size="2">
                <xsl:value-of select="@burn"/></font></td>
              <td align="center"><font size="2">
                <xsl:choose>
                  <xsl:when test="@ok = 'yes'">OK</xsl:when>
                  <xsl:otherwise>BURNING</xsl:otherwise>
                </xsl:choose></font></td>
            </tr>
          </xsl:for-each>
        </table>

        <h2>Rates</h2>
        <table border="1" cellspacing="0">
          <tr bgcolor="#C0C0C0">
            <th>window</th><th>req/s</th><th>5xx/s</th>
            <th>p50 (ms)</th><th>p99 (ms)</th>
          </tr>
          <xsl:for-each select="windows/window">
            <tr>
              <td align="right"><font size="2">
                <xsl:value-of select="@label"/></font></td>
              <td align="right"><font size="2">
                <xsl:value-of select="@rate"/></font></td>
              <td align="right"><font size="2">
                <xsl:value-of select="@errors"/></font></td>
              <td align="right"><font size="2">
                <xsl:value-of select="@p50-ms"/></font></td>
              <td align="right"><font size="2">
                <xsl:value-of select="@p99-ms"/></font></td>
            </tr>
          </xsl:for-each>
        </table>

        <xsl:if test="models/model">
          <h2>Top models</h2>
          <table border="1" cellspacing="0">
            <tr bgcolor="#C0C0C0"><th>model</th><th>requests</th></tr>
            <xsl:for-each select="models/model">
              <tr>
                <td><font size="2"><xsl:value-of select="@name"/></font></td>
                <td align="right"><font size="2">
                  <xsl:value-of select="@requests"/></font></td>
              </tr>
            </xsl:for-each>
          </table>
        </xsl:if>

        <xsl:if test="counters/counter">
          <h2>Lifetime counters</h2>
          <table border="1" cellspacing="0">
            <tr bgcolor="#C0C0C0"><th>counter</th><th>total</th></tr>
            <xsl:for-each select="counters/counter">
              <tr>
                <td><font size="2"><xsl:value-of select="@name"/></font></td>
                <td align="right"><font size="2">
                  <xsl:value-of select="@value"/></font></td>
              </tr>
            </xsl:for-each>
          </table>
        </xsl:if>
      </body>
    </html>
  </xsl:template>
</xsl:stylesheet>
"""


def sparkline(values: list[int]) -> str:
    """Render *values* as unicode block glyphs, scaled to the peak."""
    if not values:
        return ""
    peak = max(values)
    if peak <= 0:
        return _SPARK_GLYPHS[0] * len(values)
    top = len(_SPARK_GLYPHS) - 1
    return "".join(
        _SPARK_GLYPHS[min(top, round(value * top / peak))]
        for value in values)


def _uptime_text(seconds: float) -> str:
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def dashboard_document(snap: dict, *, request_id: str = "") -> Document:
    """Lower a telemetry snapshot into the ``<dashboard>`` XML tree."""
    document = Document()
    root = document.append_child(Element("dashboard"))
    totals = snap.get("totals", {})
    root.set_attribute("uptime", _uptime_text(snap.get("uptime_s", 0)))
    root.set_attribute("requests", str(totals.get("http.requests", 0)))
    root.set_attribute("request-id", request_id)

    series = snap.get("series_60s", [])
    traffic = root.append_child(Element("traffic"))
    traffic.set_attribute("sparkline", sparkline(series))
    traffic.set_attribute("peak", str(max(series) if series else 0))

    slos = root.append_child(Element("slos"))
    for status in snap.get("slos", []):
        entry = slos.append_child(Element("slo"))
        entry.set_attribute("name", status["name"])
        entry.set_attribute("window", f"{status['window_s']}s")
        if status["kind"] == "latency":
            entry.set_attribute("value", f"{status['value'] * 1000:.2f}ms")
            entry.set_attribute(
                "threshold", f"{status['threshold'] * 1000:.2f}ms")
        else:
            entry.set_attribute("value", f"{status['value'] * 100:.3f}%")
            entry.set_attribute(
                "threshold", f"{status['threshold'] * 100:.3f}%")
        entry.set_attribute("burn", f"{status['burn']:.2f}")
        entry.set_attribute("ok", "yes" if status["ok"] else "no")

    windows = root.append_child(Element("windows"))
    for window_text, entry_data in snap.get("windows", {}).items():
        window_s = int(window_text)
        counters = entry_data.get("counters", {})
        latency = entry_data.get("sketches", {}).get("http.latency", {})
        entry = windows.append_child(Element("window"))
        entry.set_attribute("label", f"{window_s}s")
        entry.set_attribute(
            "rate", f"{counters.get('http.requests', 0) / window_s:.2f}")
        entry.set_attribute(
            "errors", f"{counters.get('http.status.5xx', 0) / window_s:.3f}")
        entry.set_attribute(
            "p50-ms", f"{latency.get('p50', 0.0) * 1000:.2f}")
        entry.set_attribute(
            "p99-ms", f"{latency.get('p99', 0.0) * 1000:.2f}")

    models = root.append_child(Element("models"))
    for name, count in snap.get("top_models", []):
        entry = models.append_child(Element("model"))
        entry.set_attribute("name", name)
        entry.set_attribute("requests", str(count))

    counters = root.append_child(Element("counters"))
    for name in sorted(totals):
        if name.startswith("model."):
            continue
        entry = counters.append_child(Element("counter"))
        entry.set_attribute("name", name)
        entry.set_attribute("value", str(totals[name]))
    return document


_DASHBOARD_TRANSFORMER = None


def render_dashboard_html(snap: dict, *, request_id: str = "") -> str:
    """Render the ops page for *snap* via the XSLT engine."""
    global _DASHBOARD_TRANSFORMER
    from ..xslt import Transformer, compile_stylesheet

    if _DASHBOARD_TRANSFORMER is None:
        _DASHBOARD_TRANSFORMER = Transformer(
            compile_stylesheet(DASHBOARD_XSL))
    result = _DASHBOARD_TRANSFORMER.transform(
        dashboard_document(snap, request_id=request_id))
    return result.serialize()
