"""ULID-style request identifiers: sortable, monotonic, injectable.

Every request through the repository server gets an id on the
``X-Goldcase-Request-Id`` header so an access-log line, a chaos
reproducer, and a client retry trace all name the same exchange
(DESIGN.md §15).  The format follows ULID: 26 Crockford-base32
characters encoding a 48-bit millisecond timestamp and 80 random bits,
so ids sort by creation time lexicographically.

Two properties matter here beyond the format:

* **Monotonic within a generator.**  Two ids drawn in the same
  millisecond differ by an increment of the random payload, so ids
  never collide or sort out of order even under a coarse clock.
* **Injectable time and randomness.**  The clock (milliseconds) and the
  RNG are constructor arguments, so tests mint ids at a fixed instant
  and the seeded chaos client derives *reproducible* ids from its
  replayable RNG — no wall-clock reads required at test time.

This module lives under :mod:`repro.obs` (not the server package) so
:mod:`repro.web.client` can import it without a package cycle: the
server package already imports the web package for publishing.
"""

from __future__ import annotations

import threading
import time
from random import Random

__all__ = ["CROCKFORD32", "RequestIdGenerator", "is_request_id"]

#: Crockford's base32 alphabet (no I, L, O, U).
CROCKFORD32 = "0123456789ABCDEFGHJKMNPQRSTVWXYZ"

_DECODE = {char: index for index, char in enumerate(CROCKFORD32)}

#: 48-bit timestamp + 80-bit payload = 128 bits = 26 base32 chars.
_TIMESTAMP_BITS = 48
_PAYLOAD_BITS = 80
_PAYLOAD_MASK = (1 << _PAYLOAD_BITS) - 1


#: 10 bits -> two Crockford chars; encoding 130 bits in 13 table hits
#: is ~3x faster than a 26-iteration shift loop, and ids are minted on
#: the request hot path.
_ENC2 = tuple(CROCKFORD32[high] + CROCKFORD32[low]
              for high in range(32) for low in range(32))


def _encode(value: int, chars: int) -> str:
    if chars & 1:
        out = [CROCKFORD32[(value >> (5 * (chars - 1))) & 31]]
        chars -= 1
    else:
        out = []
    out.extend(_ENC2[(value >> shift) & 1023]
               for shift in range(5 * (chars - 2), -1, -10))
    return "".join(out)


# The id splits cleanly at character boundaries: 26 chars x 5 bits =
# 130 bits = 2 pad bits + 48 timestamp bits (chars 0-9) + 40 high
# payload bits (chars 10-17) + 40 low payload bits (chars 18-25).
# Minting encodes the three fields independently, which matters on the
# armed hot path twice over:
#
# * The shifts operate on 48- and 40-bit ints instead of the combined
#   128-bit value, so every intermediate is a one- or two-digit CPython
#   long and every ``& 31`` result is an interned small int.
# * The timestamp and high-payload fields only change when the clock
#   ticks or the low half wraps, so :class:`RequestIdGenerator` caches
#   their 18 encoded chars and the common mint re-encodes only the low
#   eight.
#
# Indexing the 32-char alphabet directly (not a precomputed pair
# table) keeps the lookup structure resident in L1; under a 16-thread
# request storm a bigger table's cache footprint costs more than the
# instructions it saves.

_HALF_BITS = _PAYLOAD_BITS // 2
_HALF_MASK = (1 << _HALF_BITS) - 1


def _encode_ts(value: int, _c: str = CROCKFORD32) -> str:
    """Chars 0-9 of a ULID: the 48-bit timestamp (2 leading pad bits)."""
    return "".join((
        _c[(value >> 45) & 31], _c[(value >> 40) & 31],
        _c[(value >> 35) & 31], _c[(value >> 30) & 31],
        _c[(value >> 25) & 31], _c[(value >> 20) & 31],
        _c[(value >> 15) & 31], _c[(value >> 10) & 31],
        _c[(value >> 5) & 31], _c[value & 31]))


def _encode40(value: int, _c: str = CROCKFORD32) -> str:
    """Eight chars covering one 40-bit half of the payload."""
    return "".join((
        _c[(value >> 35) & 31], _c[(value >> 30) & 31],
        _c[(value >> 25) & 31], _c[(value >> 20) & 31],
        _c[(value >> 15) & 31], _c[(value >> 10) & 31],
        _c[(value >> 5) & 31], _c[value & 31]))


def is_request_id(text: str) -> bool:
    """True for a well-formed 26-character Crockford-base32 id."""
    return (len(text) == 26
            and all(char in _DECODE for char in text)
            # 48 bits of timestamp in 50 bits of space: the first char
            # carries only 3 significant bits (ULID spec: <= '7').
            and _DECODE[text[0]] < 8)


class RequestIdGenerator:
    """Mints monotonic ULID-style ids; thread-safe, fully injectable.

    *clock_ms* returns milliseconds since an arbitrary epoch (default:
    Unix wall clock); *rng* supplies the 80-bit payloads (default: a
    fresh :class:`random.Random`).  Within one millisecond, successive
    ids increment the previous payload instead of redrawing, which
    keeps them strictly increasing.
    """

    __slots__ = ("_clock_ms", "_rng", "_lock", "_last_ms", "_last_hi",
                 "_last_lo", "_head")

    def __init__(self, clock_ms=None, rng: Random | None = None) -> None:
        self._clock_ms = clock_ms or (lambda: int(time.time() * 1000))
        self._rng = rng if rng is not None else Random()
        self._lock = threading.Lock()
        self._last_ms = -1
        self._last_hi = 0
        self._last_lo = 0
        #: Chars 0-17 of the last id (timestamp + high payload half),
        #: valid for ``(_last_ms, _last_hi)``: every mint inside one
        #: millisecond reuses it and re-encodes only the low eight
        #: chars (see the encoder split above).
        self._head = ""

    def __call__(self, _c: str = CROCKFORD32) -> str:
        with self._lock:
            now_ms = int(self._clock_ms()) & ((1 << _TIMESTAMP_BITS) - 1)
            if now_ms <= self._last_ms:
                # Same (or regressed) millisecond: bump the payload so
                # the id still sorts after every id already issued, and
                # keep the already-encoded head.
                lo = (self._last_lo + 1) & _HALF_MASK
                if lo:
                    head = self._head
                else:
                    hi = self._last_hi = (self._last_hi + 1) & _HALF_MASK
                    head = self._head = \
                        _encode_ts(self._last_ms) + _encode40(hi)
            else:
                payload = self._rng.getrandbits(_PAYLOAD_BITS)
                hi = self._last_hi = payload >> _HALF_BITS
                lo = payload & _HALF_MASK
                head = self._head = _encode_ts(now_ms) + _encode40(hi)
                self._last_ms = now_ms
            self._last_lo = lo
        # _encode40(lo) inlined into one 9-part join: the common mint is
        # this single expression over the cached head and eight lookups.
        return "".join((
            head,
            _c[(lo >> 35) & 31], _c[(lo >> 30) & 31],
            _c[(lo >> 25) & 31], _c[(lo >> 20) & 31],
            _c[(lo >> 15) & 31], _c[(lo >> 10) & 31],
            _c[(lo >> 5) & 31], _c[lo & 31]))
