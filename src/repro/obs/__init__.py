"""Engine-wide observability: spans, counters, sinks (DESIGN.md §10).

Quick use::

    from repro.obs import profiling, build_trace, text_report

    with profiling():
        publish_multi_page(model)
        trace = build_trace()
    print(text_report(trace))

The instrumented hot paths (``xml/dom.py``, ``xpath/evaluator.py``,
``xslt/engine.py``, ``xsd/validator.py``, ``web/publisher.py``) guard
every recording call on ``RECORDER.enabled`` and are no-ops by default;
``benchmarks/bench_o3_overhead.py`` holds the ≤2 % disabled-overhead
guard.

Only the stdlib-only modules (:mod:`.recorder`, :mod:`.export`) load
eagerly — the HTML sink pulls in the XSLT engine, so it stays a lazy
import inside :func:`render_profile_html`'s module.
"""

from .export import (
    SCHEMA_VERSION,
    build_trace,
    cache_stats,
    text_report,
    trace_json,
    write_trace,
)
from .recorder import (
    RECORDER,
    Recorder,
    Snapshot,
    count,
    enabled,
    observe,
    profiling,
    span,
)

__all__ = [
    "RECORDER",
    "Recorder",
    "Snapshot",
    "SCHEMA_VERSION",
    "build_trace",
    "cache_stats",
    "count",
    "enabled",
    "observe",
    "profiling",
    "render_profile_html",
    "span",
    "text_report",
    "trace_json",
    "write_trace",
]


def render_profile_html(trace: dict | None = None) -> str:
    """Render the HTML profile page (lazy import of the XSLT sink)."""
    from .htmlreport import render_profile_html as render

    return render(trace)
