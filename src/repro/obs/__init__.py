"""Engine-wide observability: spans, counters, sinks (DESIGN.md §10).

Quick use::

    from repro.obs import profiling, build_trace, text_report

    with profiling():
        publish_multi_page(model)
        trace = build_trace()
    print(text_report(trace))

The instrumented hot paths (``xml/dom.py``, ``xpath/evaluator.py``,
``xslt/engine.py``, ``xsd/validator.py``, ``web/publisher.py``) guard
every recording call on ``RECORDER.enabled`` and are no-ops by default;
``benchmarks/bench_o3_overhead.py`` holds the ≤2 % disabled-overhead
guard.

Only the stdlib-only modules (:mod:`.recorder`, :mod:`.export`) load
eagerly — the HTML sink pulls in the XSLT engine, so it stays a lazy
import inside :func:`render_profile_html`'s module.
"""

from .export import (
    SCHEMA_VERSION,
    build_trace,
    cache_stats,
    text_report,
    trace_json,
    write_trace,
)
from .ids import RequestIdGenerator, is_request_id
from .recorder import (
    RECORDER,
    Recorder,
    Snapshot,
    count,
    enabled,
    observe,
    profiling,
    span,
)
from .rolling import (GAMMA, WINDOWS, QuantileSketch, RollingWindow,
                      ShardedRollingWindow)
from .slo import LatencySLO, RatioSLO, SLOStatus, default_slos, parse_slo

__all__ = [
    "GAMMA",
    "LatencySLO",
    "QuantileSketch",
    "RECORDER",
    "RatioSLO",
    "Recorder",
    "RequestIdGenerator",
    "RollingWindow",
    "ShardedRollingWindow",
    "SLOStatus",
    "Snapshot",
    "SCHEMA_VERSION",
    "WINDOWS",
    "build_trace",
    "cache_stats",
    "count",
    "default_slos",
    "enabled",
    "is_request_id",
    "observe",
    "parse_slo",
    "profiling",
    "render_dashboard_html",
    "render_profile_html",
    "span",
    "text_report",
    "trace_json",
    "write_trace",
]


def render_profile_html(trace: dict | None = None) -> str:
    """Render the HTML profile page (lazy import of the XSLT sink)."""
    from .htmlreport import render_profile_html as render

    return render(trace)


def render_dashboard_html(snap: dict, *, request_id: str = "") -> str:
    """Render the live ops page (lazy import of the XSLT sink)."""
    from .dashboard import render_dashboard_html as render

    return render(snap, request_id=request_id)
