"""The tracing/metrics core: a global recorder with spans and counters.

Design constraints (DESIGN.md §10):

* **Zero overhead by default.**  The module-level :data:`RECORDER` is a
  plain slotted object whose ``enabled`` attribute is ``False`` until
  someone calls :meth:`Recorder.enable`.  Instrumented hot paths guard
  every recording call with ``if RECORDER.enabled:`` — one global load,
  one attribute load, one branch — and :meth:`Recorder.span` returns a
  shared no-op context manager when disabled, so nothing is allocated.
* **Thread safety without hot-path locks.**  Counters, histograms and
  completed spans accumulate in per-thread states (``threading.local``);
  only :meth:`Recorder.snapshot` and state registration take the lock.
  Snapshots merge all thread states, so counters incremented from
  worker threads sum correctly.
* **Hierarchical spans.**  ``with RECORDER.span("publish.page",
  page="f1.html"):`` times a region with a monotonic clock and records
  its nesting path (``publish.multi_page/publish.page``) from the
  per-thread span stack.  Spans survive exceptions: ``__exit__`` always
  records.

Everything here is stdlib-only and imports nothing from the rest of the
package, so the XML/XPath/XSLT/XSD hot paths can import it without
cycles.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter

__all__ = [
    "RECORDER",
    "Recorder",
    "Snapshot",
    "enabled",
    "profiling",
    "span",
    "count",
    "observe",
]

#: Completed spans kept per thread before further ones are dropped (and
#: counted in ``Snapshot.dropped_spans``).  Aggregates keep accumulating.
MAX_SPANS_PER_THREAD = 50_000


class _Hist:
    """Streaming summary statistics for one histogram / span path."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "_Hist") -> None:
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": (self.total / self.count) if self.count else 0.0,
        }


class _ThreadState:
    """All accumulation for one thread; touched without locking."""

    __slots__ = ("counters", "hists", "spans", "span_aggregates", "stack",
                 "dropped_spans", "thread_name")

    def __init__(self, thread_name: str) -> None:
        self.counters: dict[str, int] = {}
        self.hists: dict[str, _Hist] = {}
        #: Completed (path, name, tags, start_offset_s, duration_s).
        self.spans: list[tuple] = []
        self.span_aggregates: dict[str, _Hist] = {}
        self.stack: list[str] = []
        self.dropped_spans = 0
        self.thread_name = thread_name


class _NullSpan:
    """The shared disabled-mode span: a reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """An active span; records itself on exit, exception or not."""

    __slots__ = ("_state", "name", "tags", "path", "_start")

    def __init__(self, state: _ThreadState, name: str, tags: dict) -> None:
        self._state = state
        self.name = name
        self.tags = tags
        stack = state.stack
        self.path = (stack[-1] + "/" + name) if stack else name
        stack.append(self.path)
        self._start = perf_counter()

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc_info) -> bool:
        duration = perf_counter() - self._start
        state = self._state
        # Unwind to this span even if an inner span leaked (exception
        # paths that bypass an inner __exit__ cannot corrupt nesting).
        stack = state.stack
        while stack and stack[-1] != self.path:
            stack.pop()
        if stack:
            stack.pop()
        hist = state.span_aggregates.get(self.path)
        if hist is None:
            hist = state.span_aggregates[self.path] = _Hist()
        hist.add(duration)
        if len(state.spans) < MAX_SPANS_PER_THREAD:
            state.spans.append(
                (self.path, self.name, self.tags,
                 self._start - RECORDER._epoch_start, duration))
        else:
            state.dropped_spans += 1
        return False


@dataclass
class Snapshot:
    """A merged, point-in-time view of everything recorded so far."""

    counters: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)
    #: Completed spans as dicts, ordered by start time.
    spans: list[dict] = field(default_factory=list)
    #: Per-path cumulative statistics (count/total/min/max/mean).
    span_aggregates: dict[str, dict] = field(default_factory=dict)
    dropped_spans: int = 0
    threads: int = 0


class Recorder:
    """The global metrics/tracing accumulator.  See module docstring."""

    __slots__ = ("enabled", "_lock", "_local", "_states", "_epoch",
                 "_epoch_start")

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._local = threading.local()
        self._states: list[_ThreadState] = []
        #: Bumped by clear() so stale thread-local states re-register.
        self._epoch = 0
        self._epoch_start = perf_counter()

    # -- lifecycle ---------------------------------------------------------

    def enable(self, clear: bool = True) -> None:
        """Turn recording on (optionally clearing prior data)."""
        if clear:
            self.clear()
        self.enabled = True

    def disable(self) -> None:
        """Turn recording off; accumulated data stays snapshot-able."""
        self.enabled = False

    def clear(self) -> None:
        """Drop all recorded data (all threads)."""
        with self._lock:
            self._states = []
            self._epoch += 1
            self._epoch_start = perf_counter()

    # -- accumulation ------------------------------------------------------

    def _state(self) -> _ThreadState:
        local = self._local
        state = getattr(local, "state", None)
        if state is None or getattr(local, "epoch", -1) != self._epoch:
            state = _ThreadState(threading.current_thread().name)
            local.state = state
            local.epoch = self._epoch
            with self._lock:
                self._states.append(state)
        return state

    def count(self, name: str, n: int = 1) -> None:
        """Add *n* to counter *name* (no-op while disabled)."""
        if not self.enabled:
            return
        counters = self._state().counters
        counters[name] = counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name* (no-op while disabled)."""
        if not self.enabled:
            return
        hists = self._state().hists
        hist = hists.get(name)
        if hist is None:
            hist = hists[name] = _Hist()
        hist.add(value)

    def span(self, name: str, **tags):
        """A context manager timing a region; shared no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self._state(), name, tags)

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Merge every thread's accumulation into one :class:`Snapshot`."""
        snap = Snapshot()
        counters: dict[str, int] = {}
        hists: dict[str, _Hist] = {}
        aggregates: dict[str, _Hist] = {}
        raw_spans: list[tuple] = []
        with self._lock:
            states = list(self._states)
        for state in states:
            for name, value in state.counters.items():
                counters[name] = counters.get(name, 0) + value
            for name, hist in state.hists.items():
                merged = hists.get(name)
                if merged is None:
                    merged = hists[name] = _Hist()
                merged.merge(hist)
            for path, hist in state.span_aggregates.items():
                merged = aggregates.get(path)
                if merged is None:
                    merged = aggregates[path] = _Hist()
                merged.merge(hist)
            raw_spans.extend(state.spans)
            snap.dropped_spans += state.dropped_spans
        raw_spans.sort(key=lambda record: record[3])
        snap.counters = dict(sorted(counters.items()))
        snap.histograms = {
            name: hists[name].as_dict() for name in sorted(hists)}
        snap.span_aggregates = {
            path: aggregates[path].as_dict() for path in sorted(aggregates)}
        snap.spans = [
            {"path": path, "name": name, "tags": tags,
             "start_s": start, "duration_s": duration}
            for path, name, tags, start, duration in raw_spans
        ]
        snap.threads = len(states)
        return snap


#: The process-wide recorder every instrumented module guards on.
RECORDER = Recorder()


# -- convenience module-level API ------------------------------------------

def enabled() -> bool:
    """True when the global recorder is collecting."""
    return RECORDER.enabled


def span(name: str, **tags):
    """``RECORDER.span`` as a free function."""
    return RECORDER.span(name, **tags)


def count(name: str, n: int = 1) -> None:
    """``RECORDER.count`` as a free function."""
    RECORDER.count(name, n)


def observe(name: str, value: float) -> None:
    """``RECORDER.observe`` as a free function."""
    RECORDER.observe(name, value)


class profiling:
    """``with profiling():`` — enable the recorder for a region.

    Restores the previous enabled state on exit (exception or not), so
    nested/overlapping uses compose.  ``clear=True`` (the default) drops
    prior data on entry for a clean profile.
    """

    __slots__ = ("_clear", "_was_enabled")

    def __init__(self, clear: bool = True) -> None:
        self._clear = clear
        self._was_enabled = False

    def __enter__(self) -> Recorder:
        self._was_enabled = RECORDER.enabled
        RECORDER.enable(clear=self._clear and not self._was_enabled)
        return RECORDER

    def __exit__(self, *exc_info) -> bool:
        RECORDER.enabled = self._was_enabled
        return False
