"""Declarative SLOs evaluated over the rolling telemetry windows.

An SLO here is a small frozen object naming an objective over one
:class:`~repro.obs.rolling.RollingWindow` — "p99 warm GET under 5 ms
over the last minute", "availability 99.9% over 15 minutes", "staleness
ratio under 1%" — evaluated lazily at snapshot time (``/metrics``,
``/dashboard``), never on the request path.

Both kinds reduce to the same error-budget arithmetic:

* a :class:`LatencySLO` at quantile q allows a ``1 - q`` fraction of
  requests to exceed the threshold (that *is* what "p99 < 5 ms" means);
  the burn rate is the observed above-threshold fraction divided by
  that allowance;
* a :class:`RatioSLO` allows ``max_ratio`` of events to be bad (5xx,
  stale, shed); the burn rate is the observed ratio over the allowance.

``burn <= 1`` means the objective holds over the window; ``burn == 2``
means the error budget is being spent twice as fast as it accrues.  An
empty window burns nothing — no traffic is not an outage.

The CLI grammar (``goldcase serve --slo SPEC``), also used by tests::

    p99:http.latency<5ms@1m          latency quantile objective
    ratio:http.stale/http.requests<1%@5m
    availability>=99.9%@15m          sugar for 5xx ratio
    checkout=p99:http.latency<20ms@5m   (optional name= prefix)
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .rolling import RollingWindow

__all__ = [
    "LatencySLO",
    "RatioSLO",
    "SLOStatus",
    "default_slos",
    "parse_slo",
]


@dataclass(frozen=True)
class SLOStatus:
    """One evaluated objective: JSON-ready, ordering-stable."""

    name: str
    kind: str
    window_s: int
    #: The measured signal: seconds for latency SLOs, fraction for
    #: ratio SLOs.
    value: float
    #: The objective bound on ``value``.
    threshold: float
    #: Allowed bad fraction (the error budget per unit of traffic).
    budget: float
    #: Observed bad fraction / budget; <= 1 means the objective holds.
    burn: float
    ok: bool
    #: Observations the verdict is based on (0 = no traffic, ok).
    samples: int

    def as_dict(self) -> dict:
        return {
            "name": self.name, "kind": self.kind,
            "window_s": self.window_s, "value": self.value,
            "threshold": self.threshold, "budget": self.budget,
            "burn": round(self.burn, 4), "ok": self.ok,
            "samples": self.samples,
        }


@dataclass(frozen=True)
class LatencySLO:
    """``quantile`` of sketch ``metric`` must stay under ``threshold_s``."""

    name: str
    metric: str
    quantile: float
    threshold_s: float
    window_s: int

    kind = "latency"

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(f"quantile {self.quantile!r} outside (0, 1)")
        if self.threshold_s <= 0:
            raise ValueError("latency threshold must be positive")

    def evaluate(self, window: RollingWindow) -> SLOStatus:
        sketch = window.window_sketch(self.metric, self.window_s)
        budget = 1.0 - self.quantile
        bad_fraction = sketch.fraction_above(self.threshold_s)
        burn = bad_fraction / budget
        return SLOStatus(
            name=self.name, kind=self.kind, window_s=self.window_s,
            value=sketch.quantile(self.quantile),
            threshold=self.threshold_s, budget=budget, burn=burn,
            ok=burn <= 1.0, samples=sketch.count)


@dataclass(frozen=True)
class RatioSLO:
    """``bad / total`` (windowed counters) must stay under ``max_ratio``."""

    name: str
    bad: str
    total: str
    max_ratio: float
    window_s: int

    kind = "ratio"

    def __post_init__(self) -> None:
        if not 0.0 < self.max_ratio < 1.0:
            raise ValueError(f"max_ratio {self.max_ratio!r} outside (0, 1)")

    def evaluate(self, window: RollingWindow) -> SLOStatus:
        counters = window.window_counters(self.window_s)
        total = counters.get(self.total, 0)
        bad = counters.get(self.bad, 0)
        ratio = bad / total if total else 0.0
        burn = ratio / self.max_ratio
        return SLOStatus(
            name=self.name, kind=self.kind, window_s=self.window_s,
            value=ratio, threshold=self.max_ratio, budget=self.max_ratio,
            burn=burn, ok=burn <= 1.0, samples=total)


def default_slos() -> list:
    """The shipped objectives (ISSUE 8): latency, availability, staleness."""
    return [
        LatencySLO("warm-get-p99", metric="http.latency", quantile=0.99,
                   threshold_s=0.005, window_s=60),
        RatioSLO("availability-99.9", bad="http.status.5xx",
                 total="http.requests", max_ratio=0.001, window_s=300),
        RatioSLO("staleness-1pct", bad="http.stale",
                 total="http.requests", max_ratio=0.01, window_s=300),
    ]


_WINDOW_UNITS = {"s": 1, "m": 60, "h": 3600}
_TIME_UNITS = {"us": 1e-6, "ms": 1e-3, "s": 1.0}

_LATENCY_RE = re.compile(
    r"^p(?P<q>\d+(?:\.\d+)?):(?P<metric>[\w.]+)"
    r"<=?(?P<value>\d+(?:\.\d+)?)(?P<unit>us|ms|s)$")
_RATIO_RE = re.compile(
    r"^ratio:(?P<bad>[\w.]+)/(?P<total>[\w.]+)"
    r"<=?(?P<value>\d+(?:\.\d+)?)(?P<pct>%?)$")
_AVAILABILITY_RE = re.compile(
    r"^availability>=?(?P<value>\d+(?:\.\d+)?)%$")


def _window(text: str, default_s: int = 300) -> int:
    if not text:
        return default_s
    match = re.fullmatch(r"(\d+)([smh])", text)
    if match is None:
        raise ValueError(f"bad SLO window {text!r} (want e.g. 1m, 90s)")
    return int(match.group(1)) * _WINDOW_UNITS[match.group(2)]


def parse_slo(spec: str):
    """One SLO from its ``--slo`` spec text (see module docstring)."""
    text = spec.strip()
    name = None
    if "=" in text.split("<")[0].split(">")[0]:
        name, _, text = text.partition("=")
        name = name.strip()
        text = text.strip()
    body, _, window_text = text.partition("@")
    window_s = _window(window_text.strip())

    match = _LATENCY_RE.match(body)
    if match is not None:
        quantile = float(match.group("q")) / 100.0
        threshold = float(match.group("value")) \
            * _TIME_UNITS[match.group("unit")]
        return LatencySLO(
            name or f"p{match.group('q')}-{match.group('metric')}",
            metric=match.group("metric"), quantile=quantile,
            threshold_s=threshold, window_s=window_s)

    match = _RATIO_RE.match(body)
    if match is not None:
        ratio = float(match.group("value"))
        if match.group("pct"):
            ratio /= 100.0
        return RatioSLO(
            name or f"ratio-{match.group('bad')}",
            bad=match.group("bad"), total=match.group("total"),
            max_ratio=ratio, window_s=window_s)

    match = _AVAILABILITY_RE.match(body)
    if match is not None:
        target = float(match.group("value")) / 100.0
        if not 0.0 < target < 1.0:
            raise ValueError(f"availability {spec!r} must be within "
                             "(0%, 100%) exclusive")
        return RatioSLO(
            name or f"availability-{match.group('value')}",
            bad="http.status.5xx", total="http.requests",
            max_ratio=1.0 - target, window_s=window_s)

    raise ValueError(
        f"unparseable SLO spec {spec!r}; expected forms: "
        "'p99:http.latency<5ms@1m', "
        "'ratio:http.stale/http.requests<1%@5m', "
        "'availability>=99.9%@15m'")
