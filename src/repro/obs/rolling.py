"""Always-on rolling telemetry: per-second buckets and quantile sketches.

The PR 3 :mod:`repro.obs.recorder` is a *profiler*: armed per run,
snapshotted after the fact, zero-overhead when disabled.  Production
operators need the opposite trade: a metric surface that is **always
on**, cheap enough to leave enabled at full request rate, and carries a
*time dimension* so "requests per second over the last minute" and
"p99 over the last five minutes" are answerable at any instant
(DESIGN.md §15).

Two pieces, both stdlib-only and import-free within the package:

* :class:`QuantileSketch` — a streaming histogram over log-spaced
  buckets (growth factor :data:`GAMMA`).  Recording is O(1): one
  ``log``, one dict increment.  Quantile queries return the upper bound
  of the bucket holding the requested order statistic, which bounds the
  relative error by one bucket: for the exact q-quantile ``x`` the
  estimate ``x̂`` satisfies ``x <= x̂ < GAMMA * x`` (documented bound,
  pinned by Hypothesis tests in ``tests/obs/test_rolling_properties``).
  Merging two sketches adds their bucket counts, so per-thread or
  per-window merges commute and lose nothing.
* :class:`RollingWindow` — a ring of per-second buckets (counters plus
  sketches), sized to the largest window it must answer.  The armed
  hot-path cost is a couple of dict ops under one short lock; windowed
  reads merge at *snapshot* time, never on the request path.  Memory is
  O(window): the ring overwrites slots in place, so a server up for a
  month holds exactly as many buckets as one up for twenty minutes.

The clock is injectable (seconds, monotonic by convention) so tests
advance time explicitly — no wall-clock reads are needed to exercise
rollover, skew, or reclaim behaviour.
"""

from __future__ import annotations

import math
import threading
import time

__all__ = [
    "GAMMA",
    "MIN_TRACKED",
    "QuantileSketch",
    "RollingWindow",
    "ShardedRollingWindow",
    "WINDOWS",
]

#: Per-bucket growth factor of the log-spaced sketch: one bucket spans
#: ``(GAMMA**(i-1), GAMMA**i]``, bounding quantile relative error at
#: ``GAMMA - 1`` (10%).
GAMMA = 1.1

#: Values at or below this (seconds) collapse into the zero bucket —
#: nothing the server times is faster than a nanosecond.
MIN_TRACKED = 1e-9

#: The standard reporting windows (seconds): 1m / 5m / 15m.
WINDOWS = (60, 300, 900)

_LOG_GAMMA = math.log(GAMMA)


class QuantileSketch:
    """A mergeable streaming histogram with bounded-error quantiles."""

    __slots__ = ("buckets", "zeros", "count", "total")

    def __init__(self) -> None:
        #: bucket index -> observation count; index ``i`` covers the
        #: value interval ``(GAMMA**(i-1), GAMMA**i]``.
        self.buckets: dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.total = 0.0

    @staticmethod
    def bucket_index(value: float) -> int:
        """The index of the bucket covering *value* (> MIN_TRACKED)."""
        return math.ceil(math.log(value) / _LOG_GAMMA)

    @staticmethod
    def bucket_upper(index: int) -> float:
        """The inclusive upper value bound of bucket *index*."""
        return GAMMA ** index

    def add(self, value: float, n: int = 1) -> None:
        """Record *value* *n* times (O(1): one log, one dict op)."""
        self.count += n
        self.total += value * n
        if value <= MIN_TRACKED:
            self.zeros += n
            return
        index = math.ceil(math.log(value) / _LOG_GAMMA)
        buckets = self.buckets
        buckets[index] = buckets.get(index, 0) + n

    def add_indexed(self, index: int | None, value: float) -> None:
        """:meth:`add` with the bucket index precomputed (None = zero).

        The per-request path feeds one observation into two sketches
        (cumulative and the current second's bucket); computing the
        ``log`` once and bumping both via this method halves the
        transcendental work.
        """
        self.count += 1
        self.total += value
        if index is None:
            self.zeros += 1
        else:
            buckets = self.buckets
            buckets[index] = buckets.get(index, 0) + 1

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold *other* into this sketch; merging commutes."""
        self.count += other.count
        self.total += other.total
        self.zeros += other.zeros
        buckets = self.buckets
        for index, n in other.buckets.items():
            buckets[index] = buckets.get(index, 0) + n
        return self

    def copy(self) -> "QuantileSketch":
        clone = QuantileSketch()
        clone.buckets = dict(self.buckets)
        clone.zeros = self.zeros
        clone.count = self.count
        clone.total = self.total
        return clone

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile estimate (upper bucket bound at that rank).

        Guarantee: with ``x`` the exact order statistic at rank
        ``ceil(q * count)``, the returned value lies in
        ``[x, GAMMA * x)`` — at most one bucket above, never below.
        Returns 0.0 for an empty sketch.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        if not self.count:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        if target <= self.zeros:
            return 0.0
        cumulative = self.zeros
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                return GAMMA ** index
        return GAMMA ** max(self.buckets)  # pragma: no cover (float slop)

    def fraction_above(self, threshold: float) -> float:
        """The fraction of observations strictly above *threshold*.

        Bucket-resolution approximation: observations sharing the
        threshold's bucket count as *not above* (their true values may
        sit either side), so the answer is exact to within one bucket's
        mass — the right direction for burn-rate alerts, which should
        not fire on values inside the measurement error.
        """
        if not self.count:
            return 0.0
        if threshold <= MIN_TRACKED:
            return (self.count - self.zeros) / self.count
        limit = math.ceil(math.log(threshold) / _LOG_GAMMA)
        above = sum(n for index, n in self.buckets.items() if index > limit)
        return above / self.count

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ascending.

        The Prometheus histogram shape: each pair says "this many
        observations were <= upper_bound"; the final implicit +Inf
        bucket is :attr:`count`.
        """
        pairs: list[tuple[float, int]] = []
        cumulative = self.zeros
        if self.zeros:
            pairs.append((MIN_TRACKED, cumulative))
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            pairs.append((GAMMA ** index, cumulative))
        return pairs

    def as_dict(self) -> dict:
        return {"count": self.count, "total": self.total,
                "mean": self.mean, "p50": self.quantile(0.5),
                "p99": self.quantile(0.99)}


class _Bucket:
    """One second's accumulation: counters plus named sketches."""

    __slots__ = ("second", "counters", "sketches")

    def __init__(self, second: int) -> None:
        self.second = second
        self.counters: dict[str, int] = {}
        self.sketches: dict[str, QuantileSketch] = {}


class _WindowReads:
    """Derived read-side views shared by plain and sharded windows."""

    def rate(self, name: str, window_s: int) -> float:
        """Counter *name* per second over the trailing window."""
        return self.window_counters(window_s).get(name, 0) / window_s

    def snapshot(self, windows: tuple[int, ...] = WINDOWS) -> dict:
        """A JSON-ready view: totals, windowed rates, and quantiles."""
        snap: dict = {
            "uptime_s": self.uptime_s(),
            "window_s": self.window_s,
            "totals": self.totals(),
            "windows": {},
        }
        for window_s in windows:
            window_s = min(window_s, self.window_s)
            entry = {"counters": self.window_counters(window_s),
                     "sketches": {}}
            for name in self.sketch_names():
                sketch = self.window_sketch(name, window_s)
                if sketch.count:
                    entry["sketches"][name] = sketch.as_dict()
            snap["windows"][str(window_s)] = entry
        return snap


class RollingWindow(_WindowReads):
    """Time-windowed counters and latency sketches over a bucket ring.

    * ``inc``/``observe`` are the armed hot path: one lock, a couple of
      dict ops.  Both also feed *cumulative* totals (monotonic since
      construction — the ``/metrics`` counter surface) so windowed
      rates and lifetime counters never disagree about the past.
    * Windowed reads (``window_counters`` / ``window_sketch``) merge
      only the buckets whose stamped second falls inside
      ``(now - window, now]``; a stale slot left from a clock jump is
      filtered by its stamp, never double-counted.
    * The ring is fixed at ``window_s`` slots; writing second ``t``
      claims slot ``t % window_s``, evicting whatever second lived
      there — reclaim is free and memory is O(window), not O(uptime).
    """

    def __init__(self, *, window_s: int = WINDOWS[-1],
                 clock=time.monotonic) -> None:
        if window_s < 1:
            raise ValueError("window_s must be at least one second")
        self.window_s = window_s
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: list[_Bucket | None] = [None] * window_s
        self._totals: dict[str, int] = {}
        self._total_sketches: dict[str, QuantileSketch] = {}
        # Writes accumulate here and flush into the ring/totals when the
        # second rolls over or a reader looks (see _flush_locked): the
        # per-request path then touches one small hot dict and one list
        # instead of six cold structures, which is what the telemetry
        # cost is actually made of at full request rate (cache misses,
        # not instruction count).
        self._pending: dict[str, int] = {}
        #: counter-name tuple -> request count; the fused request path
        #: (:meth:`record_hit`) bumps one entry per request instead of
        #: one per counter, and the flush fans the tuple back out.
        self._pending_hits: dict[tuple, int] = {}
        #: sketch name -> pending values; the lists are emptied in
        #: place at flush and reused, so a steady-state request adds
        #: one float to a hot list — no GC-tracked allocation at all.
        self._pending_obs: dict[str, list[float]] = {}
        self._pending_second: int | None = None
        self._started = clock()

    # -- recording (the armed hot path) ------------------------------------

    def _flush_locked(self) -> None:
        """Apply pending writes to totals/ring (lock held by caller).

        Amortisation point of the whole design: a second's worth of
        requests lands on the cumulative dicts, the ring bucket, and
        the sketches in one pass.  Readers call this first, so nothing
        is ever invisible or double-counted, and totals stay monotonic
        because pending data moves — it is never dropped or re-read.
        """
        second = self._pending_second
        if second is None:
            return
        self._pending_second = None
        slot = second % self.window_s
        bucket = self._ring[slot]
        if bucket is None or bucket.second != second:
            bucket = self._ring[slot] = _Bucket(second)
        totals = self._totals
        counters = bucket.counters
        pending = self._pending
        if pending:
            for name, n in pending.items():
                totals[name] = totals.get(name, 0) + n
                counters[name] = counters.get(name, 0) + n
            pending.clear()
        hits = self._pending_hits
        if hits:
            for names, count in hits.items():
                for name in names:
                    totals[name] = totals.get(name, 0) + count
                    counters[name] = counters.get(name, 0) + count
            hits.clear()
        for name, values in self._pending_obs.items():
            if not values:
                continue
            sketch = self._total_sketches.get(name)
            if sketch is None:
                sketch = self._total_sketches[name] = QuantileSketch()
            windowed = bucket.sketches.get(name)
            if windowed is None:
                windowed = bucket.sketches[name] = QuantileSketch()
            for value in values:
                if value <= MIN_TRACKED:
                    index = None
                else:
                    index = math.ceil(math.log(value) / _LOG_GAMMA)
                sketch.add_indexed(index, value)
                windowed.add_indexed(index, value)
            del values[:]

    def _pend(self) -> None:
        """Roll pending state to the current second (lock held)."""
        second = int(self._clock())
        if second != self._pending_second:
            self._flush_locked()
            self._pending_second = second

    def inc(self, name: str, n: int = 1) -> None:
        """Add *n* to counter *name* (cumulative and current second)."""
        with self._lock:
            self._pend()
            pending = self._pending
            pending[name] = pending.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record *value* into sketch *name* (cumulative and windowed)."""
        with self._lock:
            self._pend()
            values = self._pending_obs.get(name)
            if values is None:
                values = self._pending_obs[name] = []
            values.append(value)

    def record(self, counters: dict[str, int],
               observations: dict[str, float] | None = None) -> None:
        """Apply many counters and observations atomically.

        One lock acquisition, one clock read, and only *hot* memory for
        a whole request's worth of increments: everything lands in the
        pending dict/list this shard's writer touched a moment ago and
        flushes to the cold ring/sketch structures at most once per
        second.
        """
        with self._lock:
            self._pend()
            pending = self._pending
            for name, n in counters.items():
                pending[name] = pending.get(name, 0) + n
            if observations:
                obs = self._pending_obs
                for name, value in observations.items():
                    values = obs.get(name)
                    if values is None:
                        values = obs[name] = []
                    values.append(value)

    def record_hit(self, names: tuple, sized_name: str | None,
                   size: int, obs_name: str, obs_value: float) -> None:
        """:meth:`record` for the common single-request shape.

        *names* are counters incremented by one, *sized_name* (if any)
        by *size*, and *obs_value* lands in sketch *obs_name*.  The
        caller precomputes *names* once per (status, flags, model)
        combination, so the armed hot path skips building and
        iterating a scratch dict entirely — it is the fused form of
        what :meth:`repro.server.telemetry.ServerTelemetry.finish`
        used to assemble per request.  Because callers intern the
        names tuple, the whole counter side of a request is one dict
        bump here; the flush fans it out per name.
        """
        with self._lock:
            self._pend()
            hits = self._pending_hits
            hits[names] = hits.get(names, 0) + 1
            if sized_name is not None:
                pending = self._pending
                pending[sized_name] = pending.get(sized_name, 0) + size
            values = self._pending_obs.get(obs_name)
            if values is None:
                values = self._pending_obs[obs_name] = []
            values.append(obs_value)

    def shard_for_thread(self) -> "RollingWindow":
        """The window the current thread should write to (itself)."""
        return self

    # -- reading (snapshot time) -------------------------------------------

    def uptime_s(self) -> float:
        return self._clock() - self._started

    def totals(self) -> dict[str, int]:
        """Cumulative counters since construction (monotonic)."""
        with self._lock:
            self._flush_locked()
            return dict(self._totals)

    def total(self, name: str) -> int:
        with self._lock:
            self._flush_locked()
            return self._totals.get(name, 0)

    def total_sketch(self, name: str) -> QuantileSketch:
        """A copy of the cumulative sketch *name* (empty if unknown)."""
        with self._lock:
            self._flush_locked()
            sketch = self._total_sketches.get(name)
            return sketch.copy() if sketch is not None else QuantileSketch()

    def sketch_names(self) -> list[str]:
        with self._lock:
            self._flush_locked()
            return sorted(self._total_sketches)

    def _window_buckets(self, window_s: int) -> list[_Bucket]:
        """Buckets inside ``(now - window_s, now]`` (lock held)."""
        window_s = min(window_s, self.window_s)
        now = int(self._clock())
        low = now - window_s
        return [bucket for bucket in self._ring
                if bucket is not None and low < bucket.second <= now]

    def window_counters(self, window_s: int) -> dict[str, int]:
        """Summed counters over the trailing *window_s* seconds."""
        merged: dict[str, int] = {}
        with self._lock:
            self._flush_locked()
            for bucket in self._window_buckets(window_s):
                for name, n in bucket.counters.items():
                    merged[name] = merged.get(name, 0) + n
        return merged

    def window_sketch(self, name: str, window_s: int) -> QuantileSketch:
        """Sketch *name* merged over the trailing *window_s* seconds."""
        merged = QuantileSketch()
        with self._lock:
            self._flush_locked()
            for bucket in self._window_buckets(window_s):
                sketch = bucket.sketches.get(name)
                if sketch is not None:
                    merged.merge(sketch)
        return merged

    def series(self, name: str, seconds: int = 60) -> list[int]:
        """Per-second values of counter *name*, oldest to newest.

        Exactly *seconds* entries ending at the current second; seconds
        with no bucket (idle or reclaimed) read as zero.
        """
        seconds = min(seconds, self.window_s)
        with self._lock:
            self._flush_locked()
            now = int(self._clock())
            by_second = {bucket.second: bucket.counters.get(name, 0)
                         for bucket in self._ring if bucket is not None}
        return [by_second.get(second, 0)
                for second in range(now - seconds + 1, now + 1)]

    def bucket_count(self) -> int:
        """Occupied ring slots (bounded by ``window_s`` forever)."""
        with self._lock:
            self._flush_locked()
            return sum(1 for bucket in self._ring if bucket is not None)

    def absorb(self, other: "RollingWindow") -> None:
        """Fold *other* into this window (totals, sketches, buckets).

        Used to retire the shard of a finished thread: *other* must
        have no live writers and share this window's ``window_s``.
        Buckets merge second-by-second; where both rings hold the same
        second the counts add, where they disagree the newer second
        wins — exactly what the stamp filter would have kept.
        """
        if other.window_s != self.window_s:
            raise ValueError("cannot absorb a differently-sized window")
        with other._lock:
            other._flush_locked()
        with self._lock:
            self._flush_locked()
            totals = self._totals
            for name, n in other._totals.items():
                totals[name] = totals.get(name, 0) + n
            for name, sketch in other._total_sketches.items():
                mine = self._total_sketches.get(name)
                if mine is None:
                    self._total_sketches[name] = sketch.copy()
                else:
                    mine.merge(sketch)
            for bucket in other._ring:
                if bucket is None:
                    continue
                slot = bucket.second % self.window_s
                mine = self._ring[slot]
                if mine is None or mine.second < bucket.second:
                    fresh = _Bucket(bucket.second)
                    fresh.counters = dict(bucket.counters)
                    fresh.sketches = {name: sketch.copy()
                                      for name, sketch
                                      in bucket.sketches.items()}
                    self._ring[slot] = fresh
                elif mine.second == bucket.second:
                    counters = mine.counters
                    for name, n in bucket.counters.items():
                        counters[name] = counters.get(name, 0) + n
                    for name, sketch in bucket.sketches.items():
                        held = mine.sketches.get(name)
                        if held is None:
                            mine.sketches[name] = sketch.copy()
                        else:
                            held.merge(sketch)


class ShardedRollingWindow(_WindowReads):
    """A rolling window sharded per writer thread.

    A threaded server funnels every request through one lock when all
    handler threads share a single :class:`RollingWindow`; under a
    saturating closed loop the convoy on that lock costs more than the
    metric arithmetic it protects.  Here each thread records into its
    own private shard — an ordinary :class:`RollingWindow` whose lock
    is effectively uncontended — and the read side merges shards at
    snapshot time, which loses nothing because counter addition and
    sketch merge both commute.

    Shards belonging to finished threads are absorbed into a retired
    window the next time any thread registers a new shard, so memory
    is O(window x live threads), not O(window x threads ever started).
    """

    def __init__(self, *, window_s: int = WINDOWS[-1],
                 clock=time.monotonic) -> None:
        if window_s < 1:
            raise ValueError("window_s must be at least one second")
        self.window_s = window_s
        self._clock = clock
        self._local = threading.local()
        self._registry_lock = threading.Lock()
        self._shards: list[tuple[threading.Thread, RollingWindow]] = []
        self._retired = RollingWindow(window_s=window_s, clock=clock)
        self._started = clock()

    # -- recording (the armed hot path) ------------------------------------

    def _shard(self) -> RollingWindow:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = RollingWindow(window_s=self.window_s,
                                  clock=self._clock)
            with self._registry_lock:
                live = []
                for thread, existing in self._shards:
                    if thread.is_alive():
                        live.append((thread, existing))
                    else:
                        self._retired.absorb(existing)
                live.append((threading.current_thread(), shard))
                self._shards = live
            self._local.shard = shard
        return shard

    def inc(self, name: str, n: int = 1) -> None:
        self._shard().inc(name, n)

    def observe(self, name: str, value: float) -> None:
        self._shard().observe(name, value)

    def record(self, counters: dict[str, int],
               observations: dict[str, float] | None = None) -> None:
        self._shard().record(counters, observations)

    def record_hit(self, names: tuple, sized_name: str | None,
                   size: int, obs_name: str, obs_value: float) -> None:
        self._shard().record_hit(names, sized_name, size,
                                 obs_name, obs_value)

    def shard_for_thread(self) -> RollingWindow:
        """This thread's shard, for callers that cache it.

        The telemetry finish path resolves its shard once per thread
        (and re-resolves only if the window object changes) instead of
        paying the ``threading.local`` lookup per request.  Safe to
        hold: a live thread's shard is never retired, and retirement
        of dead threads' shards happens via absorb, which folds — it
        never invalidates.
        """
        return self._shard()

    # -- reading (merge the shards) ----------------------------------------

    def _views(self) -> list[RollingWindow]:
        with self._registry_lock:
            return [self._retired] + [shard for _, shard in self._shards]

    def uptime_s(self) -> float:
        return self._clock() - self._started

    def totals(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for view in self._views():
            for name, n in view.totals().items():
                merged[name] = merged.get(name, 0) + n
        return merged

    def total(self, name: str) -> int:
        return sum(view.total(name) for view in self._views())

    def total_sketch(self, name: str) -> QuantileSketch:
        merged = QuantileSketch()
        for view in self._views():
            merged.merge(view.total_sketch(name))
        return merged

    def sketch_names(self) -> list[str]:
        names: set[str] = set()
        for view in self._views():
            names.update(view.sketch_names())
        return sorted(names)

    def window_counters(self, window_s: int) -> dict[str, int]:
        merged: dict[str, int] = {}
        for view in self._views():
            for name, n in view.window_counters(window_s).items():
                merged[name] = merged.get(name, 0) + n
        return merged

    def window_sketch(self, name: str, window_s: int) -> QuantileSketch:
        merged = QuantileSketch()
        for view in self._views():
            merged.merge(view.window_sketch(name, window_s))
        return merged

    def series(self, name: str, seconds: int = 60) -> list[int]:
        seconds = min(seconds, self.window_s)
        merged = [0] * seconds
        for view in self._views():
            for index, value in enumerate(view.series(name, seconds)):
                merged[index] += value
        return merged

    def bucket_count(self) -> int:
        return sum(view.bucket_count() for view in self._views())

    def shard_count(self) -> int:
        """Live shards plus the retired accumulator (introspection)."""
        with self._registry_lock:
            return len(self._shards) + 1
