"""Sinks for recorded data: schema-versioned JSON and a text report.

The trace document is a stable, versioned schema (``repro-obs/1``) so
downstream tooling (the CI artifact consumers, the HTML profile page)
can rely on its shape::

    {
      "schema": "repro-obs/1",
      "counters": {"dom.order_key.hit": 1234, ...},
      "histograms": {"xslt.rule:mode=...": {count,total,min,max,mean}},
      "spans": [{"path", "name", "tags", "start_s", "duration_s"}, ...],
      "span_aggregates": {"publish.multi_page/publish.page": {...}},
      "caches": {"xpath.parse": {hits, misses, currsize, maxsize}, ...},
      "dropped_spans": 0,
      "threads": 1
    }

``caches`` is gathered live from the engine's compile caches
(``parse_xpath`` / ``compile_pattern`` / ``compile_avt`` lru caches and
the publisher's stylesheet/transformer caches); those count process-wide
regardless of whether the recorder was enabled.
"""

from __future__ import annotations

import json

from .recorder import RECORDER, Snapshot

__all__ = [
    "SCHEMA_VERSION",
    "cache_stats",
    "build_trace",
    "trace_json",
    "write_trace",
    "text_report",
]

#: Bump only with a migration note in DESIGN.md §10.
SCHEMA_VERSION = "repro-obs/1"


def cache_stats() -> dict[str, dict]:
    """Hit/miss/size statistics for every engine-level cache.

    Imports lazily so the stdlib-only recorder module stays importable
    from the instrumented hot paths without cycles.
    """
    from ..web.publisher import publisher_cache_info
    from ..xpath.parser import parse_xpath
    from ..xslt.avt import compile_avt
    from ..xslt.patterns import compile_pattern

    stats: dict[str, dict] = {}
    for name, cached in (("xpath.parse", parse_xpath),
                         ("xslt.pattern", compile_pattern),
                         ("xslt.avt", compile_avt)):
        info = cached.cache_info()
        stats[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "currsize": info.currsize,
            "maxsize": info.maxsize,
        }
    stats.update(publisher_cache_info())
    return stats


def build_trace(snapshot: Snapshot | None = None, *,
                include_caches: bool = True) -> dict:
    """The versioned trace document for *snapshot* (default: live)."""
    if snapshot is None:
        snapshot = RECORDER.snapshot()
    trace: dict = {
        "schema": SCHEMA_VERSION,
        "counters": snapshot.counters,
        "histograms": snapshot.histograms,
        "spans": snapshot.spans,
        "span_aggregates": snapshot.span_aggregates,
        "caches": cache_stats() if include_caches else {},
        "dropped_spans": snapshot.dropped_spans,
        "threads": snapshot.threads,
    }
    return trace


def trace_json(trace: dict | None = None) -> str:
    """Serialize *trace* (default: a fresh :func:`build_trace`)."""
    if trace is None:
        trace = build_trace()
    return json.dumps(trace, indent=1, sort_keys=True) + "\n"


def write_trace(path: str, trace: dict | None = None) -> str:
    """Write the JSON trace to *path*; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_json(trace))
    return path


def _rate(hits: int, misses: int) -> str:
    total = hits + misses
    if not total:
        return "n/a"
    return f"{100.0 * hits / total:.1f}%"


def text_report(trace: dict | None = None) -> str:
    """A plain-text profile: spans, top counters, cache hit rates."""
    if trace is None:
        trace = build_trace()
    lines: list[str] = ["== repro observability profile =="]

    aggregates = trace.get("span_aggregates", {})
    if aggregates:
        lines.append("")
        lines.append("-- spans (cumulative) --")
        width = max(len(path) for path in aggregates)
        for path in sorted(
                aggregates, key=lambda p: -aggregates[p]["total"]):
            stats = aggregates[path]
            lines.append(
                f"{path:<{width}}  n={stats['count']:<6d} "
                f"total={stats['total'] * 1000:9.2f}ms "
                f"mean={stats['mean'] * 1000:8.3f}ms")

    counters = trace.get("counters", {})
    if counters:
        lines.append("")
        lines.append("-- counters --")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"{name:<{width}}  {counters[name]}")

    histograms = trace.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("-- histograms --")
        for name in sorted(histograms):
            stats = histograms[name]
            lines.append(
                f"{name}  n={stats['count']} total={stats['total']:.6f} "
                f"mean={stats['mean']:.6f}")

    caches = trace.get("caches", {})
    if caches:
        lines.append("")
        lines.append("-- caches --")
        width = max(len(name) for name in caches)
        for name in sorted(caches):
            info = caches[name]
            lines.append(
                f"{name:<{width}}  hits={info['hits']} "
                f"misses={info['misses']} size={info['currsize']} "
                f"hit-rate={_rate(info['hits'], info['misses'])}")

    if trace.get("dropped_spans"):
        lines.append("")
        lines.append(f"({trace['dropped_spans']} spans dropped)")
    lines.append("")
    return "\n".join(lines)
