"""The published HTML profile page.

In the spirit of the paper's web-oriented presentation layer, the
profile itself is published *through the same XSLT pipeline it
measures*: :func:`profile_document` lowers a trace dict into a
``<profile>`` XML tree and :data:`PROFILE_XSL` renders it to an HTML
page that the publisher drops into the :class:`~repro.web.publisher.Site`
next to the generated model pages (sharing their ``gold.css``).

Rendering happens *after* the trace is built, so numbers shown on the
page are a stable snapshot even though the rendering transform itself
runs through instrumented code.
"""

from __future__ import annotations

from ..xml.dom import Document, Element
from .export import build_trace

__all__ = ["PROFILE_XSL", "profile_document", "render_profile_html"]

PROFILE_XSL = """<?xml version="1.0"?>
<xsl:stylesheet version="1.0"
    xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:output method="html" indent="no"/>

  <xsl:template match="/profile">
    <html>
      <head>
        <title>Engine profile</title>
        <link rel="stylesheet" type="text/css" href="gold.css"/>
      </head>
      <body bgcolor="mintcream">
        <h1>Engine profile</h1>
        <p>
          <font size="2">schema <xsl:value-of select="@schema"/>,
          <xsl:value-of select="@threads"/> thread(s),
          <xsl:value-of select="count(spans/span)"/> span paths,
          <xsl:value-of select="count(counters/counter)"/> counters</font>
        </p>

        <xsl:if test="spans/span">
          <h2>Spans</h2>
          <table border="1" cellspacing="0">
            <tr bgcolor="#C0C0C0">
              <th>path</th><th>count</th>
              <th>total (ms)</th><th>mean (ms)</th>
            </tr>
            <xsl:for-each select="spans/span">
              <xsl:sort select="@total-ms" data-type="number"
                        order="descending"/>
              <tr>
                <td><font size="2"><xsl:value-of select="@path"/></font></td>
                <td align="right"><font size="2">
                  <xsl:value-of select="@count"/></font></td>
                <td align="right"><font size="2">
                  <xsl:value-of select="@total-ms"/></font></td>
                <td align="right"><font size="2">
                  <xsl:value-of select="@mean-ms"/></font></td>
              </tr>
            </xsl:for-each>
          </table>
        </xsl:if>

        <xsl:if test="caches/cache">
          <h2>Cache hit rates</h2>
          <table border="1" cellspacing="0">
            <tr bgcolor="#C0C0C0">
              <th>cache</th><th>hits</th><th>misses</th>
              <th>size</th><th>hit rate</th>
            </tr>
            <xsl:for-each select="caches/cache">
              <tr>
                <td><font size="2"><xsl:value-of select="@name"/></font></td>
                <td align="right"><font size="2">
                  <xsl:value-of select="@hits"/></font></td>
                <td align="right"><font size="2">
                  <xsl:value-of select="@misses"/></font></td>
                <td align="right"><font size="2">
                  <xsl:value-of select="@size"/></font></td>
                <td align="right"><font size="2">
                  <xsl:value-of select="@rate"/></font></td>
              </tr>
            </xsl:for-each>
          </table>
        </xsl:if>

        <xsl:if test="counters/counter">
          <h2>Counters</h2>
          <table border="1" cellspacing="0">
            <tr bgcolor="#C0C0C0"><th>counter</th><th>value</th></tr>
            <xsl:for-each select="counters/counter">
              <tr>
                <td><font size="2"><xsl:value-of select="@name"/></font></td>
                <td align="right"><font size="2">
                  <xsl:value-of select="@value"/></font></td>
              </tr>
            </xsl:for-each>
          </table>
        </xsl:if>

        <xsl:if test="histograms/histogram">
          <h2>Histograms</h2>
          <table border="1" cellspacing="0">
            <tr bgcolor="#C0C0C0">
              <th>name</th><th>count</th>
              <th>total (ms)</th><th>mean (ms)</th>
            </tr>
            <xsl:for-each select="histograms/histogram">
              <xsl:sort select="@total-ms" data-type="number"
                        order="descending"/>
              <tr>
                <td><font size="2"><xsl:value-of select="@name"/></font></td>
                <td align="right"><font size="2">
                  <xsl:value-of select="@count"/></font></td>
                <td align="right"><font size="2">
                  <xsl:value-of select="@total-ms"/></font></td>
                <td align="right"><font size="2">
                  <xsl:value-of select="@mean-ms"/></font></td>
              </tr>
            </xsl:for-each>
          </table>
        </xsl:if>
      </body>
    </html>
  </xsl:template>
</xsl:stylesheet>
"""


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.3f}"


def profile_document(trace: dict | None = None) -> Document:
    """Lower a trace dict into the ``<profile>`` XML tree."""
    if trace is None:
        trace = build_trace()
    document = Document()
    profile = document.append_child(Element("profile"))
    profile.set_attribute("schema", str(trace.get("schema", "")))
    profile.set_attribute("threads", str(trace.get("threads", 0)))
    profile.set_attribute("dropped", str(trace.get("dropped_spans", 0)))

    spans = profile.append_child(Element("spans"))
    for path, stats in trace.get("span_aggregates", {}).items():
        entry = spans.append_child(Element("span"))
        entry.set_attribute("path", path)
        entry.set_attribute("count", str(stats["count"]))
        entry.set_attribute("total-ms", _ms(stats["total"]))
        entry.set_attribute("mean-ms", _ms(stats["mean"]))

    counters = profile.append_child(Element("counters"))
    for name, value in trace.get("counters", {}).items():
        entry = counters.append_child(Element("counter"))
        entry.set_attribute("name", name)
        entry.set_attribute("value", str(value))

    histograms = profile.append_child(Element("histograms"))
    for name, stats in trace.get("histograms", {}).items():
        entry = histograms.append_child(Element("histogram"))
        entry.set_attribute("name", name)
        entry.set_attribute("count", str(stats["count"]))
        entry.set_attribute("total-ms", _ms(stats["total"]))
        entry.set_attribute("mean-ms", _ms(stats["mean"]))

    caches = profile.append_child(Element("caches"))
    for name, info in trace.get("caches", {}).items():
        hits, misses = info["hits"], info["misses"]
        total = hits + misses
        entry = caches.append_child(Element("cache"))
        entry.set_attribute("name", name)
        entry.set_attribute("hits", str(hits))
        entry.set_attribute("misses", str(misses))
        entry.set_attribute("size", str(info["currsize"]))
        entry.set_attribute(
            "rate", f"{100.0 * hits / total:.1f}%" if total else "n/a")
    return document


_PROFILE_TRANSFORMER = None


def render_profile_html(trace: dict | None = None) -> str:
    """Render the HTML profile page for *trace* via the XSLT engine."""
    global _PROFILE_TRANSFORMER
    from ..xslt import Transformer, compile_stylesheet

    if _PROFILE_TRANSFORMER is None:
        _PROFILE_TRANSFORMER = Transformer(compile_stylesheet(PROFILE_XSL))
    result = _PROFILE_TRANSFORMER.transform(profile_document(trace))
    return result.serialize()
