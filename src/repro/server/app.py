"""The model-repository application: routing, REST semantics, caching.

Transport-agnostic on purpose: :meth:`ModelRepositoryApp.handle` maps a
``(method, path, headers, body)`` request onto a :class:`Response`, so
the whole HTTP surface is unit-testable without opening a socket (the
socket layer is :mod:`repro.server.httpd`).

Routes (paper §4–§6 over the web, DESIGN.md §11):

======================================  =====================================
``GET    /``                            service index (JSON)
``GET    /models``                      model listing (JSON)
``PUT    /models/<name>``               upload; XSD-validated, 422 on errors
``GET    /models/<name>``               the raw XML document (ETag/304)
``DELETE /models/<name>``               remove model + its cached sites
``GET    /site/<name>/``                published multi-page site, index.html
``GET    /site/<name>/<page>``          any page; ``?variant=single`` for §4's
                                        XSLT 1.0 one-page pipeline
``GET    /bundle/<name>/``              client-bundle file list (JSON)
``GET    /bundle/<name>/<file>``        §6 browser-side bundle (XML + XSL)
``GET    /health/<model>``              link-check report for the built site
``GET|POST /olap/<name>/query``         slice/dice/roll-up query (§16);
                                        ``?format=xml`` for the XSLT
                                        rendering
``GET    /olap/<name>/schema``          the queryable surface (JSON)
``GET    /olap/<name>/stats``           aggregate-cache counters (JSON)
``GET    /stats``                       cache + request counters (JSON)
``GET    /metrics``                     Prometheus text exposition
``GET    /dashboard``                   live ops page (HTML, via XSLT)
======================================  =====================================

Every published resource is served with a strong ETag (SHA-256 of the
bytes on the wire) and honours ``If-None-Match`` with ``304 Not
Modified``; Content-Type (with charset) follows the file extension.

Every response additionally carries an ``X-Goldcase-Request-Id``
header (DESIGN.md §15): minted per request, or adopted from the
client's header so one logical request keeps its identity across
retries.  The telemetry layer brackets :meth:`ModelRepositoryApp
.handle` and is on by default; ``GOLDCASE_NO_TELEMETRY=1`` disables it.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlparse

from ..faults import FAULTS, FaultError
from ..obs.recorder import RECORDER as _REC
from ..olap.service import (
    OlapService,
    QueryError,
    QueryExecutionError,
    QueryOverloadError,
    RESULT_FORMATS,
    parse_query,
    resolve_query,
)
from .cache import (
    CacheOverloadError,
    SiteBuildError,
    SiteCache,
    SiteEntry,
    VARIANTS,
)
from .store import ModelStore, ModelStoreError
from .telemetry import ServerTelemetry, current_context, mark, mark_model

__all__ = ["ModelRepositoryApp", "Response", "CONTENT_TYPES",
           "METRICS_CONTENT_TYPE", "REQUEST_ID_HEADER"]

#: The Prometheus text exposition format version served by /metrics.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: The request-id header, on every response and honoured on requests.
REQUEST_ID_HEADER = "X-Goldcase-Request-Id"

#: Content types per served extension (charset explicit: the paper's
#: HTML carries accented Spanish section names).
CONTENT_TYPES = {
    ".html": "text/html; charset=utf-8",
    ".css": "text/css; charset=utf-8",
    ".xml": "application/xml; charset=utf-8",
    ".xsl": "application/xslt+xml; charset=utf-8",
    ".xsd": "application/xml; charset=utf-8",
    ".json": "application/json; charset=utf-8",
    ".txt": "text/plain; charset=utf-8",
}


@dataclass
class Response:
    """One HTTP response: status, headers, body bytes."""

    status: int
    body: bytes = b""
    headers: list[tuple[str, str]] = field(default_factory=list)

    def header(self, name: str) -> str | None:
        """The first header value named *name* (case-insensitive)."""
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return None

    @property
    def json(self):
        """The body decoded as JSON (raises on non-JSON bodies)."""
        return json.loads(self.body.decode("utf-8"))


def _json_response(status: int, payload, *,
                   extra: list[tuple[str, str]] | None = None) -> Response:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n") \
        .encode("utf-8")
    headers = [("Content-Type", CONTENT_TYPES[".json"])]
    headers.extend(extra or [])
    return Response(status, body, headers)


def _error(status: int, message: str, *, kind: str = "error",
           issues: list[dict] | None = None) -> Response:
    payload = {"error": message, "kind": kind}
    if issues is not None:
        payload["issues"] = issues
    return _json_response(status, payload)


def _content_type(filename: str) -> str:
    dot = filename.rfind(".")
    extension = filename[dot:] if dot >= 0 else ""
    return CONTENT_TYPES.get(extension, "application/octet-stream")


def _etag_matches(header_value: str, etag: str) -> bool:
    """RFC 9110 §13.1.2 If-None-Match against one strong ETag."""
    if header_value.strip() == "*":
        return True
    candidates = [item.strip() for item in header_value.split(",")]
    # A weak validator (W/"...") still matches for GET ("weak
    # comparison"); strip the weakness prefix before comparing.
    return any(
        candidate.removeprefix("W/") == etag for candidate in candidates)


class ModelRepositoryApp:
    """Routes repository requests onto the store and the site cache."""

    def __init__(self, store: ModelStore | None = None,
                 cache: SiteCache | None = None,
                 telemetry: ServerTelemetry | None = None,
                 olap: OlapService | None = None, *,
                 worker_id: int | None = None,
                 fleet=None,
                 prebuild=None) -> None:
        self.store = store if store is not None else ModelStore()
        self.cache = cache if cache is not None else SiteCache()
        self.telemetry = telemetry if telemetry is not None \
            else ServerTelemetry()
        self.olap = olap if olap is not None else OlapService()
        #: Pre-fork identity (DESIGN.md §17).  When set, every /metrics
        #: sample carries a ``worker`` label and /stats reports
        #: ``{"worker": {"id", "pid"}}`` so scrapes through the shared
        #: port stay attributable to the process that answered them.
        self.worker_id = worker_id
        #: Optional :class:`repro.server.buildstore.BuildStore` used
        #: only for its fleet snapshots: /metrics appends the
        #: supervisor-aggregate series and /stats a ``fleet`` block.
        self.fleet = fleet
        #: Optional callable(name) enqueueing a background pre-build of
        #: the freshly PUT model (the supervisor's build pool); failures
        #: are swallowed — the request path rebuilds on demand anyway.
        self._prebuild = prebuild
        self._stats_lock = threading.Lock()
        self._requests = {"total": 0, "not_modified": 0}

    def request_count(self) -> int:
        """Requests this app instance has handled (fleet snapshots)."""
        with self._stats_lock:
            return self._requests["total"]

    # -- entry point -------------------------------------------------------

    def handle(self, method: str, path: str,
               headers: dict[str, str] | None = None,
               body: bytes = b"") -> Response:
        """Serve one request; never raises for client-visible errors."""
        headers = {key.lower(): value
                   for key, value in (headers or {}).items()}
        parsed = urlparse(path)
        segments = [unquote(part)
                    for part in parsed.path.split("/") if part]
        query_lists = parse_qs(parsed.query)
        query = {key: values[-1] for key, values in query_lists.items()}
        with self._stats_lock:
            self._requests["total"] += 1
        if _REC.enabled:
            _REC.count("server.request")
        ctx = self.telemetry.begin(
            method, parsed.path,
            client_id=headers.get(REQUEST_ID_HEADER.lower()))
        # HEAD routes exactly like GET; the transport drops the body.
        routed = "GET" if method == "HEAD" else method
        try:
            with _REC.span("server.request", method=method,
                           path=parsed.path):
                try:
                    response = self._route(routed, segments, query,
                                           query_lists, headers, body)
                except FaultError as exc:
                    # An injected fault that no degradation path absorbed
                    # (store.put, xsd.validate on upload, ...): a clean 500
                    # instead of a handler-thread traceback.
                    response = _error(500, str(exc), kind="fault")
                except (CacheOverloadError, QueryOverloadError) as exc:
                    response = self._shed(exc)
                except SiteBuildError as exc:
                    response = _error(
                        500, f"site build failed: {exc.cause}", kind="build")
                except QueryExecutionError as exc:
                    response = _error(
                        500, f"query execution failed: {exc.cause}",
                        kind="olap")
        except BaseException:
            # Whatever escapes (a transport bug, KeyboardInterrupt) must
            # not leave a stale context pinned to this pooled thread.
            if ctx is not None:
                self.telemetry.finish(ctx, 500, 0)
            raise
        if response.status == 304:
            with self._stats_lock:
                self._requests["not_modified"] += 1
            if _REC.enabled:
                _REC.count("server.not_modified")
            mark("not_modified")
        if ctx is not None:
            response.headers.append((REQUEST_ID_HEADER, ctx.request_id))
            self.telemetry.finish(ctx, response.status, len(response.body))
        return response

    # -- routing -----------------------------------------------------------

    def _route(self, method: str, segments: list[str], query: dict,
               query_lists: dict, headers: dict[str, str],
               body: bytes) -> Response:
        if not segments:
            if method != "GET":
                return _error(405, "method not allowed")
            return self._index()
        head, rest = segments[0], segments[1:]
        if head == "models":
            return self._models(method, rest, headers, body)
        if head == "olap":
            return self._olap(method, rest, query, query_lists,
                              headers, body)
        if head == "site":
            if method != "GET":
                return _error(405, "method not allowed")
            return self._site(rest, query, headers)
        if head == "bundle":
            if method != "GET":
                return _error(405, "method not allowed")
            return self._bundle(rest, headers)
        if head == "health":
            if method != "GET":
                return _error(405, "method not allowed")
            return self._health(rest, query)
        if head == "stats":
            if method != "GET":
                return _error(405, "method not allowed")
            return self._stats()
        if head == "metrics":
            if method != "GET":
                return _error(405, "method not allowed")
            return self._metrics()
        if head == "dashboard":
            if method != "GET":
                return _error(405, "method not allowed")
            return self._dashboard()
        return _error(404, f"no such endpoint: /{head}")

    def _index(self) -> Response:
        return _json_response(200, {
            "service": "goldcase model repository",
            "endpoints": [
                "GET /models", "PUT /models/<name>", "GET /models/<name>",
                "DELETE /models/<name>", "GET /site/<name>/<page>",
                "GET /bundle/<name>/<file>", "GET /health/<name>",
                "GET|POST /olap/<name>/query", "GET /olap/<name>/schema",
                "GET /olap/<name>/stats",
                "GET /stats", "GET /metrics", "GET /dashboard"],
            "models": self.store.names(),
        })

    # -- /models -----------------------------------------------------------

    def _models(self, method: str, rest: list[str],
                headers: dict[str, str], body: bytes) -> Response:
        if not rest:
            if method != "GET":
                return _error(405, "method not allowed")
            return _json_response(200, {"models": self.store.listing()})
        if len(rest) != 1:
            return _error(404, "models takes a single name segment")
        name = rest[0]
        if method == "PUT":
            return self._put_model(name, body)
        if method == "GET":
            return self._get_model(name, headers)
        if method == "DELETE":
            return self._delete_model(name)
        return _error(405, "method not allowed")

    def _put_model(self, name: str, body: bytes) -> Response:
        if not body:
            return _error(400, "empty request body", kind="parse")
        mark_model(name)
        try:
            record, created = self.store.put(name, body)
        except ModelStoreError as exc:
            status = 400 if exc.kind in ("name", "parse") else 422
            return _error(status, f"model rejected ({exc.kind})",
                          kind=exc.kind, issues=exc.issues)
        if self._prebuild is not None:
            try:
                self._prebuild(record.name)
            except Exception:
                pass  # warming is best-effort; requests build on demand
        return _json_response(
            201 if created else 200,
            {"stored": record.summary(), "created": created},
            extra=[("ETag", record.etag),
                   ("Location", f"/models/{record.name}")])

    def _get_model(self, name: str,
                   headers: dict[str, str]) -> Response:
        record = self.store.get(name)
        if record is None:
            return _error(404, f"no model named {name!r}")
        mark_model(name)
        etag = record.etag
        if self._not_modified(headers, etag):
            return Response(304, b"", [("ETag", etag)])
        return Response(200, record.xml_bytes, [
            ("Content-Type", CONTENT_TYPES[".xml"]),
            ("ETag", etag)])

    def _delete_model(self, name: str) -> Response:
        if not self.store.delete(name):
            return _error(404, f"no model named {name!r}")
        self.cache.invalidate(name)
        self.olap.invalidate(name)
        return _json_response(200, {"deleted": name})

    # -- the OLAP query service (DESIGN.md §16) ----------------------------

    def _olap(self, method: str, rest: list[str], query: dict,
              query_lists: dict, headers: dict[str, str],
              body: bytes) -> Response:
        if len(rest) != 2 or rest[1] not in ("query", "schema", "stats"):
            return _error(404,
                          "usage: /olap/<model>/{query|schema|stats}")
        name, action = rest
        record = self.store.get(name)
        if record is None:
            return _error(404, f"no model named {name!r}")
        mark_model(name)
        if action == "query":
            if method not in ("GET", "POST"):
                return _error(405, "method not allowed")
            return self._olap_query(method, record, query, query_lists,
                                    headers, body)
        if method != "GET":
            return _error(405, "method not allowed")
        if action == "schema":
            payload = self.olap.schema_payload(record.model)
            payload["content_hash"] = record.content_hash
            response = _json_response(200, payload)
            etag = f'"{record.content_hash}-olap-schema"'
            if self._not_modified(headers, etag):
                return Response(304, b"", [("ETag", etag)])
            response.headers.append(("ETag", etag))
            return response
        return _json_response(200, {
            "model": record.name,
            "content_hash": record.content_hash,
            **self.olap.stats(),
        })

    def _olap_query(self, method: str, record, query: dict,
                    query_lists: dict, headers: dict[str, str],
                    body: bytes) -> Response:
        """Parse, resolve, materialize, render — degrading like /site.

        GET reads the query from URL parameters (repeat ``slice=`` for
        several predicates); POST reads the same vocabulary from a JSON
        body.  ``format`` selects the rendering and is not part of the
        canonical query key — both renderings belong to one
        materialization.
        """
        fmt = query.get("format", "json")
        if fmt not in RESULT_FORMATS:
            return _error(400, f"unknown format {fmt!r} (expected one "
                               f"of {list(RESULT_FORMATS)})")
        if method == "POST":
            try:
                params = json.loads(body.decode("utf-8")) \
                    if body else None
            except (UnicodeDecodeError, ValueError) as exc:
                return _error(400, f"unreadable JSON body: {exc}",
                              kind="form")
            if not isinstance(params, dict):
                return _error(400, "the POST body must be a JSON "
                                   "object", kind="form")
        else:
            params = {key: values for key, values in query_lists.items()
                      if key != "format"}
        try:
            spec = resolve_query(parse_query(params), record.model)
        except QueryError as exc:
            status = 400 if exc.kind == "form" else 422
            return _error(status, f"query rejected ({exc.kind})",
                          kind=exc.kind, issues=exc.issues)
        with _REC.span("olap.query", model=record.name):
            entry, outcome = self.olap.execute(
                record.name, record.content_hash, record.model, spec)
        mark({"hit": "olap_hit", "executed": "olap_executed",
              "coalesced": "olap_coalesced",
              "stale": "stale_served"}[outcome])
        stale = entry.content_hash != record.content_hash
        etag = entry.etags[fmt]
        if self._not_modified(headers, etag):
            return Response(304, b"", [("ETag", etag)])
        response = Response(200, entry.renderings[fmt], [
            ("Content-Type", CONTENT_TYPES[f".{fmt}"]),
            ("ETag", etag),
            ("Cache-Control", "no-cache"),
            ("X-Goldcase-Olap", outcome),
            ("X-Goldcase-Query-Key", entry.query_key)])
        if stale:
            response.headers.append(
                ("Warning", '110 goldcase "stale content: query '
                            'execution failed, serving previous '
                            'materialization"'))
            response.headers.append(("X-Goldcase-Stale", "true"))
        return response

    # -- published sites ---------------------------------------------------

    @staticmethod
    def _shed(exc) -> Response:
        """The overload response: 503 with a Retry-After the
        :class:`repro.web.client.RepositoryClient` backoff honours."""
        response = _error(503, str(exc), kind="overload")
        response.headers.append(("Retry-After", str(exc.retry_after_s)))
        return response

    def _entry_for(self, name: str, variant: str) -> tuple[
            SiteEntry | None, bool, Response | None]:
        """``(entry, stale, failure)`` for one model variant.

        *stale* is True when the cache degraded to the previous build
        (its content hash no longer matches the record's — the rebuild
        failed).  Overload and no-stale-fallback build failures
        propagate as exceptions and are mapped in :meth:`handle`.
        """
        record = self.store.get(name)
        if record is None:
            return None, False, _error(404, f"no model named {name!r}")
        mark_model(name)
        if variant not in VARIANTS:
            return None, False, _error(
                400, f"unknown variant {variant!r} "
                     f"(expected one of {list(VARIANTS)})")
        entry = self.cache.entry(record, variant)
        return entry, entry.content_hash != record.content_hash, None

    def _site(self, rest: list[str], query: dict,
              headers: dict[str, str]) -> Response:
        if not rest:
            return _error(404, "usage: /site/<model>/<page>")
        name, page_parts = rest[0], rest[1:]
        page = "/".join(page_parts) or "index.html"
        variant = query.get("variant", "multi")
        if variant == "bundle":
            return _error(400, "bundles are served from /bundle/<name>/")
        entry, stale, failure = self._entry_for(name, variant)
        if failure is not None:
            return failure
        return self._serve_page(entry, page, headers, stale=stale)

    def _bundle(self, rest: list[str],
                headers: dict[str, str]) -> Response:
        if not rest:
            return _error(404, "usage: /bundle/<model>/<file>")
        name, file_parts = rest[0], rest[1:]
        entry, stale, failure = self._entry_for(name, "bundle")
        if failure is not None:
            return failure
        filename = "/".join(file_parts)
        if not filename:
            return _json_response(200, {
                "model": name, "files": sorted(entry.pages),
                "hint": "open model.xml in an XSLT-capable browser "
                        "(paper §6)"})
        return self._serve_page(entry, filename, headers, stale=stale)

    def _serve_page(self, entry: SiteEntry, page: str,
                    headers: dict[str, str], *,
                    stale: bool = False) -> Response:
        data = entry.pages.get(page)
        if data is None:
            return _error(404, f"no page {page!r} in {entry.name} "
                               f"({entry.variant}); available: "
                               f"{sorted(entry.pages)}")
        etag = entry.etags[page]
        if self._not_modified(headers, etag):
            return Response(304, b"", [("ETag", etag)])
        response = Response(200, data, [
            ("Content-Type", _content_type(page)),
            ("ETag", etag),
            ("Cache-Control", "no-cache")])
        if stale:
            # Degraded mode is explicit on the wire: the RFC 9111
            # stale-while-degraded warning plus a machine-checkable
            # marker the chaos runner keys on.
            response.headers.append(
                ("Warning", '110 goldcase "stale content: rebuild '
                            'failed, serving previous build"'))
            response.headers.append(("X-Goldcase-Stale", "true"))
        return response

    @staticmethod
    def _not_modified(headers: dict[str, str], etag: str) -> bool:
        candidate = headers.get("if-none-match")
        return candidate is not None and _etag_matches(candidate, etag)

    # -- health + stats ----------------------------------------------------

    def _health(self, rest: list[str], query: dict) -> Response:
        if len(rest) != 1:
            return _error(404, "usage: /health/<model>")
        variant = query.get("variant", "multi")
        if variant == "bundle":
            return _error(400, "bundles have no link graph to check")
        entry, stale, failure = self._entry_for(rest[0], variant)
        if failure is not None:
            return failure
        report = entry.link_report
        ok = (report is not None and report.ok) and not stale
        payload = {
            "model": entry.name,
            "variant": entry.variant,
            "content_hash": entry.content_hash,
            "ok": ok,
            "stale": stale,
            "last_build_error": self.cache.build_error(
                entry.name, entry.variant),
            "pages": len(entry.pages),
            "total_links": report.total_links if report else 0,
            "broken_pages": [list(pair) for pair in report.broken_pages]
            if report else [],
            "broken_anchors": [list(pair) for pair in report.broken_anchors]
            if report else [],
            "orphans": list(report.orphans) if report else [],
        }
        return _json_response(200 if ok else 503, payload)

    def _engine_caches(self) -> dict[str, dict]:
        """Every engine-level cache's hit/miss/size view, by name.

        The PR 6/7 caches (compiled transformers, publisher compile
        caches, xpath/pattern/AVT memoisation) come from
        :func:`repro.obs.cache_stats`; the site cache's dependency-index
        store reports through the same shape so ``/stats`` and
        ``/metrics`` expose one uniform cache surface.
        """
        from ..obs.export import cache_stats

        caches = cache_stats()
        caches["server.dep_index"] = self.cache.dep_index_info()
        caches["olap.aggregates"] = self.olap.cache.info()
        caches["olap.datasets"] = self.olap.dataset_info()
        return caches

    def _stats(self) -> Response:
        import os

        with self._stats_lock:
            requests = dict(self._requests)
        payload = {
            "requests": requests,
            "site_cache": self.cache.stats(),
            "olap": self.olap.stats(),
            "caches": self._engine_caches(),
            "models": self.store.names(),
            "faults": FAULTS.describe(),
            "slos": self.telemetry.slo_report(),
        }
        if self.worker_id is not None:
            payload["worker"] = {"id": self.worker_id, "pid": os.getpid()}
        if self.fleet is not None:
            payload["fleet"] = self.fleet.read_fleet()
        return _json_response(200, payload)

    # -- telemetry surfaces ------------------------------------------------

    def _metrics(self) -> Response:
        labels = None if self.worker_id is None \
            else {"worker": str(self.worker_id)}
        text = self.telemetry.metrics_text(
            caches=self._engine_caches(),
            site_cache=self.cache.stats(),
            extra_gauges={"models": len(self.store.names())},
            default_labels=labels)
        if self.fleet is not None:
            text += self._fleet_metrics()
        return Response(200, text.encode("utf-8"),
                        [("Content-Type", METRICS_CONTENT_TYPE)])

    def _fleet_metrics(self) -> str:
        """The supervisor-aggregate series, from fleet snapshots.

        Gauges on purpose: a respawned worker restarts its request
        count at zero, so a fleet-wide sum can step backwards across a
        kill — a counter here would violate the monotonicity contract
        the chaos probes enforce on ``_total`` series.
        """
        snapshots = self.fleet.read_fleet()
        lines = [
            "# HELP goldcase_fleet_workers Worker snapshots visible in "
            "the shared build store.",
            "# TYPE goldcase_fleet_workers gauge",
            f"goldcase_fleet_workers {len(snapshots)}",
            "# HELP goldcase_fleet_requests Requests served fleet-wide "
            "(sum of live worker snapshots; resets on respawn).",
            "# TYPE goldcase_fleet_requests gauge",
            "goldcase_fleet_requests "
            f"{sum(s.get('requests', 0) for s in snapshots.values())}",
            "# HELP goldcase_worker_up 1 for every worker with a "
            "snapshot, labelled by id and pid.",
            "# TYPE goldcase_worker_up gauge",
        ]
        for worker_id in sorted(snapshots):
            snap = snapshots[worker_id]
            lines.append(
                f'goldcase_worker_up{{pid="{snap.get("pid", 0)}",'
                f'worker="{worker_id}"}} 1')
        lines.append(
            "# HELP goldcase_worker_requests Requests served per "
            "worker snapshot.")
        lines.append("# TYPE goldcase_worker_requests gauge")
        for worker_id in sorted(snapshots):
            lines.append(
                f'goldcase_worker_requests{{worker="{worker_id}"}} '
                f"{snapshots[worker_id].get('requests', 0)}")
        return "\n".join(lines) + "\n"

    def _dashboard(self) -> Response:
        from ..obs.dashboard import render_dashboard_html

        ctx = current_context()
        ctx_id = ctx.request_id if ctx is not None else ""
        html = render_dashboard_html(
            self.telemetry.snapshot(), request_id=ctx_id)
        return Response(200, html.encode("utf-8"),
                        [("Content-Type", CONTENT_TYPES[".html"]),
                         ("Cache-Control", "no-cache")])
