"""The socket layer: :class:`ModelRepositoryApp` on ThreadingHTTPServer.

Stdlib-only, matching the repo's no-dependency rule.  The paper ran
XSLT "in the server and the HTML is returned to the client browser"
(§6); this module is that server.  ``ThreadingHTTPServer`` gives one
thread per connection, which is exactly the concurrency model the site
cache is built for: distinct models publish in parallel, concurrent
requests for one stale model coalesce on its build lock.

The handler is hardened against hostile or broken clients (DESIGN.md
§12): every connection carries a read timeout (stalled body reads get
``408`` and a close instead of a parked thread), request bodies are
bounded (``413`` past :data:`MAX_BODY_BYTES`), a non-numeric
``Content-Length`` is a clean ``400``, and an exception escaping the
application layer is answered with a JSON ``500`` and a closed
connection — never a traceback that kills the handler thread mid-
response.  Malformed request lines (400) and oversized or over-many
header blocks (431) are already rejected by the stdlib parser; the
regression tests in ``tests/server/test_http_errors.py`` pin all of
these behaviours.  ``httpd.read`` / ``httpd.write`` fault-injection
points simulate slow and vanishing clients on either side of the
application call.

:class:`ModelServer` is the embeddable form (tests, benchmarks: bind
port 0, ``start()``, talk HTTP, ``stop()``); :func:`serve_forever`
is the blocking form behind ``goldcase serve``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..faults import FAULTS, FaultError, fault_point
from ..obs.recorder import RECORDER as _REC
from .app import ModelRepositoryApp

__all__ = ["ModelServer", "make_handler", "make_server", "serve_forever",
           "MAX_BODY_BYTES", "READ_TIMEOUT_S"]

#: Largest accepted request body; a PUT beyond this is answered 413.
#: Generous for model documents (the large benchmark model is ~1 MB).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Per-connection socket timeout: how long one blocking read (request
#: line, headers, or body) may stall before the connection is dropped
#: (mid-body stalls are answered 408 first).
READ_TIMEOUT_S = 30.0

_READ_FAULT = fault_point(
    "httpd.read", "raise/delay/corrupt around the request-body socket "
                  "read (httpd.py)")
_WRITE_FAULT = fault_point(
    "httpd.write", "raise/delay before the response bytes are written "
                   "(httpd.py)")


class _RepositoryHandler(BaseHTTPRequestHandler):
    """Adapts one HTTP exchange onto ``app.handle``."""

    server_version = "goldcase-repository/1.0"
    protocol_version = "HTTP/1.1"  # keep-alive: load generators reuse
    # connections, so Content-Length on every response is mandatory.
    # Small responses + keep-alive hit the Nagle/delayed-ACK interaction
    # (~40 ms per request) unless the socket writes immediately.
    disable_nagle_algorithm = True
    #: socketserver applies this to the connection in setup(); stalls
    #: anywhere in the exchange then raise TimeoutError instead of
    #: parking the handler thread forever.
    timeout = READ_TIMEOUT_S

    # Set by make_server on the handler subclass.
    app: ModelRepositoryApp = None  # type: ignore[assignment]
    quiet = True
    max_body_bytes = MAX_BODY_BYTES

    def _fail(self, status: int, message: str, *,
              retry_after: int | None = None) -> None:
        """A JSON error response that always closes the connection.

        Used for transport-level failures (bad framing, timeouts,
        crashed application) where the connection state is no longer
        trustworthy enough for keep-alive.
        """
        body = (json.dumps({"error": message, "kind": "transport"},
                           sort_keys=True) + "\n").encode("utf-8")
        request_id = None
        app = self.app
        if app is not None:
            # The app never saw this exchange; record it in telemetry
            # directly so transport rejections still get ids + counters.
            request_id = app.telemetry.transport_event(
                getattr(self, "command", None) or "-",
                getattr(self, "path", None) or "-", status, message)
        try:
            self.send_response(status)
            self.send_header("Content-Type",
                             "application/json; charset=utf-8")
            if request_id is not None:
                self.send_header("X-Goldcase-Request-Id", request_id)
            if retry_after is not None:
                self.send_header("Retry-After", str(retry_after))
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except OSError:
            pass  # the peer is gone; nothing left to tell them
        self.close_connection = True

    def _read_body(self) -> bytes | None:
        """The request body, or None after an error response was sent."""
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length else 0
        except ValueError:
            self._fail(400, f"invalid Content-Length {raw_length!r}")
            return None
        if length < 0:
            self._fail(400, f"invalid Content-Length {raw_length!r}")
            return None
        if length > self.max_body_bytes:
            self._fail(413, f"request body of {length} bytes exceeds the "
                            f"{self.max_body_bytes}-byte limit")
            return None
        try:
            body = self.rfile.read(length) if length else b""
        except TimeoutError:
            self._fail(408, "timed out reading the request body")
            return None
        if len(body) < length:
            self._fail(400, f"request body truncated at {len(body)} of "
                            f"{length} bytes")
            return None
        return body

    def _dispatch(self, method: str) -> None:
        body = self._read_body()
        if body is None:
            return
        if FAULTS.enabled:
            try:
                body = FAULTS.hit(_READ_FAULT, body)
            except FaultError:
                # A vanished client: drop the exchange without a
                # response, exactly what a reset mid-read looks like.
                self.close_connection = True
                return
        try:
            response = self.app.handle(
                method, self.path, dict(self.headers.items()), body)
        except Exception as exc:  # the app must never kill the thread
            if _REC.enabled:
                _REC.count("server.http.app_error")
            self.log_error("application error on %s %s: %r",
                           method, self.path, exc)
            self._fail(500, "internal server error")
            return
        if FAULTS.enabled:
            try:
                FAULTS.hit(_WRITE_FAULT)
            except FaultError:
                self.close_connection = True  # drop before the write
                return
        try:
            self.send_response(response.status)
            for name, value in response.headers:
                self.send_header(name, value)
            self.send_header("Content-Length", str(len(response.body)))
            self.end_headers()
            if method != "HEAD" and response.status != 304:
                self.wfile.write(response.body)
        except (OSError, TimeoutError):
            self.close_connection = True  # peer vanished mid-write

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_HEAD(self) -> None:  # noqa: N802
        self._dispatch("HEAD")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)
        if _REC.enabled:
            _REC.count("server.http.request_line")

    def log_error(self, format: str, *args) -> None:  # noqa: A002
        # Transport-level rejections (400/408/413/431/500) are expected
        # under chaos; keep them off stderr unless access logging is on.
        if not self.quiet:
            super().log_error(format, *args)


def make_handler(app: ModelRepositoryApp, *, quiet: bool = True,
                 read_timeout_s: float = READ_TIMEOUT_S,
                 max_body_bytes: int = MAX_BODY_BYTES) -> type:
    """The request-handler class bound to *app*.

    Factored out of :func:`make_server` so alternate socket layers (the
    pre-fork worker servers in :mod:`repro.server.workers`) serve the
    exact same hardened handler.
    """
    return type("_BoundHandler", (_RepositoryHandler,),
                {"app": app, "quiet": quiet, "timeout": read_timeout_s,
                 "max_body_bytes": max_body_bytes})


def make_server(app: ModelRepositoryApp | None = None, *,
                host: str = "127.0.0.1", port: int = 0,
                quiet: bool = True,
                read_timeout_s: float = READ_TIMEOUT_S,
                max_body_bytes: int = MAX_BODY_BYTES
                ) -> tuple[ThreadingHTTPServer, ModelRepositoryApp]:
    """A bound (not yet serving) threaded server around *app*."""
    if app is None:
        app = ModelRepositoryApp()
    handler = make_handler(app, quiet=quiet,
                           read_timeout_s=read_timeout_s,
                           max_body_bytes=max_body_bytes)
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server, app


class ModelServer:
    """An embeddable server: ``start()`` in a thread, ``stop()`` cleanly."""

    def __init__(self, app: ModelRepositoryApp | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 quiet: bool = True,
                 read_timeout_s: float = READ_TIMEOUT_S,
                 max_body_bytes: int = MAX_BODY_BYTES) -> None:
        self.httpd, self.app = make_server(
            app, host=host, port=port, quiet=quiet,
            read_timeout_s=read_timeout_s, max_body_bytes=max_body_bytes)
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the bound server (no trailing slash)."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ModelServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="goldcase-httpd",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.httpd.server_close()

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_forever(app: ModelRepositoryApp | None = None, *,
                  host: str = "127.0.0.1", port: int = 8040,
                  quiet: bool = False) -> None:
    """Blocking serve loop for the CLI; returns on KeyboardInterrupt."""
    server, _ = make_server(app, host=host, port=port, quiet=quiet)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
