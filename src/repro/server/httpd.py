"""The socket layer: :class:`ModelRepositoryApp` on ThreadingHTTPServer.

Stdlib-only, matching the repo's no-dependency rule.  The paper ran
XSLT "in the server and the HTML is returned to the client browser"
(§6); this module is that server.  ``ThreadingHTTPServer`` gives one
thread per connection, which is exactly the concurrency model the site
cache is built for: distinct models publish in parallel, concurrent
requests for one stale model coalesce on its build lock.

:class:`ModelServer` is the embeddable form (tests, benchmarks: bind
port 0, ``start()``, talk HTTP, ``stop()``); :func:`serve_forever`
is the blocking form behind ``goldcase serve``.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs.recorder import RECORDER as _REC
from .app import ModelRepositoryApp

__all__ = ["ModelServer", "make_server", "serve_forever"]


class _RepositoryHandler(BaseHTTPRequestHandler):
    """Adapts one HTTP exchange onto ``app.handle``."""

    server_version = "goldcase-repository/1.0"
    protocol_version = "HTTP/1.1"  # keep-alive: load generators reuse
    # connections, so Content-Length on every response is mandatory.
    # Small responses + keep-alive hit the Nagle/delayed-ACK interaction
    # (~40 ms per request) unless the socket writes immediately.
    disable_nagle_algorithm = True

    # Set by make_server on the handler subclass.
    app: ModelRepositoryApp = None  # type: ignore[assignment]
    quiet = True

    def _dispatch(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        response = self.app.handle(
            method, self.path, dict(self.headers.items()), body)
        self.send_response(response.status)
        for name, value in response.headers:
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        if method != "HEAD" and response.status != 304:
            self.wfile.write(response.body)

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_HEAD(self) -> None:  # noqa: N802
        self._dispatch("HEAD")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)
        if _REC.enabled:
            _REC.count("server.http.request_line")


def make_server(app: ModelRepositoryApp | None = None, *,
                host: str = "127.0.0.1", port: int = 0,
                quiet: bool = True) -> tuple[ThreadingHTTPServer,
                                             ModelRepositoryApp]:
    """A bound (not yet serving) threaded server around *app*."""
    if app is None:
        app = ModelRepositoryApp()
    handler = type("_BoundHandler", (_RepositoryHandler,),
                   {"app": app, "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server, app


class ModelServer:
    """An embeddable server: ``start()`` in a thread, ``stop()`` cleanly."""

    def __init__(self, app: ModelRepositoryApp | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 quiet: bool = True) -> None:
        self.httpd, self.app = make_server(
            app, host=host, port=port, quiet=quiet)
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the bound server (no trailing slash)."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ModelServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="goldcase-httpd",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.httpd.server_close()

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_forever(app: ModelRepositoryApp | None = None, *,
                  host: str = "127.0.0.1", port: int = 8040,
                  quiet: bool = False) -> None:
    """Blocking serve loop for the CLI; returns on KeyboardInterrupt."""
    server, _ = make_server(app, host=host, port=port, quiet=quiet)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
