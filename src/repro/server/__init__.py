"""The model-repository HTTP server (DESIGN.md §11).

The paper's deployment (§6) — XSLT runs "in the server and the HTML is
returned to the client browser" — realized as a stdlib-only subsystem:

* :mod:`repro.server.store` — the validated REST model store;
* :mod:`repro.server.cache` — the incremental rebuild cache (content
  hash keys, per-model build coalescing, build-time link checking);
* :mod:`repro.server.app` — transport-agnostic routing with strong
  ETags, conditional GET, and per-extension content types;
* :mod:`repro.server.telemetry` — the always-on metric surface:
  request ids, rolling windows, SLOs, ``/metrics``, ``/dashboard``;
* :mod:`repro.server.httpd` — the threaded HTTP front end behind
  ``goldcase serve``;
* :mod:`repro.server.buildstore` — the content-addressed on-disk
  artifact tier shared by every process (DESIGN.md §17);
* :mod:`repro.server.workers` — the pre-fork supervisor behind
  ``goldcase serve --workers N``.
"""

from .app import (
    CONTENT_TYPES,
    METRICS_CONTENT_TYPE,
    REQUEST_ID_HEADER,
    ModelRepositoryApp,
    Response,
)
from .buildstore import BuildStore, SharedModelStore
from .cache import (
    CacheOverloadError,
    SiteBuildError,
    SiteCache,
    SiteEntry,
    VARIANTS,
)
from .httpd import (
    MAX_BODY_BYTES,
    READ_TIMEOUT_S,
    ModelServer,
    make_server,
    serve_forever,
)
from .store import ModelRecord, ModelStore, ModelStoreError
from .telemetry import RequestContext, ServerTelemetry
from .workers import (
    BuildPool,
    MultiWorkerServer,
    make_worker_app,
    reuseport_available,
    serve_forever_multi,
)

__all__ = [
    "BuildPool",
    "BuildStore",
    "MultiWorkerServer",
    "SharedModelStore",
    "make_worker_app",
    "reuseport_available",
    "serve_forever_multi",
    "CONTENT_TYPES",
    "CacheOverloadError",
    "MAX_BODY_BYTES",
    "METRICS_CONTENT_TYPE",
    "ModelRepositoryApp",
    "READ_TIMEOUT_S",
    "REQUEST_ID_HEADER",
    "RequestContext",
    "ServerTelemetry",
    "Response",
    "SiteBuildError",
    "SiteCache",
    "SiteEntry",
    "VARIANTS",
    "ModelServer",
    "make_server",
    "serve_forever",
    "ModelRecord",
    "ModelStore",
    "ModelStoreError",
]
