"""The REST model store: named GOLD model documents, validated on upload.

The paper's CASE tool keeps every model as an XML document (§3); this
store is the server-side home for those documents.  A ``put`` runs the
full ingestion pipeline — parse, XSD validation against the goldmodel
schema (reusing :mod:`repro.xsd.validator` and surfacing its
instance-path diagnostics), and conversion to a :class:`GoldModel` —
so everything the store holds is known-publishable.  Rejections raise
:class:`ModelStoreError` carrying the structured diagnostics the HTTP
layer serializes as JSON.

Every record carries a SHA-256 ``content_hash`` of the canonical XML
bytes.  That hash is the cache key for the publishing layer
(:mod:`repro.server.cache`): re-uploading identical bytes keeps the
hash (and therefore every cached page and ETag) stable, while any byte
change rolls the hash and invalidates exactly that model's site.

All public methods are thread-safe: the threaded HTTP server mutates
the store from concurrent request handlers.
"""

from __future__ import annotations

import hashlib
import re
import threading
from dataclasses import dataclass, field

from ..faults import FAULTS, fault_point
from ..mdm import document_to_model, gold_schema
from ..mdm.errors import ModelError
from ..mdm.model import GoldModel
from ..obs.recorder import RECORDER as _REC
from ..xml.errors import XMLError
from ..xml.parser import parse as parse_xml
from ..xsd import validate as xsd_validate

__all__ = ["ModelRecord", "ModelStore", "ModelStoreError"]

_PARSE_FAULT = fault_point(
    "store.parse", "raise/delay/corrupt the uploaded bytes before the "
                   "ingestion parse (store.py)")
_PUT_FAULT = fault_point(
    "store.put", "raise/delay between a validated upload and the store "
                 "write (store.py)")

#: Model names are path segments; keep them trivially URL- and FS-safe.
NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class ModelStoreError(Exception):
    """An upload was rejected; ``issues`` holds structured diagnostics.

    ``kind`` is one of ``"name"``, ``"parse"``, ``"schema"`` or
    ``"structure"`` — the ingestion stage that failed.  ``issues`` is a
    list of JSON-ready dicts (message/path/line/severity/code), the
    schema stage reusing the validator's instance-path diagnostics.
    """

    def __init__(self, kind: str, issues: list[dict]) -> None:
        summary = issues[0]["message"] if issues else kind
        super().__init__(f"{kind}: {summary}")
        self.kind = kind
        self.issues = issues


@dataclass(frozen=True)
class ModelRecord:
    """One stored model: canonical bytes plus the parsed object."""

    name: str
    xml_bytes: bytes
    content_hash: str
    model: GoldModel
    #: Monotonic per-name revision; bumped on every put, even no-ops.
    revision: int = 1

    @property
    def etag(self) -> str:
        """Strong ETag for the raw XML resource."""
        return f'"{self.content_hash}"'

    def summary(self) -> dict:
        """JSON-ready description for the listing endpoint."""
        return {
            "name": self.name,
            "model_id": self.model.id,
            "model_name": self.model.name,
            "content_hash": self.content_hash,
            "revision": self.revision,
            "bytes": len(self.xml_bytes),
            "facts": len(self.model.facts),
            "dimensions": len(self.model.dimensions),
        }


def _content_hash(xml_bytes: bytes) -> str:
    return hashlib.sha256(xml_bytes).hexdigest()


def _issue_dict(issue) -> dict:
    return {
        "message": issue.message,
        "path": issue.path,
        "line": issue.line,
        "column": issue.column,
        "severity": issue.severity,
        "code": issue.code,
    }


class ModelStore:
    """A thread-safe name → :class:`ModelRecord` map with ingestion."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: dict[str, ModelRecord] = {}
        # The compiled goldmodel schema is immutable once built; share it
        # across uploads and threads (built lazily on first put).
        self._schema = None
        self._schema_lock = threading.Lock()

    # -- ingestion ---------------------------------------------------------

    def _gold_schema(self):
        if self._schema is None:
            with self._schema_lock:
                if self._schema is None:
                    self._schema = gold_schema()
        return self._schema

    def ingest(self, name: str, xml_bytes: bytes) -> GoldModel:
        """Run the validation pipeline without storing; returns the model."""
        if not NAME_RE.match(name):
            raise ModelStoreError("name", [{
                "message": f"invalid model name {name!r} "
                           "(expected [A-Za-z0-9._-], max 64 chars)",
                "path": "", "line": None, "column": None,
                "severity": "error", "code": "store-name"}])
        if FAULTS.enabled:
            # A corrupt fault mutates the bytes *before* the parse, so
            # the rejection path (400 + diagnostics) is what degrades.
            xml_bytes = FAULTS.hit(_PARSE_FAULT, xml_bytes)
        try:
            document = parse_xml(xml_bytes)
        except XMLError as exc:
            raise ModelStoreError("parse", [{
                "message": str(exc), "path": "", "line": None,
                "column": None, "severity": "error",
                "code": "xml-parse"}]) from exc
        with _REC.span("server.validate", model=name):
            report = xsd_validate(document, self._gold_schema())
        if not report.valid:
            raise ModelStoreError(
                "schema", [_issue_dict(issue) for issue in report.errors])
        try:
            return document_to_model(document)
        except ModelError as exc:
            raise ModelStoreError("structure", [{
                "message": str(exc), "path": "", "line": None,
                "column": None, "severity": "error",
                "code": "model-structure"}]) from exc

    # -- CRUD --------------------------------------------------------------

    def put(self, name: str, xml_bytes: bytes) -> tuple[ModelRecord, bool]:
        """Validate and store; returns ``(record, created)``.

        ``created`` is True for a new name, False for a replacement.
        Validation runs outside the store lock so concurrent uploads of
        distinct models validate in parallel.
        """
        model = self.ingest(name, xml_bytes)
        if FAULTS.enabled:
            # Fires between validation and the write — the window where
            # a crashed write must leave the previous record intact.
            FAULTS.hit(_PUT_FAULT)
        digest = _content_hash(xml_bytes)
        with self._lock:
            previous = self._records.get(name)
            record = ModelRecord(
                name=name, xml_bytes=bytes(xml_bytes), content_hash=digest,
                model=model,
                revision=previous.revision + 1 if previous else 1)
            self._records[name] = record
        if _REC.enabled:
            _REC.count("server.store.put")
        return record, previous is None

    def get(self, name: str) -> ModelRecord | None:
        """The current record for *name* (None when absent)."""
        with self._lock:
            return self._records.get(name)

    def delete(self, name: str) -> bool:
        """Remove *name*; returns True when it existed."""
        with self._lock:
            existed = self._records.pop(name, None) is not None
        if existed and _REC.enabled:
            _REC.count("server.store.delete")
        return existed

    def names(self) -> list[str]:
        """Stored model names, sorted."""
        with self._lock:
            return sorted(self._records)

    def listing(self) -> list[dict]:
        """JSON-ready summaries of every stored model, sorted by name."""
        with self._lock:
            records = sorted(self._records.values(), key=lambda r: r.name)
        return [record.summary() for record in records]
