"""Pre-fork serving: a supervisor, N worker processes, one build store.

The single-process server (:mod:`repro.server.httpd`) tops out around
one core: handler threads share the GIL, so XSLT rendering and response
serialization serialize no matter how many clients connect.  This
module is the scale-out described in DESIGN.md §17:

* **A supervisor** that owns the port and the worker fleet.  On
  platforms with ``SO_REUSEPORT`` (Linux), the supervisor *reserves*
  the port — binds a reuseport socket without ever calling
  ``listen()``, so the kernel excludes it from connection distribution
  but keeps the port ours even while zero workers are up — and every
  worker binds its own reuseport *listening* socket on that port; the
  kernel then load-balances new connections across workers with no
  accept lock and no proxy hop.  Elsewhere, the supervisor binds and
  listens one socket and the forked workers all ``accept()`` on the
  inherited descriptor.
* **N workers**, each a full :class:`~http.server.ThreadingHTTPServer`
  running the exact same hardened handler as the single-process server
  (:func:`repro.server.httpd.make_handler`) over its own app, cache,
  and telemetry.  Per-worker state keeps every existing contract —
  coalescing, serve-stale, shedding — intact *within* a worker; the
  shared :class:`~repro.server.buildstore.BuildStore` extends build
  coalescing *across* workers (one transform fleet-wide) and gives a
  respawned worker a warm start.
* **Crash containment.**  A monitor thread reaps dead workers and
  forks replacements under the same worker id.  A SIGKILLed worker
  costs only its own in-flight connections (clean transport errors at
  the client); its reuseport socket leaves the group atomically, its
  ``flock``s die with it, and its replacement warms from the on-disk
  store without re-rendering anything a peer already built.  The
  worker-kill chaos runner (:mod:`repro.testkit.chaosmp`) enforces all
  three properties.
* **A bounded build pool** (optional): PUTs enqueue the model name and
  pool processes pre-build every variant into the shared store, so the
  first GET after an upload usually finds the artifact on disk instead
  of rendering on the request path.  The queue is bounded and lossy —
  a full queue drops the warm-up, never blocks the PUT, and the
  request path still builds on demand.

``fork`` start method only: workers inherit the listening socket, the
build-pool queue, and (in tests) monkeypatched module state, without
pickling anything.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import signal
import socket
import threading
import time
from http.server import ThreadingHTTPServer

from .app import ModelRepositoryApp
from .buildstore import BuildStore, SharedModelStore
from .cache import SiteCache
from .httpd import MAX_BODY_BYTES, READ_TIMEOUT_S, make_handler
from .telemetry import ServerTelemetry

__all__ = ["MultiWorkerServer", "BuildPool", "make_worker_app",
           "reuseport_available", "serve_forever_multi"]

#: How often each worker publishes its fleet snapshot.
FLEET_FLUSH_S = 0.25

#: How long the supervisor waits for a worker to come up.
READY_TIMEOUT_S = 30.0


def reuseport_available() -> bool:
    """True when the kernel supports ``SO_REUSEPORT`` distribution."""
    return hasattr(socket, "SO_REUSEPORT")


def make_worker_app(buildstore: BuildStore, *,
                    worker_id: int | None = None,
                    dataset=None, prebuild=None) -> ModelRepositoryApp:
    """One worker's application over the shared build store.

    Everything per-process (cache, telemetry, OLAP service) is fresh;
    everything durable (models, built artifacts, fleet snapshots) goes
    through *buildstore*, which is how N of these stay one repository.
    """
    from ..olap.service import OlapService

    return ModelRepositoryApp(
        SharedModelStore(buildstore),
        SiteCache(buildstore=buildstore),
        ServerTelemetry(),
        OlapService(dataset=dataset, buildstore=buildstore),
        worker_id=worker_id, fleet=buildstore, prebuild=prebuild)


class _ReusePortServer(ThreadingHTTPServer):
    """A threaded server whose socket joins a reuseport group."""

    daemon_threads = True

    def server_bind(self) -> None:
        self.socket.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


class _InheritedSocketServer(ThreadingHTTPServer):
    """A threaded server accepting on a socket bound by the parent."""

    daemon_threads = True

    def __init__(self, shared: socket.socket, handler: type) -> None:
        address = shared.getsockname()[:2]
        super().__init__(address, handler, bind_and_activate=False)
        self.socket.close()  # the unused fresh socket
        self.socket = shared
        self.server_address = address
        self.server_name = socket.getfqdn(address[0])
        self.server_port = address[1]


def _worker_main(worker_id: int, host: str, port: int, store_dir: str,
                 options: dict, shared_socket, ready,
                 build_queue) -> None:
    """A worker process, from fork to shutdown.  Never returns."""
    # The terminal delivers SIGINT to the whole group; the supervisor
    # owns shutdown and asks politely with SIGTERM.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    buildstore = BuildStore(store_dir)
    prebuild = None
    if build_queue is not None:
        def prebuild(name: str, _queue=build_queue) -> None:
            try:
                _queue.put_nowait(name)
            except queue_module.Full:
                pass  # lossy by design; the request path builds anyway
    app = make_worker_app(
        buildstore, worker_id=worker_id,
        dataset=options.get("dataset"), prebuild=prebuild)
    handler = make_handler(
        app, quiet=options.get("quiet", True),
        read_timeout_s=options.get("read_timeout_s", READ_TIMEOUT_S),
        max_body_bytes=options.get("max_body_bytes", MAX_BODY_BYTES))
    if shared_socket is not None:
        server = _InheritedSocketServer(shared_socket, handler)
    else:
        server = _ReusePortServer((host, port), handler)

    def on_term(_signum, _frame) -> None:
        # shutdown() blocks until the serve loop exits, so it must run
        # off the loop's own (main) thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, on_term)

    stop_flush = threading.Event()

    def flush() -> None:
        buildstore.write_fleet(worker_id, {
            "worker": worker_id, "pid": os.getpid(),
            "requests": app.request_count(), "updated": time.time()})

    def flush_loop() -> None:
        while not stop_flush.wait(FLEET_FLUSH_S):
            flush()

    flush()
    threading.Thread(target=flush_loop, daemon=True,
                     name="goldcase-fleet-flush").start()
    ready.set()
    try:
        server.serve_forever(poll_interval=0.05)
    finally:
        stop_flush.set()
        flush()
        server.server_close()
    os._exit(0)


def _pool_main(store_dir: str, tasks) -> None:
    """A build-pool process: pre-build every variant of queued models."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from .cache import VARIANTS

    buildstore = BuildStore(store_dir)
    store = SharedModelStore(buildstore)
    cache = SiteCache(buildstore=buildstore)
    while True:
        name = tasks.get()
        if name is None:
            return
        record = store.get(name)
        if record is None:
            continue  # deleted before we got to it
        for variant in VARIANTS:
            try:
                cache.entry(record, variant)
            except Exception:
                pass  # warming is best-effort
        # The pool only feeds the disk tier; don't accumulate pages in
        # this process's memory across models.
        cache.invalidate(name)


class BuildPool:
    """A bounded pool of processes pre-building PUT models to disk."""

    def __init__(self, store_dir: str, *, processes: int = 2,
                 queue_size: int = 64) -> None:
        self._ctx = multiprocessing.get_context("fork")
        self.queue = self._ctx.Queue(maxsize=queue_size)
        self._procs = [
            self._ctx.Process(
                target=_pool_main, args=(store_dir, self.queue),
                daemon=True, name=f"goldcase-buildpool-{index}")
            for index in range(processes)]

    def start(self) -> None:
        for proc in self._procs:
            proc.start()

    def stop(self) -> None:
        for _proc in self._procs:
            try:
                self.queue.put_nowait(None)
            except queue_module.Full:
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5)
        self.queue.close()


class MultiWorkerServer:
    """The embeddable pre-fork server: supervisor + N workers.

    Mirrors :class:`repro.server.httpd.ModelServer`'s shape (``start``
    / ``stop`` / context manager / ``.url``) so tests, benchmarks, and
    the chaos runner drive either interchangeably — the difference is
    that requests land in worker *processes* and all durable state
    lives in ``store_dir``.
    """

    def __init__(self, store_dir: str, *, workers: int = 2,
                 host: str = "127.0.0.1", port: int = 0,
                 quiet: bool = True, dataset=None,
                 respawn: bool = True,
                 build_pool_processes: int = 0,
                 read_timeout_s: float = READ_TIMEOUT_S,
                 max_body_bytes: int = MAX_BODY_BYTES) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.store_dir = store_dir
        self.buildstore = BuildStore(store_dir)
        self.workers = workers
        self.respawn = respawn
        self.respawns = 0  # replacements forked by the monitor
        self._host = host
        self._requested_port = port
        self._options = {"quiet": quiet, "dataset": dataset,
                         "read_timeout_s": read_timeout_s,
                         "max_body_bytes": max_body_bytes}
        self._build_pool_processes = build_pool_processes
        self._ctx = multiprocessing.get_context("fork")
        self._procs: list = [None] * workers
        self._port: int | None = None
        self._reserve_socket: socket.socket | None = None
        self._shared_socket: socket.socket | None = None
        self._pool: BuildPool | None = None
        self._stopping = threading.Event()
        self._monitor_thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # -- addresses ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("server not started")
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ---------------------------------------------------------

    def _bind(self) -> None:
        if reuseport_available():
            # Reserve the port without listening: a non-listening bound
            # socket never receives connections but keeps the port (and
            # with port=0, *decides* it) for the whole fleet's lifetime,
            # including windows where every worker is dead.
            reserve = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            reserve.bind((self._host, self._requested_port))
            self._reserve_socket = reserve
            self._port = reserve.getsockname()[1]
        else:  # pragma: no cover - non-Linux fallback
            shared = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            shared.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            shared.bind((self._host, self._requested_port))
            shared.listen(128)
            self._shared_socket = shared
            self._port = shared.getsockname()[1]

    def _spawn(self, worker_id: int) -> tuple:
        ready = self._ctx.Event()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self._host, self._port, self.store_dir,
                  self._options, self._shared_socket, ready,
                  None if self._pool is None else self._pool.queue),
            daemon=True, name=f"goldcase-worker-{worker_id}")
        proc.start()
        return proc, ready

    def start(self) -> "MultiWorkerServer":
        self.buildstore.clear_fleet()
        self._bind()
        if self._build_pool_processes:
            self._pool = BuildPool(
                self.store_dir, processes=self._build_pool_processes)
            self._pool.start()
        pending = []
        with self._lock:
            for worker_id in range(self.workers):
                proc, ready = self._spawn(worker_id)
                self._procs[worker_id] = proc
                pending.append((worker_id, proc, ready))
        for worker_id, proc, ready in pending:
            if not ready.wait(READY_TIMEOUT_S):
                self.stop()
                raise RuntimeError(
                    f"worker {worker_id} (pid {proc.pid}) did not come "
                    f"up within {READY_TIMEOUT_S}s "
                    f"(exitcode={proc.exitcode})")
        if self.respawn:
            self._monitor_thread = threading.Thread(
                target=self._monitor, daemon=True,
                name="goldcase-supervisor")
            self._monitor_thread.start()
        return self

    def _monitor(self) -> None:
        """Reap dead workers and fork replacements under the same id."""
        while not self._stopping.wait(0.05):
            for worker_id in range(self.workers):
                with self._lock:
                    proc = self._procs[worker_id]
                if proc is None or proc.is_alive() \
                        or self._stopping.is_set():
                    continue
                proc.join()  # reap the zombie
                replacement, ready = self._spawn(worker_id)
                with self._lock:
                    if self._stopping.is_set():
                        replacement.terminate()
                        replacement.join(timeout=5)
                        return
                    self._procs[worker_id] = replacement
                    self.respawns += 1
                ready.wait(READY_TIMEOUT_S)

    def worker_pids(self) -> list[int]:
        """Current pid per worker slot (monitor may change these)."""
        with self._lock:
            return [proc.pid for proc in self._procs if proc is not None]

    def kill_worker(self, worker_id: int) -> int:
        """SIGKILL one worker (chaos); returns the pid that was shot.

        With ``respawn`` on, the monitor forks a replacement under the
        same worker id within its next scan.
        """
        with self._lock:
            proc = self._procs[worker_id]
        if proc is None or proc.pid is None:
            raise RuntimeError(f"worker {worker_id} not running")
        pid = proc.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    def stop(self) -> None:
        self._stopping.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=10)
            self._monitor_thread = None
        with self._lock:
            procs = [proc for proc in self._procs if proc is not None]
            self._procs = [None] * self.workers
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(timeout=10)
        if self._pool is not None:
            self._pool.stop()
            self._pool = None
        for sock in (self._reserve_socket, self._shared_socket):
            if sock is not None:
                sock.close()
        self._reserve_socket = None
        self._shared_socket = None
        self._stopping = threading.Event()  # restartable

    def __enter__(self) -> "MultiWorkerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_forever_multi(store_dir: str, *, workers: int,
                        host: str = "127.0.0.1", port: int = 8040,
                        quiet: bool = False,
                        build_pool_processes: int = 0) -> None:
    """Blocking pre-fork serve loop for the CLI (Ctrl-C to stop)."""
    server = MultiWorkerServer(
        store_dir, workers=workers, host=host, port=port, quiet=quiet,
        build_pool_processes=build_pool_processes)
    server.start()
    mode = "SO_REUSEPORT" if reuseport_available() else "inherited FD"
    print(f"goldcase: {workers} workers on {server.url} ({mode}), "
          f"build store at {store_dir}")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
