"""The incremental rebuild cache: one built site per (model, variant).

The serving hot path (DESIGN.md §11) never re-runs XSLT for a model
whose bytes have not changed:

* **Keyed on content.**  Entries are keyed ``(name, variant)`` and
  carry the :attr:`~repro.server.store.ModelRecord.content_hash` they
  were built from.  A lookup whose record hash matches is a pure dict
  read — no lock, no transform.  A re-upload that changes bytes rolls
  the hash, so the *next* request (and only for that model) rebuilds.
* **Coalesced rebuilds.**  Builds serialize on a per-model lock:
  when N clients hit a freshly invalidated model at once, one thread
  builds while the rest block on the lock, then re-check and find the
  fresh entry — one transform per invalidation, regardless of client
  count (``server.site.coalesced`` counts the waiters that were spared
  a build).  Distinct models hold distinct locks, so they build in
  parallel on the server's thread pool.
* **Link-checked at build time.**  Every page-producing build runs
  :func:`repro.web.linkcheck.check_site` and stores the report, so the
  ``/health/<model>`` endpoint surfaces broken anchors instead of the
  server silently shipping them.

Pages are stored UTF-8 encoded next to their strong ETags (SHA-256 of
the encoded bytes), so conditional GETs are answered without touching
page text again.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

from ..obs.recorder import RECORDER as _REC
from ..web.client import client_bundle
from ..web.linkcheck import LinkReport, check_site
from ..web.publisher import publish_multi_page, publish_single_page
from .store import ModelRecord

__all__ = ["SiteCache", "SiteEntry", "VARIANTS"]

#: The publishable variants of one model.
VARIANTS = ("multi", "single", "bundle")


def page_etag(payload: bytes) -> str:
    """Strong ETag for one served resource: quoted SHA-256 of its bytes."""
    return f'"{hashlib.sha256(payload).hexdigest()}"'


@dataclass(frozen=True)
class SiteEntry:
    """One built variant: encoded pages, their ETags, and health."""

    name: str
    variant: str
    content_hash: str
    revision: int
    #: filename → UTF-8 page bytes (HTML/CSS, or XML/XSL for bundles).
    pages: dict[str, bytes]
    #: filename → strong ETag of the encoded bytes.
    etags: dict[str, str]
    #: Link-check outcome (None for the bundle variant — no HTML).
    link_report: LinkReport | None = None
    messages: list[str] = field(default_factory=list)


def _build_variant(record: ModelRecord, variant: str) -> SiteEntry:
    if variant == "bundle":
        bundle = client_bundle(record.model)
        text_pages = {"model.xml": bundle.document_xml, **bundle.stylesheets}
        site_report = None
        messages: list[str] = []
    else:
        publish = publish_multi_page if variant == "multi" \
            else publish_single_page
        site = publish(record.model)
        text_pages = site.pages
        site_report = check_site(site)
        messages = site.messages
    pages = {name: text.encode("utf-8")
             for name, text in text_pages.items()}
    return SiteEntry(
        name=record.name, variant=variant,
        content_hash=record.content_hash, revision=record.revision,
        pages=pages,
        etags={name: page_etag(data) for name, data in pages.items()},
        link_report=site_report, messages=messages)


class SiteCache:
    """Content-hash keyed cache of built :class:`SiteEntry` objects."""

    def __init__(self) -> None:
        self._meta_lock = threading.Lock()
        self._entries: dict[tuple[str, str], SiteEntry] = {}
        self._model_locks: dict[str, threading.Lock] = {}
        # Local stats power the /stats endpoint even with the obs
        # recorder off; obs counters mirror them when profiling.
        self._stats = {"hits": 0, "rebuilds": 0, "coalesced": 0,
                       "invalidations": 0}

    # -- internals ---------------------------------------------------------

    def _model_lock(self, name: str) -> threading.Lock:
        with self._meta_lock:
            lock = self._model_locks.get(name)
            if lock is None:
                lock = self._model_locks[name] = threading.Lock()
            return lock

    _COUNTER = {"hits": "server.site.hit", "rebuilds": "server.site.rebuild",
                "coalesced": "server.site.coalesced",
                "invalidations": "server.site.invalidation"}

    def _bump(self, stat: str) -> None:
        with self._meta_lock:
            self._stats[stat] += 1
        if _REC.enabled:
            _REC.count(self._COUNTER[stat])

    def _fresh(self, key: tuple[str, str],
               record: ModelRecord) -> SiteEntry | None:
        entry = self._entries.get(key)
        if entry is not None and entry.content_hash == record.content_hash:
            return entry
        return None

    # -- public API --------------------------------------------------------

    def entry(self, record: ModelRecord, variant: str) -> SiteEntry:
        """The built *variant* for *record*, rebuilding only on staleness.

        The fast path is a lock-free dict read validated against the
        record's content hash.  The slow path serializes on the
        per-model lock; waiters re-check after acquiring it, so a burst
        of requests against a stale model performs exactly one build.
        """
        if variant not in VARIANTS:
            raise KeyError(f"unknown site variant {variant!r}")
        key = (record.name, variant)
        entry = self._fresh(key, record)
        if entry is not None:
            self._bump("hits")
            return entry
        with self._model_lock(record.name):
            entry = self._fresh(key, record)
            if entry is not None:
                # Another request built it while we waited on the lock.
                self._bump("coalesced")
                return entry
            self._bump("rebuilds")
            with _REC.span("server.rebuild", model=record.name,
                           variant=variant):
                entry = _build_variant(record, variant)
            self._entries[key] = entry
            return entry

    def peek(self, name: str, variant: str) -> SiteEntry | None:
        """The cached entry, fresh or stale, without building (or None)."""
        return self._entries.get((name, variant))

    def invalidate(self, name: str) -> int:
        """Drop every cached variant of *name*; returns entries removed.

        ``put`` does not need to call this — a changed content hash
        already invalidates — but DELETE uses it to free the memory of
        sites that can no longer be served.
        """
        removed = 0
        with self._model_lock(name):
            for variant in VARIANTS:
                if self._entries.pop((name, variant), None) is not None:
                    removed += 1
        if removed:
            self._bump("invalidations")
        return removed

    def stats(self) -> dict:
        """Hit/rebuild/coalesced/invalidation counters plus sizes."""
        with self._meta_lock:
            stats = dict(self._stats)
        stats["entries"] = len(self._entries)
        stats["resident_bytes"] = sum(
            len(data) for entry in list(self._entries.values())
            for data in entry.pages.values())
        return stats
