"""The incremental rebuild cache: one built site per (model, variant).

The serving hot path (DESIGN.md §11) never re-runs XSLT for a model
whose bytes have not changed:

* **Keyed on content.**  Entries are keyed ``(name, variant)`` and
  carry the :attr:`~repro.server.store.ModelRecord.content_hash` they
  were built from.  A lookup whose record hash matches is a pure dict
  read — no lock, no transform.  A re-upload that changes bytes rolls
  the hash, so the *next* request (and only for that model) rebuilds.
* **Coalesced rebuilds.**  Builds serialize on a per-model lock:
  when N clients hit a freshly invalidated model at once, one thread
  builds while the rest block on the lock, then re-check and find the
  fresh entry — one transform per invalidation, regardless of client
  count (``server.site.coalesced`` counts the waiters that were spared
  a build).  Distinct models hold distinct locks, so they build in
  parallel on the server's thread pool.
* **Incremental when possible (DESIGN.md §14).**  Multi-page builds run
  tracked, and the resulting dependency index is stored *under the
  content hash of the entry it describes*.  A rebuild triggered by a
  re-upload goes through :func:`repro.web.incremental
  .republish_incremental` when the stored index matches the previous
  entry — diffing the models and re-rendering only dirty pages, reusing
  the previous entry's bytes (and therefore its ETags) for the rest —
  and falls back to a cold tracked build on any mismatch
  (``server.site.incremental`` / ``server.site.incremental_fallback``).
* **Link-checked at build time.**  Every page-producing build runs
  :func:`repro.web.linkcheck.check_site` and stores the report, so the
  ``/health/<model>`` endpoint surfaces broken anchors instead of the
  server silently shipping them.
* **Degrades, never hangs (DESIGN.md §12).**  Builds are bounded by a
  global slot pool: a rebuild that cannot get a slot within the wait
  budget is *shed* (:class:`CacheOverloadError` → 503 + Retry-After)
  instead of queueing unboundedly.  A build that *fails* (an injected
  fault, or a genuinely broken publish) serves the previous — stale —
  entry when one exists (``server.stale_served``; the HTTP layer marks
  it with a ``Warning`` header) and raises :class:`SiteBuildError`
  when there is nothing to fall back to.  Failures coalesce exactly
  like builds do: waiters blocked on the model lock during a failed
  attempt share its outcome instead of piling N more doomed builds
  onto the fault (pinned by tests/server/test_cache_faults.py); the
  next request *after* the failure retries, so the cache is never
  poisoned.

Pages are stored UTF-8 encoded next to their strong ETags (SHA-256 of
the encoded bytes), so conditional GETs are answered without touching
page text again.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

from ..faults import FAULTS, fault_point
from ..obs.recorder import RECORDER as _REC
from ..web.client import client_bundle
from ..web.incremental import (
    DependencyIndex,
    build_index,
    classify_node,
    incremental_enabled,
    republish_incremental,
)
from ..web.linkcheck import LinkReport, check_site
from ..web.publisher import (
    PROFILE_PAGE,
    publish_multi_page,
    publish_single_page,
)
from ..web.stylesheets import MULTI_PAGE_XSL
from ..xml import tracking as _tracking
from .store import ModelRecord
from .telemetry import mark as _mark

__all__ = ["SiteCache", "SiteEntry", "VARIANTS", "CacheOverloadError",
           "SiteBuildError"]

_REBUILD_FAULT = fault_point(
    "cache.rebuild", "raise/delay inside a site rebuild, before the "
                     "transform runs (cache.py)")

#: The publishable variants of one model.
VARIANTS = ("multi", "single", "bundle")


class CacheOverloadError(Exception):
    """A rebuild was shed: no build slot within the wait budget."""

    def __init__(self, name: str, variant: str, retry_after_s: int) -> None:
        super().__init__(
            f"rebuild of {name}/{variant} shed under load; retry in "
            f"{retry_after_s}s")
        self.name = name
        self.variant = variant
        self.retry_after_s = retry_after_s


class SiteBuildError(Exception):
    """A rebuild failed and no stale entry exists to serve instead."""

    def __init__(self, name: str, variant: str, cause: str) -> None:
        super().__init__(f"site build failed for {name}/{variant}: {cause}")
        self.name = name
        self.variant = variant
        self.cause = cause


def page_etag(payload: bytes) -> str:
    """Strong ETag for one served resource: quoted SHA-256 of its bytes."""
    return f'"{hashlib.sha256(payload).hexdigest()}"'


@dataclass(frozen=True)
class SiteEntry:
    """One built variant: encoded pages, their ETags, and health."""

    name: str
    variant: str
    content_hash: str
    revision: int
    #: filename → UTF-8 page bytes (HTML/CSS, or XML/XSL for bundles).
    pages: dict[str, bytes]
    #: filename → strong ETag of the encoded bytes.
    etags: dict[str, str]
    #: Link-check outcome (None for the bundle variant — no HTML).
    link_report: LinkReport | None = None
    messages: list[str] = field(default_factory=list)


def _build_variant(record: ModelRecord, variant: str) -> SiteEntry:
    if variant == "bundle":
        bundle = client_bundle(record.model)
        text_pages = {"model.xml": bundle.document_xml, **bundle.stylesheets}
        site_report = None
        messages: list[str] = []
    else:
        publish = publish_multi_page if variant == "multi" \
            else publish_single_page
        site = publish(record.model)
        text_pages = site.pages
        site_report = check_site(site)
        messages = site.messages
    pages = {name: text.encode("utf-8")
             for name, text in text_pages.items()}
    return SiteEntry(
        name=record.name, variant=variant,
        content_hash=record.content_hash, revision=record.revision,
        pages=pages,
        etags={name: page_etag(data) for name, data in pages.items()},
        link_report=site_report, messages=messages)


class SiteCache:
    """Content-hash keyed cache of built :class:`SiteEntry` objects."""

    #: Default bound on concurrent builds across all models: enough to
    #: keep distinct models building in parallel, small enough that a
    #: burst of invalidations degrades to shedding instead of a convoy
    #: of transforms starving the serving threads.
    MAX_CONCURRENT_BUILDS = 4
    #: How long a request may wait for a build slot before being shed.
    BUILD_WAIT_S = 5.0
    #: The Retry-After hint attached to shed responses.
    RETRY_AFTER_S = 1

    def __init__(self, *, max_concurrent_builds: int | None = None,
                 build_wait_s: float | None = None,
                 buildstore=None) -> None:
        #: Optional :class:`repro.server.buildstore.BuildStore`.  When
        #: wired, the slow path consults the content-addressed disk tier
        #: before building and every build runs under the fleet-wide
        #: file lock, extending per-model coalescing across processes
        #: (DESIGN.md §17).  When None — every pre-existing deployment —
        #: behavior is byte-identical to the in-memory-only cache.
        self._buildstore = buildstore
        self._meta_lock = threading.Lock()
        self._entries: dict[tuple[str, str], SiteEntry] = {}
        self._model_locks: dict[str, threading.Lock] = {}
        self._build_slots = threading.BoundedSemaphore(
            max_concurrent_builds or self.MAX_CONCURRENT_BUILDS)
        self._build_wait_s = self.BUILD_WAIT_S \
            if build_wait_s is None else build_wait_s
        #: (name, variant) → message of the most recent failed build;
        #: cleared by the next successful build of that key.
        self._build_errors: dict[tuple[str, str], str] = {}
        #: (name, "multi") → (content_hash of the entry the index was
        #: recorded for, its dependency index).  The hash pins the index
        #: to one specific build: an incremental rebuild only runs when
        #: it matches the entry whose bytes would be reused, so a server
        #: restarted (or otherwise holding a divergent entry) never
        #: applies a diff against the wrong baseline.
        self._dep_indexes: dict[tuple[str, str],
                                tuple[str, DependencyIndex]] = {}
        #: (name, variant) → monotonic count of *finished* build
        #: attempts (success or failure).  A waiter that blocked on the
        #: model lock snapshots this before blocking: an unchanged value
        #: after the lock means nobody tried (build it), a changed value
        #: with a still-stale entry means the attempt it waited on
        #: failed (share that failure, do not retry in lockstep).
        self._build_tokens: dict[tuple[str, str], int] = {}
        # Local stats power the /stats endpoint even with the obs
        # recorder off; obs counters mirror them when profiling.
        self._stats = {"hits": 0, "rebuilds": 0, "coalesced": 0,
                       "invalidations": 0, "build_failures": 0,
                       "stale_served": 0, "shed": 0,
                       "incremental": 0, "incremental_fallback": 0,
                       "disk_hits": 0, "disk_stores": 0}

    # -- internals ---------------------------------------------------------

    def _model_lock(self, name: str) -> threading.Lock:
        with self._meta_lock:
            lock = self._model_locks.get(name)
            if lock is None:
                lock = self._model_locks[name] = threading.Lock()
            return lock

    _COUNTER = {"hits": "server.site.hit", "rebuilds": "server.site.rebuild",
                "coalesced": "server.site.coalesced",
                "invalidations": "server.site.invalidation",
                "build_failures": "server.site.build_failure",
                "stale_served": "server.stale_served",
                "shed": "server.shed",
                "incremental": "server.site.incremental",
                "incremental_fallback": "server.site.incremental_fallback",
                "disk_hits": "server.site.disk_hit",
                "disk_stores": "server.site.disk_store"}

    #: Per-request telemetry flag for each stat (singular forms end up
    #: in access-log lines and windowed counters).
    _FLAG = {"hits": "cache_hit", "rebuilds": "rebuild",
             "coalesced": "coalesced", "invalidations": "invalidation",
             "build_failures": "build_failure",
             "stale_served": "stale_served", "shed": "shed",
             "incremental": "incremental",
             "incremental_fallback": "incremental_fallback",
             "disk_hits": "disk_hit", "disk_stores": "disk_store"}

    def _bump(self, stat: str) -> None:
        with self._meta_lock:
            self._stats[stat] += 1
        if _REC.enabled:
            _REC.count(self._COUNTER[stat])
        # Tag the in-flight request (thread-local; no-op off-request) so
        # its access-log line says what the cache did for it.
        _mark(self._FLAG[stat])

    def _fresh(self, key: tuple[str, str],
               record: ModelRecord) -> SiteEntry | None:
        entry = self._entries.get(key)
        if entry is not None and entry.content_hash == record.content_hash:
            return entry
        return None

    # -- public API --------------------------------------------------------

    def entry(self, record: ModelRecord, variant: str) -> SiteEntry:
        """The built *variant* for *record*, rebuilding only on staleness.

        The fast path is a lock-free dict read validated against the
        record's content hash.  The slow path serializes on the
        per-model lock; waiters re-check after acquiring it, so a burst
        of requests against a stale model performs exactly one build —
        and, symmetrically, exactly one *failure*: waiters present
        during a failed attempt inherit its outcome (the stale previous
        entry, or :class:`SiteBuildError`) instead of retrying in
        lockstep against the same fault.

        A returned entry whose ``content_hash`` differs from the
        record's is stale — the degraded serve-stale path; callers that
        care (the HTTP layer) compare the hashes.  Raises
        :class:`CacheOverloadError` when the build-slot pool is
        exhausted past the wait budget.
        """
        if variant not in VARIANTS:
            raise KeyError(f"unknown site variant {variant!r}")
        key = (record.name, variant)
        entry = self._fresh(key, record)
        if entry is not None:
            self._bump("hits")
            return entry
        token_before = self._build_tokens.get(key, 0)
        with self._model_lock(record.name):
            entry = self._fresh(key, record)
            if entry is not None:
                # Another request built it while we waited on the lock.
                self._bump("coalesced")
                return entry
            if self._buildstore is not None:
                entry = self._buildstore.load_site(record, variant)
                if entry is not None:
                    # A peer process already built these bytes; adopt
                    # its artifact without spending a build slot.  This
                    # outranks the shared-failure check below: a fresh
                    # artifact on disk supersedes a local failed attempt.
                    self._bump("disk_hits")
                    with self._meta_lock:
                        self._build_errors.pop(key, None)
                    self._entries[key] = entry
                    return entry
            if self._build_tokens.get(key, 0) != token_before:
                # The build we waited on finished and the entry is
                # still stale: that attempt failed.  Share its outcome.
                self._bump("coalesced")
                return self._degraded(key, record, variant)
            if not self._build_slots.acquire(timeout=self._build_wait_s):
                self._bump("shed")
                raise CacheOverloadError(
                    record.name, variant, self.RETRY_AFTER_S)
            try:
                entry = self._build_locked(key, record, variant)
            except Exception as exc:
                self._bump("build_failures")
                with self._meta_lock:
                    self._build_errors[key] = \
                        f"{type(exc).__name__}: {exc}"
                return self._degraded(key, record, variant)
            else:
                with self._meta_lock:
                    self._build_errors.pop(key, None)
                self._entries[key] = entry
                return entry
            finally:
                self._build_slots.release()
                with self._meta_lock:
                    self._build_tokens[key] = \
                        self._build_tokens.get(key, 0) + 1

    def _build_locked(self, key: tuple[str, str], record: ModelRecord,
                      variant: str) -> SiteEntry:
        """One build attempt, fleet-coalesced when a store is wired.

        Without a build store this is exactly the pre-fork behavior.
        With one, the build runs under the cross-process file lock for
        this (hash, variant): losers of the lock race find the winner's
        artifact on the post-lock disk re-check and adopt it —
        ``rebuilds`` counts only builds that actually ran, fleet-wide.
        The flock dies with its process, so a SIGKILLed builder never
        wedges the key.
        """
        if self._buildstore is None:
            return self._attempt(key, record, variant)
        with self._buildstore.lock(
                "site", f"{record.content_hash}-{variant}"):
            entry = self._buildstore.load_site(record, variant)
            if entry is not None:
                self._bump("disk_hits")
                return entry
            entry = self._attempt(key, record, variant)
            if self._buildstore.store_site(entry):
                self._bump("disk_stores")
            return entry

    def _attempt(self, key: tuple[str, str], record: ModelRecord,
                 variant: str) -> SiteEntry:
        """Actually run one build (the only place ``rebuilds`` bumps)."""
        self._bump("rebuilds")
        with _REC.span("server.rebuild", model=record.name,
                       variant=variant):
            if FAULTS.enabled:
                FAULTS.hit(_REBUILD_FAULT)
            return self._build(key, record, variant)

    def _build(self, key: tuple[str, str], record: ModelRecord,
               variant: str) -> SiteEntry:
        """Build *variant*, going incremental for stale "multi" entries.

        Full builds always go through the module-level
        :func:`_build_variant` (the seam fault tests monkeypatch); the
        incremental path only engages when a previous entry *and* a
        dependency index recorded for that exact entry (content hashes
        match) are available.  Any other combination — including an
        index left over from a different baseline — falls back to a
        tracked full build, counted as ``incremental_fallback``.
        """
        if variant != "multi" or not incremental_enabled():
            return _build_variant(record, variant)
        previous = self._entries.get(key)
        with self._meta_lock:
            stored = self._dep_indexes.get(key)
        if previous is not None and stored is not None:
            stored_hash, index = stored
            if stored_hash == previous.content_hash:
                return self._build_incremental(key, record, previous, index)
            # The index describes some other build than the entry whose
            # bytes we would reuse (e.g. state reloaded after a restart):
            # applying the diff would republish against the wrong
            # baseline, so rebuild cold instead.
            self._bump("incremental_fallback")
        return self._build_tracked(key, record)

    def _build_tracked(self, key: tuple[str, str],
                       record: ModelRecord) -> SiteEntry:
        """Full multi build, tracked so the *next* rebuild can be
        incremental.  Called with the model lock held."""
        tracker = _tracking.ReadTracker(classify_node)
        with _tracking.installed(tracker):
            entry = _build_variant(record, "multi")
        page_names = sorted(
            name for name in entry.pages
            if name.endswith(".html") and name != PROFILE_PAGE)
        # ETags are quoted sha256 of the UTF-8 bytes — exactly the text
        # hashes the index stores, so no page is decoded or re-hashed.
        index = build_index(
            tracker, page_names,
            {name: entry.etags[name].strip('"') for name in page_names},
            stylesheet=MULTI_PAGE_XSL, baseline_model=record.model)
        with self._meta_lock:
            self._dep_indexes[key] = (entry.content_hash, index)
        return entry

    def _build_incremental(self, key: tuple[str, str], record: ModelRecord,
                           previous: SiteEntry,
                           index: DependencyIndex) -> SiteEntry:
        """Diff-driven rebuild reusing *previous*'s bytes for clean pages.

        ``republish_incremental`` degrades to a full publish internally
        on any diff/index miss (counted here as ``incremental_fallback``)
        but lets injected ``publish.diff`` faults propagate, so the
        caller's serve-stale degradation still gets exercised.
        """
        previous_pages = {name: data.decode("utf-8")
                          for name, data in previous.pages.items()}
        site, new_index, info = republish_incremental(
            record.model, previous_pages, index)
        pages = {name: text.encode("utf-8")
                 for name, text in site.pages.items()}
        entry = SiteEntry(
            name=record.name, variant="multi",
            content_hash=record.content_hash, revision=record.revision,
            pages=pages,
            etags={name: page_etag(data) for name, data in pages.items()},
            link_report=check_site(site), messages=site.messages)
        with self._meta_lock:
            self._dep_indexes[key] = (entry.content_hash, new_index)
        self._bump("incremental_fallback" if info["mode"] == "full"
                   else "incremental")
        return entry

    def _degraded(self, key: tuple[str, str], record: ModelRecord,
                  variant: str) -> SiteEntry:
        """Serve the stale entry after a failed build, or raise.

        Called with the model lock held.  The stale entry keeps its old
        content hash, which is how callers (and tests) recognise it.
        """
        stale = self._entries.get(key)
        if stale is not None:
            self._bump("stale_served")
            return stale
        with self._meta_lock:
            cause = self._build_errors.get(key, "build failed")
        raise SiteBuildError(record.name, variant, cause)

    def peek(self, name: str, variant: str) -> SiteEntry | None:
        """The cached entry, fresh or stale, without building (or None)."""
        return self._entries.get((name, variant))

    def build_error(self, name: str, variant: str) -> str | None:
        """The most recent build failure for (name, variant), if any.

        Non-None means the cache is in degraded mode for that key: the
        latest rebuild failed and requests are being served the stale
        entry (or errors).  Cleared by the next successful build.
        """
        with self._meta_lock:
            return self._build_errors.get((name, variant))

    def invalidate(self, name: str) -> int:
        """Drop every cached variant of *name*; returns entries removed.

        ``put`` does not need to call this — a changed content hash
        already invalidates — but DELETE uses it to free the memory of
        sites that can no longer be served.  Degraded-mode markers go
        with the entries: a re-created model starts clean.
        """
        removed = 0
        with self._model_lock(name):
            for variant in VARIANTS:
                if self._entries.pop((name, variant), None) is not None:
                    removed += 1
            with self._meta_lock:
                for variant in VARIANTS:
                    self._build_errors.pop((name, variant), None)
                    self._dep_indexes.pop((name, variant), None)
        if removed:
            self._bump("invalidations")
        return removed

    def dep_index_info(self) -> dict:
        """The dependency-index store in ``cache_info()`` shape.

        "Hits" are rebuilds the stored index actually served (diff-driven
        incremental republishes); "misses" are rebuilds that wanted the
        index but fell back to a cold tracked build.  Shaped like the
        ``functools.lru_cache`` views in :func:`repro.obs.cache_stats` so
        ``/stats`` and ``/metrics`` treat every cache uniformly.
        """
        with self._meta_lock:
            return {
                "hits": self._stats["incremental"],
                "misses": self._stats["incremental_fallback"],
                "currsize": len(self._dep_indexes),
                "maxsize": None,
            }

    def stats(self) -> dict:
        """Hit/rebuild/coalesced/invalidation counters plus sizes."""
        with self._meta_lock:
            stats = dict(self._stats)
        stats["entries"] = len(self._entries)
        stats["resident_bytes"] = sum(
            len(data) for entry in list(self._entries.values())
            for data in entry.pages.values())
        with self._meta_lock:
            stats["degraded_keys"] = ["/".join(key)
                                      for key in sorted(self._build_errors)]
        return stats
