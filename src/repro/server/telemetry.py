"""Always-on server telemetry: request ids, access logs, rolling SLOs.

This module glues the generic rolling layer (:mod:`repro.obs.rolling`,
:mod:`repro.obs.slo`, :mod:`repro.obs.ids`) onto the repository server
(DESIGN.md §15).  Unlike the PR 3 profiler it is **on by default** —
the hot-path budget is a ULID mint plus a handful of dict increments
under one short lock per request, gated to stay within 5% of the clean
R5 throughput by ``benchmarks/bench_o8_telemetry.py``.

Wiring:

* :meth:`ServerTelemetry.begin` / :meth:`~ServerTelemetry.finish`
  bracket every request in :meth:`repro.server.app.ModelRepositoryApp
  .handle`: an id is minted (or adopted from a well-behaved
  ``X-Goldcase-Request-Id`` the client sent), the request context is
  installed in a thread-local, and on finish the rolling window gains
  counters (``http.requests``, ``http.status.<class>``, per-model,
  per-flag) plus a latency observation, and one JSON access-log line
  is emitted when a sink is configured.
* The *flags* on that context come from the layers below without any
  plumbing through return values: :func:`mark` is called by the site
  cache on hits/rebuilds/coalesces/stale/shed, and the fault registry's
  fire listener (installed at import) appends every fault point that
  fired while this thread was handling the request.  Both degrade to
  no-ops outside a request.
* Telemetry is per-:class:`~repro.server.app.ModelRepositoryApp`
  (tests isolate cleanly); only the thread-local *context* is module
  global, which is what lets cache code annotate whichever app is
  handling the current thread's request.

Disable with ``GOLDCASE_NO_TELEMETRY=1`` (or ``set_enabled(False)``)
to benchmark the bare serving path; everything above degrades to a
single flag check per request.
"""

from __future__ import annotations

import json
import threading
import time
from time import perf_counter

from ..faults import set_fire_listener
from ..obs.ids import RequestIdGenerator, is_request_id
from ..obs.rolling import WINDOWS, ShardedRollingWindow
from ..obs.slo import default_slos

__all__ = [
    "ServerTelemetry",
    "RequestContext",
    "current_context",
    "mark",
    "mark_model",
]

#: Status classes exposed as counters (``http.status.2xx`` ...).
_STATUS_CLASSES = ("1xx", "2xx", "3xx", "4xx", "5xx")

#: status // 100 -> counter name, precomputed off the hot path.
_STATUS_COUNTERS = {index + 1: f"http.status.{name}"
                    for index, name in enumerate(_STATUS_CLASSES)}

_LOCAL = threading.local()


def _coarse_ms() -> int:
    """Wall milliseconds quantized to 64 ms, for per-thread minting.

    A ULID's timestamp prefix re-encodes only when the generator's
    clock ticks to a new value; at a few hundred requests per second
    per handler thread an exact clock ticks on *every* mint, so the
    per-thread generators trade 64 ms of id-timestamp resolution for a
    ~95% prefix-cache hit rate.  Ids stay strictly increasing per
    generator (the in-tick path increments the payload), and access-log
    lines carry the exact wall time separately.
    """
    return int(time.time() * 1000) & -64


class _ThreadState:
    """Everything telemetry keeps per handler thread, in one object.

    ``threading.local`` attribute access costs real time on the hot
    path (a dict lookup against the thread state per attribute); one
    state object means ``begin``/``finish`` pay it once per call
    instead of once per field.  The scratch dicts are reused across
    requests and the id generator is per-thread so minting never
    touches a lock another thread can hold.
    """

    __slots__ = ("ctx", "counters", "generator", "shard", "shard_window",
                 "free")

    def __init__(self) -> None:
        self.ctx: RequestContext | None = None
        self.counters: dict[str, int] = {}
        self.generator: RequestIdGenerator | None = None
        #: One recycled RequestContext: ``finish`` parks the context it
        #: just closed and the next ``begin`` on this thread refills it
        #: instead of allocating.  Safe because a context's useful life
        #: ends at ``finish`` — nothing in the server holds one after.
        self.free: RequestContext | None = None
        #: This thread's shard of *shard_window*, cached so the finish
        #: path skips the sharded window's own thread-local lookup.
        #: Keyed by window identity because one thread can serve many
        #: apps (tests spin servers up and down freely).
        self.shard = None
        self.shard_window = None


def _state() -> _ThreadState:
    state = getattr(_LOCAL, "state", None)
    if state is None:
        state = _LOCAL.state = _ThreadState()
    return state


def current_context() -> "RequestContext | None":
    """The request context active on this thread, if any."""
    state = getattr(_LOCAL, "state", None)
    return state.ctx if state is not None else None


def mark(flag: str) -> None:
    """Tag the current request with *flag* (no-op outside a request).

    Called by the site cache (``cache_hit``, ``rebuild``, ``coalesced``,
    ``stale_served``, ``shed``, ...) so access-log lines say what the
    cache did for each request without threading state through returns.
    Flags outside :data:`ServerTelemetry.FLAG_COUNTERS` are ignored —
    the per-request representation is a bitmask over the known set,
    which keeps the hot path allocation-free.
    """
    state = getattr(_LOCAL, "state", None)
    ctx = state.ctx if state is not None else None
    if ctx is not None:
        ctx.flag_bits |= _FLAG_BITS.get(flag, 0)


def mark_model(name: str) -> None:
    """Attribute the current request to model *name* (no-op outside)."""
    state = getattr(_LOCAL, "state", None)
    ctx = state.ctx if state is not None else None
    if ctx is not None:
        ctx.model = name


def _on_fault_fire(point: str, mode: str) -> None:
    state = getattr(_LOCAL, "state", None)
    ctx = state.ctx if state is not None else None
    if ctx is not None:
        if ctx.faults is None:
            ctx.faults = []
        ctx.faults.append(point)


# One process-wide listener: contexts are thread-local, so attribution
# is correct regardless of how many apps share the fault registry.
set_fire_listener(_on_fault_fire)


class RequestContext:
    """Mutable per-request state between ``begin`` and ``finish``.

    Flags live in a bitmask and the fault list is allocated only when
    a fault actually fires: besides the context itself, a clean request
    allocates no GC-tracked containers, which matters because the
    dominant telemetry cost at full request rate is not the metric
    arithmetic but the extra garbage-collector passes over the server's
    large cached-page heap.
    """

    __slots__ = ("telemetry", "state", "request_id", "method", "path",
                 "flag_bits", "faults", "model", "start")

    def __init__(self, telemetry: "ServerTelemetry", state: "_ThreadState",
                 request_id: str, method: str, path: str) -> None:
        self.telemetry = telemetry
        #: The minting thread's state; ``finish`` runs on the same
        #: thread (the bracket is synchronous), so carrying it here
        #: saves the second ``threading.local`` lookup per request.
        self.state = state
        self.request_id = request_id
        self.method = method
        self.path = path
        self.flag_bits = 0
        self.faults: list[str] | None = None
        self.model: str | None = None
        self.start = perf_counter()

    @property
    def flags(self) -> set[str]:
        """The marked flags as names (tests and introspection)."""
        return {name for name, bit in _FLAG_BITS.items()
                if self.flag_bits & bit}


class ServerTelemetry:
    """One app's always-on metric surface; see the module docstring."""

    #: Rolling counter/sketch names flagged requests increment, keyed
    #: by the flag the cache (or httpd) marks.
    FLAG_COUNTERS = {
        "cache_hit": "cache.hit",
        "rebuild": "cache.rebuild",
        "coalesced": "cache.coalesced",
        "stale_served": "http.stale",
        "shed": "http.shed",
        "incremental": "cache.incremental",
        "incremental_fallback": "cache.incremental_fallback",
        "build_failure": "cache.build_failure",
        "invalidation": "cache.invalidation",
        "not_modified": "http.not_modified",
        "transport_error": "http.transport_error",
        "olap_hit": "olap.hit",
        "olap_executed": "olap.executed",
        "olap_coalesced": "olap.coalesced",
        # Appended after PR 9 (bit positions are enumeration order —
        # only ever add at the end): the on-disk build-store tier.
        "disk_hit": "cache.disk_hit",
        "disk_store": "cache.disk_store",
    }

    def __init__(self, *, enabled: bool | None = None,
                 clock=time.monotonic,
                 wall_clock=time.time,
                 id_generator: RequestIdGenerator | None = None,
                 access_log=None,
                 slos: list | None = None,
                 window_s: int = WINDOWS[-1]) -> None:
        if enabled is None:
            import os

            enabled = not os.environ.get("GOLDCASE_NO_TELEMETRY")
        self.enabled = enabled
        # Sharded per handler thread: the armed hot path never waits on
        # a lock another thread holds (see ShardedRollingWindow).
        self.window = ShardedRollingWindow(window_s=window_s, clock=clock)
        self.wall_clock = wall_clock
        #: None means "mint from a per-thread generator" — the shared
        #: generator's lock showed up as contention under eight handler
        #: threads; injected generators (tests) stay shared.
        self.request_ids = id_generator
        self.slos = list(slos) if slos is not None else default_slos()
        #: A file-like (``write(str)``) or callable sink for JSON
        #: access-log lines; None disables access logging.
        self.access_log = access_log
        self._log_lock = threading.Lock()
        #: model name -> interned "model.<name>" counter key; saves an
        #: f-string per request on the finish path.
        self._model_counters: dict[str, str] = {}
        #: (status, flag_bits, model) -> tuple of counter names each
        #: fault-free request with that shape increments by one.  The
        #: shape space is tiny (a few statuses x a few flag combos x
        #: the served models), so after warm-up the finish path reads
        #: one cached tuple instead of assembling a dict per request.
        self._hit_names: dict[tuple, tuple] = {}

    def set_enabled(self, enabled: bool) -> None:
        """Flip the whole layer (benchmark kill switch)."""
        self.enabled = enabled

    # -- the request bracket -----------------------------------------------

    def begin(self, method: str, path: str,
              client_id: str | None = None) -> RequestContext | None:
        """Open a request context; returns None when disabled.

        A syntactically valid client-supplied id is adopted verbatim —
        that is how one logical client request keeps a single identity
        across retries — anything else gets a fresh ULID.
        """
        if not self.enabled:
            return None
        state = _state()
        if client_id is not None and is_request_id(client_id.upper()):
            request_id = client_id.upper()
        else:
            generator = self.request_ids
            if generator is None:
                generator = state.generator
                if generator is None:
                    generator = state.generator = RequestIdGenerator(
                        clock_ms=_coarse_ms)
            request_id = generator()
        ctx = state.free
        if ctx is None:
            ctx = RequestContext(self, state, request_id, method, path)
        else:
            state.free = None
            ctx.telemetry = self
            ctx.state = state
            ctx.request_id = request_id
            ctx.method = method
            ctx.path = path
            ctx.flag_bits = 0
            ctx.faults = None
            ctx.model = None
            ctx.start = perf_counter()
        state.ctx = ctx
        return ctx

    def finish(self, ctx: RequestContext, status: int,
               response_bytes: int) -> None:
        """Close *ctx*: roll counters, observe latency, log the line."""
        state = ctx.state
        if state.ctx is ctx:
            state.ctx = None
        duration_s = perf_counter() - ctx.start
        if ctx.faults is None:
            # Fault-free fast path (every request in normal operation):
            # the counter names for this request shape come from one
            # cache hit, and they land on this thread's shard directly
            # — no scratch dict, no per-request thread-local lookup.
            key = (status, ctx.flag_bits, ctx.model)
            names = self._hit_names.get(key)
            if names is None:
                names = self._hit_names[key] = self._counter_names(
                    status, ctx.flag_bits, ctx.model)
            window = self.window
            if state.shard_window is window:
                shard = state.shard
            else:
                shard = state.shard = window.shard_for_thread()
                state.shard_window = window
            shard.record_hit(
                names, "http.bytes" if response_bytes else None,
                response_bytes, "http.latency", duration_s)
        else:
            counters = state.counters
            counters.clear()
            for name in self._counter_names(status, ctx.flag_bits,
                                            ctx.model):
                counters[name] = 1
            if response_bytes:
                counters["http.bytes"] = response_bytes
            for point in ctx.faults:
                name = f"fault.{point}"
                counters[name] = counters.get(name, 0) + 1
            self.window.record(counters, {"http.latency": duration_s})
        if self.access_log is not None:
            self._log(ctx, status, response_bytes, duration_s)
        state.free = ctx

    def _counter_names(self, status: int, bits: int,
                       model: str | None) -> tuple:
        """The +1 counters a (status, flags, model) request rolls."""
        names = ["http.requests"]
        status_counter = _STATUS_COUNTERS.get(status // 100)
        if status_counter is not None:
            names.append(status_counter)
        if bits:
            for bit, counter in _FLAG_COUNTER_BITS:
                if bits & bit:
                    names.append(counter)
        if model is not None:
            model_counters = self._model_counters
            name = model_counters.get(model)
            if name is None:
                name = model_counters[model] = f"model.{model}"
            names.append(name)
        return tuple(names)

    def _log(self, ctx: RequestContext, status: int, response_bytes: int,
             duration_s: float) -> None:
        record = {
            "ts": round(self.wall_clock(), 6),
            "id": ctx.request_id,
            "method": ctx.method,
            "path": ctx.path,
            "status": status,
            "bytes": response_bytes,
            "duration_ms": round(duration_s * 1000.0, 3),
        }
        if ctx.model is not None:
            record["model"] = ctx.model
        if ctx.flag_bits:
            record["flags"] = sorted(name for name, bit in _FLAG_BITS.items()
                                     if ctx.flag_bits & bit)
        if ctx.faults:
            record["faults"] = ctx.faults
        line = json.dumps(record, sort_keys=True) + "\n"
        sink = self.access_log
        with self._log_lock:
            if callable(sink):
                sink(line)
            else:
                sink.write(line)
                flush = getattr(sink, "flush", None)
                if flush is not None:
                    flush()

    def transport_event(self, method: str, path: str, status: int,
                        message: str) -> str | None:
        """Record a transport-level rejection the app never saw.

        The httpd layer calls this for 400/408/413/500 responses it
        fabricates itself (bad framing, stalled bodies, crashed app) so
        those exchanges still get ids, counters, and access-log lines.
        Returns the minted id (None when disabled).
        """
        ctx = self.begin(method, path)
        if ctx is None:
            return None
        ctx.flag_bits |= _FLAG_BITS["transport_error"]
        self.finish(ctx, status, 0)
        return ctx.request_id

    # -- reading -----------------------------------------------------------

    def slo_report(self) -> list[dict]:
        """Every configured SLO evaluated now, as JSON-ready dicts."""
        return [slo.evaluate(self.window).as_dict() for slo in self.slos]

    def top_models(self, n: int = 10) -> list[tuple[str, int]]:
        """The *n* most-requested models (lifetime), busiest first."""
        totals = self.window.totals()
        models = [(name[len("model."):], count)
                  for name, count in totals.items()
                  if name.startswith("model.")]
        models.sort(key=lambda pair: (-pair[1], pair[0]))
        return models[:n]

    def snapshot(self) -> dict:
        """The dashboard's view: windows, SLOs, top models, sparkline."""
        snap = self.window.snapshot()
        snap["slos"] = self.slo_report()
        snap["top_models"] = self.top_models()
        snap["series_60s"] = self.window.series("http.requests", 60)
        return snap

    # -- /metrics exposition -----------------------------------------------

    def metrics_text(self, *, caches: dict | None = None,
                     site_cache: dict | None = None,
                     extra_gauges: dict | None = None,
                     default_labels: dict | None = None) -> str:
        """Prometheus text exposition (version 0.0.4) of everything.

        Lifetime counters become ``_total`` series (monotonic by
        construction — the chaos runner scrapes twice and asserts they
        never step backwards), windowed rates and SLO states become
        gauges, and the cumulative latency sketch becomes a classic
        cumulative-``le`` histogram.

        *default_labels* is stamped onto every sample (explicit labels
        win on collision).  The pre-fork server passes
        ``{"worker": "<id>"}`` so N workers' expositions stay distinct
        series when one scraper reads them through the shared port.
        """
        window = self.window
        lines: list[str] = []

        def header(name: str, kind: str, help_text: str) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        def sample(name: str, value, labels: dict | None = None) -> None:
            merged = dict(default_labels) if default_labels else {}
            if labels:
                merged.update(labels)
            if merged:
                inner = ",".join(
                    f'{key}="{_escape(str(val))}"'
                    for key, val in sorted(merged.items()))
                lines.append(f"{name}{{{inner}}} {_number(value)}")
            else:
                lines.append(f"{name} {_number(value)}")

        header("goldcase_uptime_seconds", "gauge",
               "Seconds since the telemetry window started.")
        sample("goldcase_uptime_seconds", window.uptime_s())

        totals = window.totals()
        flat = {name: value for name, value in totals.items()
                if not name.startswith(("model.", "fault."))}
        for name in sorted(flat):
            metric = "goldcase_" + _sanitize(name) + "_total"
            header(metric, "counter", f"Lifetime count of {name}.")
            sample(metric, flat[name])
        models = {name[len("model."):]: value
                  for name, value in totals.items()
                  if name.startswith("model.")}
        if models:
            header("goldcase_model_requests_total", "counter",
                   "Lifetime requests attributed to each model.")
            for model in sorted(models):
                sample("goldcase_model_requests_total", models[model],
                       {"model": model})
        faults = {name[len("fault."):]: value
                  for name, value in totals.items()
                  if name.startswith("fault.")}
        if faults:
            header("goldcase_fault_fires_total", "counter",
                   "Lifetime injected-fault fires attributed to "
                   "requests.")
            for point in sorted(faults):
                sample("goldcase_fault_fires_total", faults[point],
                       {"point": point})

        header("goldcase_request_rate", "gauge",
               "Requests per second over each trailing window.")
        header("goldcase_error_rate", "gauge",
               "5xx responses per second over each trailing window.")
        for window_s in WINDOWS:
            label = {"window": f"{window_s}s"}
            counters = window.window_counters(window_s)
            sample("goldcase_request_rate",
                   counters.get("http.requests", 0) / window_s, label)
            sample("goldcase_error_rate",
                   counters.get("http.status.5xx", 0) / window_s, label)

        for name in window.sketch_names():
            metric = "goldcase_" + _sanitize(name) + "_seconds"
            header(metric, "summary",
                   f"Windowed quantiles of {name} (seconds).")
            for window_s in WINDOWS:
                sketch = window.window_sketch(name, window_s)
                if not sketch.count:
                    continue
                for q in (0.5, 0.9, 0.99):
                    sample(metric, sketch.quantile(q),
                           {"window": f"{window_s}s", "quantile": str(q)})
            total_sketch = window.total_sketch(name)
            header(metric + "_hist", "histogram",
                   f"Lifetime histogram of {name} (seconds).")
            for upper, cumulative in total_sketch.cumulative_buckets():
                sample(metric + "_hist_bucket", cumulative,
                       {"le": f"{upper:.9g}"})
            sample(metric + "_hist_bucket", total_sketch.count,
                   {"le": "+Inf"})
            sample(metric + "_hist_sum", total_sketch.total)
            sample(metric + "_hist_count", total_sketch.count)

        if self.slos:
            header("goldcase_slo_ok", "gauge",
                   "1 when the SLO holds over its window, else 0.")
            header("goldcase_slo_burn", "gauge",
                   "Error-budget burn rate (1.0 = spending exactly the "
                   "budget).")
            header("goldcase_slo_value", "gauge",
                   "The measured signal each SLO constrains.")
            for status in self.slo_report():
                label = {"slo": status["name"],
                         "window": f"{status['window_s']}s"}
                sample("goldcase_slo_ok", 1 if status["ok"] else 0, label)
                sample("goldcase_slo_burn", status["burn"], label)
                sample("goldcase_slo_value", status["value"], label)

        if site_cache:
            monotonic = {key: value for key, value in site_cache.items()
                         if isinstance(value, int)
                         and key not in ("entries", "resident_bytes")}
            for key in sorted(monotonic):
                metric = "goldcase_site_" + _sanitize(key) + "_total"
                header(metric, "counter", f"Site cache {key}.")
                sample(metric, monotonic[key])
            for key in ("entries", "resident_bytes"):
                if key in site_cache:
                    metric = "goldcase_site_" + _sanitize(key)
                    header(metric, "gauge", f"Site cache {key}.")
                    sample(metric, site_cache[key])

        if caches:
            header("goldcase_cache_hits_total", "counter",
                   "Engine cache hits (compile/index caches).")
            header("goldcase_cache_misses_total", "counter",
                   "Engine cache misses (compile/index caches).")
            header("goldcase_cache_size", "gauge",
                   "Current engine cache entry counts.")
            for name in sorted(caches):
                info = caches[name]
                label = {"cache": name}
                sample("goldcase_cache_hits_total", info["hits"], label)
                sample("goldcase_cache_misses_total", info["misses"], label)
                sample("goldcase_cache_size", info["currsize"], label)

        for name, value in sorted((extra_gauges or {}).items()):
            metric = "goldcase_" + _sanitize(name)
            header(metric, "gauge", f"{name}.")
            sample(metric, value)

        return "\n".join(lines) + "\n"


#: flag name -> bit in ``RequestContext.flag_bits``; the per-request
#: flag representation is an int so marking costs an ``or``, not a set.
_FLAG_BITS = {flag: 1 << index for index, flag
              in enumerate(ServerTelemetry.FLAG_COUNTERS)}

#: (bit, rolling counter name) pairs for the finish path.
_FLAG_COUNTER_BITS = tuple(
    (1 << index, counter) for index, counter
    in enumerate(ServerTelemetry.FLAG_COUNTERS.values()))


def _sanitize(name: str) -> str:
    return "".join(char if char.isalnum() else "_" for char in name)


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"") \
        .replace("\n", r"\n")


def _number(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))
