"""The on-disk build store: one artifact per content hash, fleet-wide.

The pre-fork server (DESIGN.md §17) runs N worker processes against one
repository.  In-memory caches stop being shared the moment the server
forks, so without a shared tier every worker would re-render every site
— N transforms per invalidation instead of one.  This module is that
shared tier, and it is safe *by construction*: PR 5's Hypothesis tests
pin that every served byte and ETag is a pure function of the model's
content hash, so an artifact written by one process is byte-identical
to what any other process would have built.

Three cooperating pieces:

* **Content-addressed artifacts.**  Built sites are stored under
  ``site/<hash>-<variant>.json`` and materialized OLAP aggregates under
  ``olap/<hash>-<seed>-<querykey>.json`` — keyed by the model's SHA-256
  content hash (plus the query identity), never by record name or
  revision, so identical bytes share one artifact no matter which model
  name they were uploaded under.  Artifacts are written to a temp file
  and published with :func:`os.rename` — readers see either nothing or
  a complete artifact, never a torn write.  The store is append-only:
  a DELETE drops the *pointer*, not artifacts another record with the
  same bytes may still be serving (GC is future work).
* **Cross-process build locks.**  :meth:`BuildStore.lock` wraps
  ``flock(2)`` on a per-key lock file.  The in-process caches already
  coalesce per-model builds behind ``threading.Lock``; routing their
  build paths through this layer extends the contract fleet-wide: a
  16-client burst across 4 workers still executes exactly one build,
  because every builder re-checks the disk tier *after* acquiring the
  file lock and finds the winner's artifact.  ``flock`` locks die with
  their process, so a SIGKILLed worker never wedges the fleet.
* **The shared model store.**  :class:`SharedModelStore` persists every
  validated upload as a content-addressed blob plus a tiny per-name
  pointer file (atomic rename).  Workers notice a peer's PUT by
  ``stat``-ing the pointer on lookup — one syscall on the hot path —
  and lazily re-ingest the blob, so a PUT acknowledged by any worker is
  visible to every worker's next request (read-your-writes across the
  fleet), and a respawned worker warm-starts from disk instead of an
  empty store.

``fleet/`` holds per-worker telemetry snapshots (tiny JSON files) the
``/metrics`` endpoint aggregates into the supervisor view; see
:mod:`repro.server.workers`.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading

from ..mdm import document_to_model
from ..web.linkcheck import LinkReport
from ..xml.parser import parse as parse_xml
from .store import ModelRecord, ModelStore

try:  # POSIX only; the store degrades to in-process locking elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

__all__ = ["BuildStore", "SharedModelStore"]

#: Schema version stamped into every artifact; a mismatch is treated as
#: a miss (the worker rebuilds), so upgrades never deserialize garbage.
ARTIFACT_VERSION = 1


def _atomic_write(path: str, data: bytes) -> None:
    """Publish *data* at *path* via a same-directory temp + rename."""
    directory = os.path.dirname(path)
    temp = os.path.join(
        directory, f".tmp-{os.getpid()}-{threading.get_ident()}-"
                   f"{os.path.basename(path)}")
    with open(temp, "wb") as handle:
        handle.write(data)
    os.rename(temp, path)


def _key_digest(key: str) -> str:
    """Filesystem-safe digest for arbitrary lock/artifact key strings."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]


class BuildStore:
    """Content-addressed artifacts + cross-process locks under one root."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        for sub in ("site", "olap", "models", "models/blobs",
                    "locks", "fleet"):
            os.makedirs(os.path.join(self.root, sub), exist_ok=True)
        self._stats_lock = threading.Lock()
        self._stats = {"site_loads": 0, "site_misses": 0, "site_stores": 0,
                       "agg_loads": 0, "agg_misses": 0, "agg_stores": 0,
                       "lock_acquires": 0}
        #: Fallback when flock is unavailable: per-path in-process locks
        #: (coalesces within one process, which is all there is then).
        self._local_locks: dict[str, threading.Lock] = {}

    def _bump(self, stat: str) -> None:
        with self._stats_lock:
            self._stats[stat] += 1

    def stats(self) -> dict:
        with self._stats_lock:
            return dict(self._stats)

    # -- cross-process locks ----------------------------------------------

    @contextlib.contextmanager
    def lock(self, kind: str, key: str):
        """An exclusive fleet-wide lock for one build key.

        Blocks until acquired.  ``flock`` locks are owned by the file
        descriptor, released on close *and* on process death, so a
        worker SIGKILLed mid-build cannot leave the key wedged — the
        next builder simply wins the lock and rebuilds.
        """
        path = os.path.join(self.root, "locks",
                            f"{kind}-{_key_digest(key)}.lock")
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            with self._stats_lock:
                local = self._local_locks.setdefault(
                    path, threading.Lock())
            with local:
                self._bump("lock_acquires")
                yield
            return
        handle = open(path, "a+b")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            self._bump("lock_acquires")
            yield
        finally:
            # Closing drops the flock atomically with the fd.
            handle.close()

    # -- site artifacts ----------------------------------------------------

    def _site_path(self, content_hash: str, variant: str) -> str:
        return os.path.join(self.root, "site",
                            f"{content_hash}-{variant}.json")

    def store_site(self, entry) -> bool:
        """Persist one built :class:`SiteEntry`.

        The artifact is keyed purely by ``(content_hash, variant)``;
        the record name and revision are serving-time identity and get
        rebound on load, so two models holding identical bytes share
        one artifact.  Writes unconditionally: callers only build (and
        therefore store) after a load miss under the build lock, so
        the only thing ever overwritten is a corrupt or
        version-mismatched artifact — which *should* be replaced.
        """
        path = self._site_path(entry.content_hash, entry.variant)
        report = entry.link_report
        payload = {
            "version": ARTIFACT_VERSION,
            "kind": "site",
            "content_hash": entry.content_hash,
            "variant": entry.variant,
            "pages": {name: data.decode("utf-8")
                      for name, data in entry.pages.items()},
            "etags": dict(entry.etags),
            "messages": list(entry.messages),
            "link_report": None if report is None else {
                "broken_pages": [list(pair)
                                 for pair in report.broken_pages],
                "broken_anchors": [list(pair)
                                   for pair in report.broken_anchors],
                "orphans": list(report.orphans),
                "total_links": report.total_links,
            },
        }
        _atomic_write(path, (json.dumps(payload, sort_keys=True,
                                        separators=(",", ":"))
                             + "\n").encode("utf-8"))
        self._bump("site_stores")
        return True

    def load_site(self, record: ModelRecord, variant: str):
        """The stored entry for *record*'s bytes, rebound to its name.

        Returns None on a miss, an unreadable artifact, or a version
        mismatch — every failure mode degrades to "rebuild locally".
        """
        from .cache import SiteEntry  # circular at module import time

        path = self._site_path(record.content_hash, variant)
        try:
            with open(path, "rb") as handle:
                payload = json.loads(handle.read().decode("utf-8"))
        except (OSError, ValueError):
            self._bump("site_misses")
            return None
        if payload.get("version") != ARTIFACT_VERSION or \
                payload.get("content_hash") != record.content_hash:
            self._bump("site_misses")
            return None
        report_data = payload.get("link_report")
        report = None
        if report_data is not None:
            report = LinkReport(
                broken_pages=[tuple(pair)
                              for pair in report_data["broken_pages"]],
                broken_anchors=[tuple(pair)
                                for pair in report_data["broken_anchors"]],
                orphans=list(report_data["orphans"]),
                total_links=report_data["total_links"])
        self._bump("site_loads")
        return SiteEntry(
            name=record.name, variant=variant,
            content_hash=record.content_hash, revision=record.revision,
            pages={name: text.encode("utf-8")
                   for name, text in payload["pages"].items()},
            etags=dict(payload["etags"]),
            link_report=report, messages=list(payload["messages"]))

    # -- OLAP aggregate artifacts ------------------------------------------

    def _agg_path(self, content_hash: str, seed: int,
                  query_key: str) -> str:
        return os.path.join(
            self.root, "olap",
            f"{content_hash}-{seed}-{_key_digest(query_key)}.json")

    def store_aggregate(self, entry) -> bool:
        """Persist one materialized aggregate (see :meth:`store_site`
        for why this overwrites unconditionally)."""
        path = self._agg_path(entry.content_hash, entry.seed,
                              entry.query_key)
        payload = {
            "version": ARTIFACT_VERSION,
            "kind": "aggregate",
            "content_hash": entry.content_hash,
            "seed": entry.seed,
            "query_key": entry.query_key,
            "renderings": {fmt: data.decode("utf-8")
                           for fmt, data in entry.renderings.items()},
            "etags": dict(entry.etags),
            "row_count": entry.row_count,
            "sliced_out": entry.sliced_out,
        }
        _atomic_write(path, (json.dumps(payload, sort_keys=True,
                                        separators=(",", ":"))
                             + "\n").encode("utf-8"))
        self._bump("agg_stores")
        return True

    def load_aggregate(self, name: str, content_hash: str, seed: int,
                       query_key: str):
        """The stored aggregate, rebound to *name*; None on any miss."""
        from ..olap.service.aggcache import AggregateEntry

        path = self._agg_path(content_hash, seed, query_key)
        try:
            with open(path, "rb") as handle:
                payload = json.loads(handle.read().decode("utf-8"))
        except (OSError, ValueError):
            self._bump("agg_misses")
            return None
        if payload.get("version") != ARTIFACT_VERSION or \
                payload.get("content_hash") != content_hash or \
                payload.get("query_key") != query_key:
            self._bump("agg_misses")
            return None
        self._bump("agg_loads")
        return AggregateEntry(
            name=name, content_hash=content_hash, seed=seed,
            query_key=query_key,
            renderings={fmt: text.encode("utf-8")
                        for fmt, text in payload["renderings"].items()},
            etags=dict(payload["etags"]),
            row_count=payload["row_count"],
            sliced_out=payload["sliced_out"])

    # -- the shared model tier ---------------------------------------------

    def _pointer_path(self, name: str) -> str:
        return os.path.join(self.root, "models", f"{name}.current")

    def _blob_path(self, content_hash: str) -> str:
        return os.path.join(self.root, "models", "blobs",
                            f"{content_hash}.xml")

    def write_model(self, name: str, xml_bytes: bytes,
                    content_hash: str) -> tuple[int, bool]:
        """Publish *name* → *content_hash*; returns (revision, created).

        Callers must already hold ``lock("model", name)`` — the pointer
        read-modify-write (revision increment) is not atomic on its own.
        """
        blob = self._blob_path(content_hash)
        if not os.path.exists(blob):
            _atomic_write(blob, xml_bytes)
        pointer = self.read_pointer(name)
        revision = 1 if pointer is None else pointer["revision"] + 1
        _atomic_write(
            self._pointer_path(name),
            (json.dumps({"hash": content_hash, "revision": revision},
                        sort_keys=True) + "\n").encode("utf-8"))
        return revision, pointer is None

    def pointer_stat(self, name: str) -> tuple[int, int] | None:
        """A cheap freshness key for *name*'s pointer, or None.

        ``(st_ino, st_mtime_ns)`` — pointer updates are atomic renames,
        so any update changes the inode; one ``stat`` per lookup is the
        whole cross-process freshness protocol.
        """
        try:
            status = os.stat(self._pointer_path(name))
        except OSError:
            return None
        return status.st_ino, status.st_mtime_ns

    def read_pointer(self, name: str) -> dict | None:
        """The pointer payload ``{"hash", "revision"}`` or None."""
        try:
            with open(self._pointer_path(name), "rb") as handle:
                return json.loads(handle.read().decode("utf-8"))
        except (OSError, ValueError):
            return None

    def read_model_bytes(self, content_hash: str) -> bytes | None:
        try:
            with open(self._blob_path(content_hash), "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def delete_model(self, name: str) -> bool:
        """Unpublish *name* (pointer only; blobs are content-shared)."""
        try:
            os.unlink(self._pointer_path(name))
        except OSError:
            return False
        return True

    def model_names(self) -> list[str]:
        directory = os.path.join(self.root, "models")
        return sorted(
            entry[:-len(".current")] for entry in os.listdir(directory)
            if entry.endswith(".current"))

    # -- fleet telemetry snapshots -----------------------------------------

    def write_fleet(self, worker_id: int, payload: dict) -> None:
        """Publish one worker's telemetry snapshot (atomic, tiny)."""
        _atomic_write(
            os.path.join(self.root, "fleet", f"worker-{worker_id}.json"),
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"))

    def clear_fleet(self) -> None:
        """Drop every worker snapshot (supervisor start on a reused
        store: stale snapshots from a previous fleet must not count)."""
        directory = os.path.join(self.root, "fleet")
        for entry in os.listdir(directory):
            if entry.endswith(".json"):
                with contextlib.suppress(OSError):
                    os.unlink(os.path.join(directory, entry))

    def read_fleet(self) -> dict[int, dict]:
        """Every worker's latest snapshot, keyed by worker id."""
        directory = os.path.join(self.root, "fleet")
        snapshots: dict[int, dict] = {}
        try:
            entries = os.listdir(directory)
        except OSError:
            return snapshots
        for entry in entries:
            if not (entry.startswith("worker-")
                    and entry.endswith(".json")):
                continue
            try:
                worker_id = int(entry[len("worker-"):-len(".json")])
                with open(os.path.join(directory, entry), "rb") as handle:
                    snapshots[worker_id] = json.loads(
                        handle.read().decode("utf-8"))
            except (OSError, ValueError):
                continue  # a snapshot mid-rename; next scrape sees it
        return snapshots


class SharedModelStore(ModelStore):
    """A :class:`ModelStore` whose truth lives in the build store.

    Uploads validate exactly like the in-memory store (same pipeline,
    same diagnostics) and then publish blob + pointer to disk under the
    fleet-wide model lock.  Lookups ``stat`` the pointer file: when a
    peer process has published a newer version, the blob is re-ingested
    *without* re-running XSD validation — the bytes were validated by
    whichever worker accepted the PUT, and re-validating a peer's
    accepted upload on every propagation would put tens of milliseconds
    on the first request after each flip.
    """

    def __init__(self, buildstore: BuildStore) -> None:
        super().__init__()
        self.buildstore = buildstore
        #: name → pointer stat key the cached record was loaded under.
        self._stat_keys: dict[str, tuple[int, int]] = {}

    def _ingest_trusted(self, name: str, xml_bytes: bytes,
                        content_hash: str, revision: int) -> ModelRecord:
        document = parse_xml(xml_bytes)
        return ModelRecord(
            name=name, xml_bytes=xml_bytes, content_hash=content_hash,
            model=document_to_model(document), revision=revision)

    def put(self, name: str, xml_bytes: bytes) -> tuple[ModelRecord, bool]:
        model = self.ingest(name, xml_bytes)  # full validation pipeline
        digest = hashlib.sha256(xml_bytes).hexdigest()
        with self.buildstore.lock("model", name):
            revision, created = self.buildstore.write_model(
                name, bytes(xml_bytes), digest)
            stat_key = self.buildstore.pointer_stat(name)
        record = ModelRecord(
            name=name, xml_bytes=bytes(xml_bytes), content_hash=digest,
            model=model, revision=revision)
        with self._lock:
            self._records[name] = record
            if stat_key is not None:
                self._stat_keys[name] = stat_key
        return record, created

    def get(self, name: str) -> ModelRecord | None:
        stat_key = self.buildstore.pointer_stat(name)
        if stat_key is None:
            with self._lock:
                self._records.pop(name, None)
                self._stat_keys.pop(name, None)
            return None
        with self._lock:
            record = self._records.get(name)
            if record is not None and \
                    self._stat_keys.get(name) == stat_key:
                return record
        pointer = self.buildstore.read_pointer(name)
        if pointer is None:  # deleted between stat and read
            return None
        with self._lock:
            record = self._records.get(name)
        if record is not None and record.content_hash == pointer["hash"]:
            # Same bytes, new pointer (a peer's no-op re-upload): keep
            # the parsed model, adopt the new revision and stat key.
            record = ModelRecord(
                name=name, xml_bytes=record.xml_bytes,
                content_hash=record.content_hash, model=record.model,
                revision=pointer["revision"])
        else:
            xml_bytes = self.buildstore.read_model_bytes(pointer["hash"])
            if xml_bytes is None:
                return None
            record = self._ingest_trusted(
                name, xml_bytes, pointer["hash"], pointer["revision"])
        with self._lock:
            self._records[name] = record
            self._stat_keys[name] = stat_key
        return record

    def delete(self, name: str) -> bool:
        with self.buildstore.lock("model", name):
            existed = self.buildstore.delete_model(name)
        with self._lock:
            self._records.pop(name, None)
            self._stat_keys.pop(name, None)
        return existed

    def names(self) -> list[str]:
        return self.buildstore.model_names()

    def listing(self) -> list[dict]:
        summaries = []
        for name in self.names():
            record = self.get(name)
            if record is not None:
                summaries.append(record.summary())
        return summaries
