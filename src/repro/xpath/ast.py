"""Abstract syntax tree for XPath 1.0 expressions.

Nodes are plain frozen dataclasses; evaluation lives in
:mod:`repro.xpath.evaluator` so the AST can also be reused by the XSLT
pattern matcher, which interprets location paths in reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Expr",
    "NumberLiteral",
    "StringLiteral",
    "VariableReference",
    "FunctionCall",
    "BinaryOp",
    "UnaryMinus",
    "UnionExpr",
    "PathExpr",
    "LocationPath",
    "Step",
    "NodeTest",
    "NameTest",
    "NodeTypeTest",
    "PITest",
    "FilterExpr",
]


class Expr:
    """Base class for all expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class NumberLiteral(Expr):
    """A numeric literal such as ``3.14``."""

    value: float


@dataclass(frozen=True)
class StringLiteral(Expr):
    """A quoted string literal."""

    value: str


@dataclass(frozen=True)
class VariableReference(Expr):
    """``$qname`` — resolved against the evaluation context."""

    name: str


@dataclass(frozen=True)
class FunctionCall(Expr):
    """``name(arg, ...)`` — resolved against the function library."""

    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary operation: or/and/=/!=/<,<=,>,>=/+,-,*,div,mod."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryMinus(Expr):
    """Unary negation."""

    operand: Expr


@dataclass(frozen=True)
class UnionExpr(Expr):
    """``a | b`` — the node-set union."""

    left: Expr
    right: Expr


class NodeTest:
    """Base class for the node test of a step."""

    __slots__ = ()


@dataclass(frozen=True)
class NameTest(NodeTest):
    """``name``, ``prefix:name``, ``*`` or ``prefix:*``."""

    name: str  # '*' means any

    @property
    def is_wildcard(self) -> bool:
        return self.name == "*" or self.name.endswith(":*")


@dataclass(frozen=True)
class NodeTypeTest(NodeTest):
    """``node()``, ``text()``, ``comment()``."""

    node_type: str


@dataclass(frozen=True)
class PITest(NodeTest):
    """``processing-instruction()`` with an optional target literal."""

    target: Optional[str] = None


@dataclass(frozen=True)
class Step(Expr):
    """One location step: ``axis::node-test[predicate]...``."""

    axis: str
    test: NodeTest
    predicates: tuple[Expr, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class LocationPath(Expr):
    """A (possibly absolute) sequence of steps."""

    absolute: bool
    steps: tuple[Step, ...]


@dataclass(frozen=True)
class FilterExpr(Expr):
    """A primary expression with predicates: ``$x[1]``, ``key(...)[2]``."""

    primary: Expr
    predicates: tuple[Expr, ...]


@dataclass(frozen=True)
class PathExpr(Expr):
    """``filter-expr / relative-location-path``."""

    start: Expr
    path: LocationPath
