"""Evaluation of XPath 1.0 expressions against a DOM tree.

The central types are :class:`Context` — the dynamic context (context node,
position, size, variable bindings, namespace bindings, function library)
— and :class:`XPathEvaluator`, which walks the AST produced by
:mod:`repro.xpath.parser`.

Example
-------
>>> from repro.xml import parse
>>> doc = parse('<m><f id="a"/><f id="b"/></m>')
>>> evaluate('count(/m/f)', doc)
2.0
>>> [n.get_attribute('id') for n in evaluate('/m/f[2]', doc)]
['b']
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from ..obs.recorder import RECORDER as _REC
from ..xml import tracking as _tracking
from ..xml.chars import split_qname
from ..xml.dom import (
    Attribute,
    Comment,
    Document,
    Element,
    NamespaceNode,
    Node,
    ProcessingInstruction,
    Text,
)
from .ast import (
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    LocationPath,
    NameTest,
    NodeTest,
    NodeTypeTest,
    NumberLiteral,
    PathExpr,
    PITest,
    Step,
    StringLiteral,
    UnaryMinus,
    UnionExpr,
    VariableReference,
)
from .axes import (
    AXES,
    FLAT_PRESERVING_AXES,
    ORDER_PRESERVING_AXES,
    REVERSE_AXES,
    principal_node_kind,
)
from .datamodel import (
    document_order,
    is_node_set,
    to_boolean,
    to_number,
    to_string,
)
from .errors import XPathNameError, XPathTypeError
from .parser import parse_xpath

__all__ = ["Context", "XPathEvaluator", "evaluate", "compile_xpath"]

#: Signature of an XPath extension function.
XPathFunction = Callable[["Context", Sequence[object]], object]

#: Lazily bound view of functions.CORE_FUNCTIONS (import cycle).
_CORE_FUNCTIONS: Mapping[str, XPathFunction] | None = None


@dataclass
class Context:
    """The XPath dynamic context.

    ``variables`` maps variable names to XPath values; ``namespaces`` maps
    prefixes to URIs for resolving prefixed name tests; ``functions`` holds
    extension functions (XSLT adds ``key``, ``document``, ``current``...).
    """

    node: Node
    position: int = 1
    size: int = 1
    variables: Mapping[str, object] = field(default_factory=dict)
    namespaces: Mapping[str, str] = field(default_factory=dict)
    functions: Mapping[str, XPathFunction] = field(default_factory=dict)
    #: XSLT's current() node — equals ``node`` outside of predicates.
    current_node: Node | None = None

    def with_node(self, node: Node, position: int, size: int) -> "Context":
        """A copy of this context focused on *node* at *position* of *size*."""
        return replace(self, node=node, position=position, size=size)


def evaluate(expression: str, context_node: Node, **kwargs: object) -> object:
    """Parse and evaluate *expression* with *context_node* as the context.

    Keyword arguments are forwarded to :class:`Context` (``variables``,
    ``namespaces``, ``functions``).
    """
    context = Context(node=context_node, **kwargs)  # type: ignore[arg-type]
    return XPathEvaluator().evaluate(parse_xpath(expression), context)


def compile_xpath(expression: str) -> Expr:
    """Pre-parse an expression for repeated evaluation (memoized)."""
    return parse_xpath(expression)


class XPathEvaluator:
    """Interprets XPath ASTs.  Stateless: one instance can be shared."""

    # -- dispatch -----------------------------------------------------------

    def evaluate(self, expr: Expr, context: Context) -> object:
        """Evaluate *expr* in *context* and return an XPath value."""
        method = self._DISPATCH[type(expr)]
        return method(self, expr, context)

    def evaluate_node_set(self, expr: Expr, context: Context) -> list[Node]:
        """Evaluate *expr*, requiring a node-set result."""
        value = self.evaluate(expr, context)
        if not is_node_set(value):
            raise XPathTypeError(
                f"expression must evaluate to a node-set, got "
                f"{type(value).__name__}")
        return value  # type: ignore[return-value]

    # -- literals and references ------------------------------------------------

    def _eval_number(self, expr: NumberLiteral, context: Context) -> object:
        return expr.value

    def _eval_string(self, expr: StringLiteral, context: Context) -> object:
        return expr.value

    def _eval_variable(self, expr: VariableReference,
                       context: Context) -> object:
        try:
            value = context.variables[expr.name]
        except KeyError:
            raise XPathNameError(
                f"undefined variable ${expr.name}") from None
        if _tracking.ACTIVE and type(value) is list:
            # Node-set variables may be consumed on a different output
            # page than the one they were computed on.
            _tracking.touch_nodes(value)
        return value

    def _eval_function(self, expr: FunctionCall, context: Context) -> object:
        global _CORE_FUNCTIONS
        if _CORE_FUNCTIONS is None:
            # Deferred to break the evaluator <-> functions import cycle;
            # cached so the hot path skips the import machinery.
            from .functions import CORE_FUNCTIONS
            _CORE_FUNCTIONS = CORE_FUNCTIONS

        function = context.functions.get(expr.name) or \
            _CORE_FUNCTIONS.get(expr.name)
        if function is None:
            raise XPathNameError(f"undefined function {expr.name}()")
        args = [self.evaluate(arg, context) for arg in expr.args]
        return function(context, args)

    # -- operators ---------------------------------------------------------------

    def _eval_binary(self, expr: BinaryOp, context: Context) -> object:
        op = expr.op
        if op == "or":
            return to_boolean(self.evaluate(expr.left, context)) or \
                to_boolean(self.evaluate(expr.right, context))
        if op == "and":
            return to_boolean(self.evaluate(expr.left, context)) and \
                to_boolean(self.evaluate(expr.right, context))

        left = self.evaluate(expr.left, context)
        right = self.evaluate(expr.right, context)

        if op in ("=", "!="):
            return self._compare_equality(op, left, right)
        if op in ("<", "<=", ">", ">="):
            return self._compare_relational(op, left, right)

        # Arithmetic.
        lnum, rnum = to_number(left), to_number(right)
        if op == "+":
            return lnum + rnum
        if op == "-":
            return lnum - rnum
        if op == "*":
            return lnum * rnum
        if op == "div":
            if rnum == 0:
                if lnum == 0 or math.isnan(lnum):
                    return math.nan
                return math.inf if lnum > 0 else -math.inf
            return lnum / rnum
        if op == "mod":
            if rnum == 0 or math.isnan(lnum) or math.isinf(lnum):
                return math.nan
            return math.fmod(lnum, rnum)
        raise XPathTypeError(f"unknown operator {op!r}")

    @staticmethod
    def _compare_equality(op: str, left: object, right: object) -> bool:
        equal = op == "="

        if is_node_set(left) and is_node_set(right):
            right_values = {n.string_value() for n in right}  # type: ignore
            for node in left:  # type: ignore[union-attr]
                value = node.string_value()
                if equal and value in right_values:
                    return True
                if not equal and any(value != r for r in right_values):
                    return True
            return False

        if is_node_set(left) or is_node_set(right):
            nodes, other = (left, right) if is_node_set(left) else (right, left)
            if isinstance(other, bool):
                result = to_boolean(nodes) == other
                return result if equal else not result
            for node in nodes:  # type: ignore[union-attr]
                value: object = node.string_value()
                if isinstance(other, (int, float)):
                    matched = to_number(value) == float(other)
                else:
                    matched = value == other
                if matched == equal:
                    return True
            return False

        if isinstance(left, bool) or isinstance(right, bool):
            result = to_boolean(left) == to_boolean(right)
        elif isinstance(left, (int, float)) or isinstance(right, (int, float)):
            result = to_number(left) == to_number(right)
        else:
            result = to_string(left) == to_string(right)
        return result if equal else not result

    @staticmethod
    def _compare_relational(op: str, left: object, right: object) -> bool:
        compare = {
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }[op]

        if is_node_set(left) and is_node_set(right):
            return any(
                compare(to_number(a.string_value()),
                        to_number(b.string_value()))
                for a in left for b in right)  # type: ignore[union-attr]
        if is_node_set(left):
            rnum = to_number(right)
            return any(compare(to_number(n.string_value()), rnum)
                       for n in left)  # type: ignore[union-attr]
        if is_node_set(right):
            lnum = to_number(left)
            return any(compare(lnum, to_number(n.string_value()))
                       for n in right)  # type: ignore[union-attr]
        return compare(to_number(left), to_number(right))

    def _eval_unary(self, expr: UnaryMinus, context: Context) -> object:
        return -to_number(self.evaluate(expr.operand, context))

    def _eval_union(self, expr: UnionExpr, context: Context) -> object:
        left = self.evaluate_node_set(expr.left, context)
        right = self.evaluate_node_set(expr.right, context)
        return document_order(left + right)

    # -- paths ------------------------------------------------------------------------

    def _eval_location_path(self, expr: LocationPath,
                            context: Context) -> object:
        if expr.absolute:
            start: list[Node] = [context.node.root]
            if _tracking.ACTIVE:
                _tracking.touch_root(start[0])
        else:
            start = [context.node]
        return self._apply_steps(expr.steps, start, context)

    def _eval_path_expr(self, expr: PathExpr, context: Context) -> object:
        start = self.evaluate_node_set(expr.start, context)
        return self._apply_steps(expr.path.steps, start, context)

    def _eval_filter(self, expr: FilterExpr, context: Context) -> object:
        nodes = self.evaluate_node_set(expr.primary, context)
        nodes = document_order(nodes)
        for predicate in expr.predicates:
            nodes = self._filter(nodes, predicate, context, reverse=False)
        return nodes

    def _apply_steps(self, steps: Sequence[Step], start: list[Node],
                     context: Context) -> list[Node]:
        """Apply *steps* left to right, keeping the node-set in document
        order at every step.

        Re-sorting after each step is avoided whenever the step provably
        preserves order over an ordered context (see
        :data:`~repro.xpath.axes.ORDER_PRESERVING_AXES`): forward axes
        over a single node, subtree axes over any context, and the
        ``child`` axis over a *flat* context (one with no
        ancestor/descendant pairs).  The ``//name`` abbreviation is fused
        into a single ``descendant`` step when no predicates intervene,
        which both skips a full intermediate node-set and stays ordered.
        """
        if len(steps) == 1 and len(start) == 1:
            # Dominant shape: one step from one context node (e.g.
            # ``@name`` or ``child::x`` in a select).  The axis iterator
            # cannot repeat nodes and emits them in axis order, so no
            # dedup or sort is needed — just flip reverse axes.
            if _REC.enabled:
                _REC.count("xpath.steps")
            step = steps[0]
            gathered = self._apply_step(step, start[0], context)
            if step.axis in REVERSE_AXES:
                gathered.reverse()
            return gathered
        recording = _REC.enabled
        resorts = 0
        current = document_order(start)
        flat = len(current) <= 1
        index = 0
        total = len(steps)
        while index < total:
            step = steps[index]
            axis_name = step.axis
            if (axis_name == "descendant-or-self"
                    and not step.predicates
                    and isinstance(step.test, NodeTypeTest)
                    and step.test.node_type == "node"
                    and index + 1 < total):
                successor = steps[index + 1]
                if successor.axis == "child" and not successor.predicates:
                    # descendant-or-self::node()/child::T == descendant::T
                    # (only safe without predicates: position() differs).
                    step = Step(axis="descendant", test=successor.test,
                                predicates=())
                    axis_name = "descendant"
                    index += 1
            singleton = len(current) == 1
            if singleton:
                # One context node: axis iterators never repeat a node,
                # so no dedup pass is needed.
                gathered = self._apply_step(step, current[0], context)
            else:
                gathered = []
                seen: set[int] = set()
                for node in current:
                    for result in self._apply_step(step, node, context):
                        if id(result) not in seen:
                            seen.add(id(result))
                            gathered.append(result)
            if axis_name in REVERSE_AXES:
                if singleton:
                    gathered.reverse()
                    current = gathered
                else:
                    resorts += 1
                    current = document_order(gathered)
            elif singleton or axis_name in ("self", "attribute", "namespace") \
                    or (not step.predicates and
                        axis_name in ORDER_PRESERVING_AXES) or \
                    (flat and axis_name == "child"):
                # descendant/descendant-or-self are only order-preserving
                # without predicates: over a nested context the overlap
                # absorption relies on the descendant context re-producing
                # the ancestor's results verbatim, and a positional
                # predicate filters each context's results independently.
                current = gathered
            else:
                resorts += 1
                current = document_order(gathered)
            flat = len(current) <= 1 or \
                (flat and axis_name in FLAT_PRESERVING_AXES)
            index += 1
        if recording:
            _REC.count("xpath.steps", total)
            if resorts:
                _REC.count("xpath.resort", resorts)
        return current

    def _apply_step(self, step: Step, node: Node,
                    context: Context) -> list[Node]:
        axis = AXES.get(step.axis)
        if axis is None:
            raise XPathNameError(f"unknown axis {step.axis!r}")
        principal = principal_node_kind(step.axis)
        test = step.test
        if type(test) is NameTest and principal != "namespace" and \
                ":" not in test.name and test.name != "*":
            # Fast path for the dominant test shape — an unprefixed
            # concrete name over an element/attribute axis — with the
            # generic _node_test inlined.
            name = test.name
            candidates = [
                n for n in axis(node)
                if n.kind == principal and n.local_name == name and
                n.namespace_uri is None
            ]
        else:
            candidates = [
                n for n in axis(node)
                if self._node_test(test, n, principal, context)
            ]
        if _tracking.ACTIVE and candidates:
            _tracking.touch_nodes(candidates)
        reverse = step.axis in REVERSE_AXES
        for predicate in step.predicates:
            candidates = self._filter(candidates, predicate, context,
                                      reverse=reverse)
        return candidates

    def _filter(self, nodes: list[Node], predicate: Expr, context: Context,
                *, reverse: bool) -> list[Node]:
        size = len(nodes)
        kept: list[Node] = []
        for index, node in enumerate(nodes):
            sub = context.with_node(node, index + 1, size)
            value = self.evaluate(predicate, sub)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if float(value) == index + 1:
                    kept.append(node)
            elif to_boolean(value):
                kept.append(node)
        return kept

    # -- node tests ----------------------------------------------------------------------

    def _node_test(self, test: NodeTest, node: Node, principal: str,
                   context: Context) -> bool:
        # NameTest first: it dominates real query workloads.
        if not isinstance(test, NameTest):
            if isinstance(test, NodeTypeTest):
                if test.node_type == "node":
                    return True
                if test.node_type == "text":
                    return isinstance(node, Text)
                if test.node_type == "comment":
                    return isinstance(node, Comment)
                return False
            assert isinstance(test, PITest)
            if not isinstance(node, ProcessingInstruction):
                return False
            return test.target is None or node.target == test.target
        if node.kind != principal:
            return False
        if test.name == "*":
            return True

        prefix, local = split_qname(test.name)
        if prefix is not None:
            uri = context.namespaces.get(prefix)
            if uri is None:
                raise XPathNameError(
                    f"undeclared prefix {prefix!r} in name test "
                    f"{test.name!r}")
        else:
            uri = None

        if isinstance(node, NamespaceNode):
            return local == "*" or node.prefix_name == local

        node_uri = node.namespace_uri  # type: ignore[union-attr]
        node_local = node.local_name  # type: ignore[union-attr]
        if local == "*":
            return node_uri == uri
        return node_local == local and node_uri == uri

    _DISPATCH = {
        NumberLiteral: _eval_number,
        StringLiteral: _eval_string,
        VariableReference: _eval_variable,
        FunctionCall: _eval_function,
        BinaryOp: _eval_binary,
        UnaryMinus: _eval_unary,
        UnionExpr: _eval_union,
        LocationPath: _eval_location_path,
        PathExpr: _eval_path_expr,
        FilterExpr: _eval_filter,
    }
