"""A complete XPath 1.0 engine over :mod:`repro.xml` trees.

Public API:

* :func:`evaluate` — one-shot parse + evaluate;
* :func:`compile_xpath` — memoized parse for hot paths;
* :class:`Context` — the dynamic context (node, position, size, variables,
  namespaces, extension functions);
* :class:`XPathEvaluator` — the reusable AST interpreter.
"""

from .datamodel import to_boolean, to_number, to_string
from .errors import XPathError, XPathNameError, XPathSyntaxError, XPathTypeError
from .evaluator import Context, XPathEvaluator, compile_xpath, evaluate

__all__ = [
    "Context",
    "XPathEvaluator",
    "compile_xpath",
    "evaluate",
    "to_boolean",
    "to_number",
    "to_string",
    "XPathError",
    "XPathNameError",
    "XPathSyntaxError",
    "XPathTypeError",
]
