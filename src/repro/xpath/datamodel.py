"""XPath 1.0 value types and conversions.

XPath has four types: node-set (a Python list of DOM nodes), boolean,
number (Python float, including NaN and infinities), and string.  This
module implements the conversion functions of §4 — ``boolean()``,
``number()``, ``string()`` — and the number-to-string rules of §4.2 that
make ``string(2.0) == "2"``.
"""

from __future__ import annotations

import math
from operator import methodcaller
from typing import Sequence

from ..xml.dom import Node, sort_document_order
from .errors import XPathTypeError

__all__ = [
    "XPathValue",
    "is_node_set",
    "to_boolean",
    "to_number",
    "to_string",
    "number_to_string",
    "string_value",
    "document_order",
]

#: The union of the four XPath value types.
XPathValue = "bool | float | str | list[Node]"

_ORDER_KEY = methodcaller("document_order_key")


def is_node_set(value: object) -> bool:
    """Return True when *value* is a node-set."""
    return isinstance(value, list)


def string_value(node: Node) -> str:
    """String-value of a node per XPath §5."""
    return node.string_value()


def to_boolean(value: object) -> bool:
    """The ``boolean()`` function (§4.3)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        number = float(value)
        return bool(number) and not math.isnan(number)
    if isinstance(value, str):
        return bool(value)
    if isinstance(value, list):
        return bool(value)
    raise XPathTypeError(f"cannot convert {type(value).__name__} to boolean")


def to_number(value: object) -> float:
    """The ``number()`` function (§4.4)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        text = value.strip(" \t\r\n")
        try:
            return float(text) if text else math.nan
        except ValueError:
            return math.nan
    if isinstance(value, list):
        return to_number(to_string(value))
    raise XPathTypeError(f"cannot convert {type(value).__name__} to number")


def to_string(value: object) -> str:
    """The ``string()`` function (§4.2)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return number_to_string(float(value))
    if isinstance(value, str):
        return value
    if isinstance(value, list):
        if not value:
            return ""
        if len(value) == 1:
            return value[0].string_value()
        first = min(value, key=_ORDER_KEY)
        return string_value(first)
    raise XPathTypeError(f"cannot convert {type(value).__name__} to string")


def number_to_string(number: float) -> str:
    """Format *number* per XPath §4.2 (integers without '.0', NaN, etc.)."""
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "Infinity" if number > 0 else "-Infinity"
    if number == 0:
        return "0"
    if number == int(number) and abs(number) < 1e16:
        return str(int(number))
    text = repr(number)
    if "e" in text or "E" in text:
        # XPath never uses exponent notation; expand via Decimal so the
        # shortest-repr digits (and thus the exact value) are preserved.
        from decimal import Decimal

        text = format(Decimal(text), "f")
    return text


def document_order(nodes: Sequence[Node]) -> list[Node]:
    """Sort *nodes* into document order, removing duplicates."""
    if len(nodes) <= 1:
        return list(nodes)
    return sort_document_order(nodes)
