"""Tokenizer for XPath 1.0 expressions.

Implements the lexical structure of XPath 1.0 §3.7, including the
disambiguation rules:

* ``*`` is the multiply operator when the preceding token could end an
  operand; otherwise it is a name-test wildcard;
* ``and``, ``or``, ``mod``, ``div`` are operator names in operand-ending
  position, NCNames otherwise;
* an NCName immediately followed by ``(`` is a function name or node type;
* an NCName immediately followed by ``::`` is an axis name.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..xml.chars import is_name_char, is_name_start_char
from .errors import XPathSyntaxError

__all__ = ["Token", "tokenize", "AXIS_NAMES", "NODE_TYPES"]

AXIS_NAMES = frozenset({
    "ancestor", "ancestor-or-self", "attribute", "child", "descendant",
    "descendant-or-self", "following", "following-sibling", "namespace",
    "parent", "preceding", "preceding-sibling", "self",
})

NODE_TYPES = frozenset({"comment", "text", "processing-instruction", "node"})

_OPERATOR_NAMES = frozenset({"and", "or", "mod", "div"})

# Token kinds.
NUMBER = "number"
LITERAL = "literal"
NAME = "name"            # QName or NCName (element/attribute name test)
WILDCARD = "wildcard"    # '*' or 'prefix:*' as a name test
FUNC_NAME = "function"   # name directly before '('
NODE_TYPE = "nodetype"   # node type name directly before '('
AXIS = "axis"            # axis name directly before '::'
VARIABLE = "variable"    # $qname
OPERATOR = "operator"    # symbolic and named operators
LPAREN = "("
RPAREN = ")"
LBRACKET = "["
RBRACKET = "]"
COMMA = ","
AT = "@"
DOT = "."
DOTDOT = ".."
COLONCOLON = "::"
SLASH = "/"
DSLASH = "//"
PIPE = "|"
EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: str
    value: str
    position: int


_SYMBOLIC_OPERATORS = (
    "!=", "<=", ">=", "=", "<", ">", "+", "-",
)


def tokenize(expression: str) -> list[Token]:
    """Tokenize *expression*, raising :class:`XPathSyntaxError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    n = len(expression)

    def preceding_ends_operand() -> bool:
        if not tokens:
            return False
        prev = tokens[-1]
        if prev.kind in (NUMBER, LITERAL, VARIABLE, RPAREN, RBRACKET,
                         DOT, DOTDOT):
            return True
        if prev.kind in (NAME, WILDCARD):
            return True
        return False

    while pos < n:
        ch = expression[pos]
        if ch in " \t\r\n":
            pos += 1
            continue

        if ch == "(":
            tokens.append(Token(LPAREN, "(", pos)); pos += 1
        elif ch == ")":
            tokens.append(Token(RPAREN, ")", pos)); pos += 1
        elif ch == "[":
            tokens.append(Token(LBRACKET, "[", pos)); pos += 1
        elif ch == "]":
            tokens.append(Token(RBRACKET, "]", pos)); pos += 1
        elif ch == ",":
            tokens.append(Token(COMMA, ",", pos)); pos += 1
        elif ch == "@":
            tokens.append(Token(AT, "@", pos)); pos += 1
        elif ch == "|":
            tokens.append(Token(PIPE, "|", pos)); pos += 1
        elif expression.startswith("//", pos):
            tokens.append(Token(DSLASH, "//", pos)); pos += 2
        elif ch == "/":
            tokens.append(Token(SLASH, "/", pos)); pos += 1
        elif expression.startswith("..", pos):
            tokens.append(Token(DOTDOT, "..", pos)); pos += 2
        elif ch == "." and not (pos + 1 < n and expression[pos + 1].isdigit()):
            tokens.append(Token(DOT, ".", pos)); pos += 1
        elif expression.startswith("::", pos):
            tokens.append(Token(COLONCOLON, "::", pos)); pos += 2
        elif ch == "*":
            if preceding_ends_operand():
                tokens.append(Token(OPERATOR, "*", pos))
            else:
                tokens.append(Token(WILDCARD, "*", pos))
            pos += 1
        elif ch == "$":
            pos += 1
            name, pos = _read_qname(expression, pos)
            if name is None:
                raise XPathSyntaxError(
                    "expected variable name after '$'", expression, pos)
            tokens.append(Token(VARIABLE, name, pos - len(name) - 1))
        elif ch in "'\"":
            end = expression.find(ch, pos + 1)
            if end == -1:
                raise XPathSyntaxError(
                    "unterminated string literal", expression, pos)
            tokens.append(Token(LITERAL, expression[pos + 1:end], pos))
            pos = end + 1
        elif ch.isdigit() or ch == ".":
            start = pos
            while pos < n and expression[pos].isdigit():
                pos += 1
            if pos < n and expression[pos] == ".":
                pos += 1
                while pos < n and expression[pos].isdigit():
                    pos += 1
            tokens.append(Token(NUMBER, expression[start:pos], start))
        elif any(expression.startswith(op, pos)
                 for op in _SYMBOLIC_OPERATORS):
            for op in _SYMBOLIC_OPERATORS:
                if expression.startswith(op, pos):
                    tokens.append(Token(OPERATOR, op, pos))
                    pos += len(op)
                    break
        elif is_name_start_char(ch) and ch != ":":
            start = pos
            name, pos = _read_qname(expression, pos)
            assert name is not None
            # Disambiguation per §3.7.
            if name in _OPERATOR_NAMES and preceding_ends_operand():
                tokens.append(Token(OPERATOR, name, start))
                continue
            # Wildcard with prefix: 'prefix:*'.
            if expression.startswith(":*", pos) and ":" not in name:
                tokens.append(Token(WILDCARD, name + ":*", start))
                pos += 2
                continue
            next_pos = _skip_space(expression, pos)
            if expression.startswith("::", next_pos):
                if name not in AXIS_NAMES:
                    raise XPathSyntaxError(
                        f"unknown axis {name!r}", expression, start)
                tokens.append(Token(AXIS, name, start))
            elif next_pos < n and expression[next_pos] == "(":
                kind = NODE_TYPE if name in NODE_TYPES else FUNC_NAME
                tokens.append(Token(kind, name, start))
            else:
                tokens.append(Token(NAME, name, start))
        else:
            raise XPathSyntaxError(
                f"unexpected character {ch!r}", expression, pos)

    tokens.append(Token(EOF, "", n))
    return tokens


def _skip_space(text: str, pos: int) -> int:
    while pos < len(text) and text[pos] in " \t\r\n":
        pos += 1
    return pos


def _read_qname(text: str, pos: int) -> tuple[str | None, int]:
    """Read a QName starting at *pos*; return (name, new_pos)."""
    n = len(text)
    if pos >= n or not is_name_start_char(text[pos]) or text[pos] == ":":
        return None, pos
    start = pos
    pos += 1
    while pos < n and is_name_char(text[pos]) and text[pos] != ":":
        pos += 1
    if pos < n and text[pos] == ":" and pos + 1 < n and \
            is_name_start_char(text[pos + 1]) and text[pos + 1] != ":":
        pos += 2
        while pos < n and is_name_char(text[pos]) and text[pos] != ":":
            pos += 1
    return text[start:pos], pos
