"""XPath error types."""

from __future__ import annotations

__all__ = ["XPathError", "XPathSyntaxError", "XPathTypeError", "XPathNameError"]


class XPathError(Exception):
    """Base class for XPath failures."""


class XPathSyntaxError(XPathError):
    """The expression text does not match the XPath 1.0 grammar."""

    def __init__(self, message: str, expression: str = "",
                 position: int | None = None) -> None:
        self.expression = expression
        self.position = position
        if expression and position is not None:
            marker = " " * position + "^"
            message = f"{message}\n  {expression}\n  {marker}"
        super().__init__(message)


class XPathTypeError(XPathError):
    """An operand has a type the operation does not accept."""


class XPathNameError(XPathError):
    """Reference to an undefined variable, function, or namespace prefix."""
