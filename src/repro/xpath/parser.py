"""Recursive-descent parser for XPath 1.0.

The grammar is the one from the recommendation §2–§3; operator precedence
(lowest to highest): ``or``, ``and``, equality, relational, additive,
multiplicative, unary minus, union, path.

Parsed expressions are cached — XSLT stylesheets evaluate the same select
expressions for every node, so :func:`parse_xpath` memoizes on the
expression text.
"""

from __future__ import annotations

from functools import lru_cache

from .ast import (
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    LocationPath,
    NameTest,
    NodeTest,
    NodeTypeTest,
    NumberLiteral,
    PathExpr,
    PITest,
    Step,
    StringLiteral,
    UnaryMinus,
    UnionExpr,
    VariableReference,
)
from .errors import XPathSyntaxError
from .lexer import (
    AT,
    AXIS,
    COLONCOLON,
    COMMA,
    DOT,
    DOTDOT,
    DSLASH,
    EOF,
    FUNC_NAME,
    LBRACKET,
    LITERAL,
    LPAREN,
    NAME,
    NODE_TYPE,
    NUMBER,
    OPERATOR,
    PIPE,
    RBRACKET,
    RPAREN,
    SLASH,
    Token,
    VARIABLE,
    WILDCARD,
    tokenize,
)

__all__ = ["parse_xpath"]


@lru_cache(maxsize=4096)
def parse_xpath(expression: str) -> Expr:
    """Parse *expression* into an AST (memoized)."""
    return _Parser(expression).parse()


class _Parser:
    def __init__(self, expression: str) -> None:
        self.expression = expression
        self.tokens = tokenize(expression)
        self.index = 0

    # -- token helpers ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def match(self, kind: str, value: str | None = None) -> bool:
        token = self.current
        if token.kind == kind and (value is None or token.value == value):
            self.index += 1
            return True
        return False

    def expect(self, kind: str, what: str) -> Token:
        token = self.current
        if token.kind != kind:
            raise self.error(f"expected {what}")
        self.index += 1
        return token

    def error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(message, self.expression,
                                self.current.position)

    # -- entry -------------------------------------------------------------------

    def parse(self) -> Expr:
        expr = self.parse_or()
        if self.current.kind != EOF:
            raise self.error(
                f"unexpected token {self.current.value!r} after expression")
        return expr

    # -- precedence climbing --------------------------------------------------------

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.match(OPERATOR, "or"):
            left = BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_equality()
        while self.match(OPERATOR, "and"):
            left = BinaryOp("and", left, self.parse_equality())
        return left

    def parse_equality(self) -> Expr:
        left = self.parse_relational()
        while True:
            if self.match(OPERATOR, "="):
                left = BinaryOp("=", left, self.parse_relational())
            elif self.match(OPERATOR, "!="):
                left = BinaryOp("!=", left, self.parse_relational())
            else:
                return left

    def parse_relational(self) -> Expr:
        left = self.parse_additive()
        while True:
            for op in ("<=", ">=", "<", ">"):
                if self.match(OPERATOR, op):
                    left = BinaryOp(op, left, self.parse_additive())
                    break
            else:
                return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            if self.match(OPERATOR, "+"):
                left = BinaryOp("+", left, self.parse_multiplicative())
            elif self.match(OPERATOR, "-"):
                left = BinaryOp("-", left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            if self.match(OPERATOR, "*"):
                left = BinaryOp("*", left, self.parse_unary())
            elif self.match(OPERATOR, "div"):
                left = BinaryOp("div", left, self.parse_unary())
            elif self.match(OPERATOR, "mod"):
                left = BinaryOp("mod", left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        if self.match(OPERATOR, "-"):
            return UnaryMinus(self.parse_unary())
        return self.parse_union()

    def parse_union(self) -> Expr:
        left = self.parse_path()
        while self.match(PIPE):
            left = UnionExpr(left, self.parse_path())
        return left

    # -- paths ------------------------------------------------------------------------

    def parse_path(self) -> Expr:
        token = self.current

        if token.kind in (SLASH, DSLASH):
            return self.parse_location_path()
        if token.kind in (DOT, DOTDOT, AT, AXIS, NAME, WILDCARD, NODE_TYPE):
            return self.parse_location_path()

        # FilterExpr ('/' | '//') RelativeLocationPath?
        primary = self.parse_primary()
        predicates: list[Expr] = []
        while self.current.kind == LBRACKET:
            predicates.append(self.parse_predicate())
        expr: Expr = (
            FilterExpr(primary, tuple(predicates)) if predicates else primary
        )
        if self.current.kind in (SLASH, DSLASH):
            path = self.parse_location_path(force_relative=True)
            return PathExpr(expr, path)
        return expr

    def parse_location_path(self, *, force_relative: bool = False) -> LocationPath:
        steps: list[Step] = []
        absolute = False

        if self.current.kind == SLASH and not force_relative:
            absolute = True
            self.advance()
            if not self._at_step_start():
                return LocationPath(True, ())
        elif self.current.kind == DSLASH and not force_relative:
            absolute = True
            self.advance()
            steps.append(_descendant_or_self_step())
        elif force_relative:
            if self.match(DSLASH):
                steps.append(_descendant_or_self_step())
            else:
                self.expect(SLASH, "'/'")

        steps.append(self.parse_step())
        while True:
            if self.match(SLASH):
                steps.append(self.parse_step())
            elif self.match(DSLASH):
                steps.append(_descendant_or_self_step())
                steps.append(self.parse_step())
            else:
                break
        return LocationPath(absolute, tuple(steps))

    def _at_step_start(self) -> bool:
        return self.current.kind in (
            DOT, DOTDOT, AT, AXIS, NAME, WILDCARD, NODE_TYPE)

    def parse_step(self) -> Step:
        token = self.current

        if token.kind == DOT:
            self.advance()
            return Step("self", NodeTypeTest("node"))
        if token.kind == DOTDOT:
            self.advance()
            return Step("parent", NodeTypeTest("node"))

        axis = "child"
        if token.kind == AT:
            self.advance()
            axis = "attribute"
        elif token.kind == AXIS:
            axis = self.advance().value
            self.expect(COLONCOLON, "'::'")

        test = self.parse_node_test()
        predicates: list[Expr] = []
        while self.current.kind == LBRACKET:
            predicates.append(self.parse_predicate())
        return Step(axis, test, tuple(predicates))

    def parse_node_test(self) -> NodeTest:
        token = self.current
        if token.kind in (NAME, WILDCARD):
            self.advance()
            return NameTest(token.value)
        if token.kind == NODE_TYPE:
            self.advance()
            self.expect(LPAREN, "'('")
            if token.value == "processing-instruction":
                target: str | None = None
                if self.current.kind == LITERAL:
                    target = self.advance().value
                self.expect(RPAREN, "')'")
                return PITest(target)
            self.expect(RPAREN, "')'")
            return NodeTypeTest(token.value)
        raise self.error("expected a node test")

    def parse_predicate(self) -> Expr:
        self.expect(LBRACKET, "'['")
        expr = self.parse_or()
        self.expect(RBRACKET, "']'")
        return expr

    # -- primaries ------------------------------------------------------------------------

    def parse_primary(self) -> Expr:
        token = self.current
        if token.kind == VARIABLE:
            self.advance()
            return VariableReference(token.value)
        if token.kind == LPAREN:
            self.advance()
            expr = self.parse_or()
            self.expect(RPAREN, "')'")
            return expr
        if token.kind == LITERAL:
            self.advance()
            return StringLiteral(token.value)
        if token.kind == NUMBER:
            self.advance()
            return NumberLiteral(float(token.value))
        if token.kind == FUNC_NAME:
            self.advance()
            self.expect(LPAREN, "'('")
            args: list[Expr] = []
            if self.current.kind != RPAREN:
                args.append(self.parse_or())
                while self.match(COMMA):
                    args.append(self.parse_or())
            self.expect(RPAREN, "')'")
            return FunctionCall(token.value, tuple(args))
        raise self.error(f"unexpected token {token.value!r}")


def _descendant_or_self_step() -> Step:
    return Step("descendant-or-self", NodeTypeTest("node"))
