"""The XPath 1.0 core function library (§4).

Every function takes ``(context, args)`` where *args* are already-evaluated
XPath values.  Argument-count checking raises
:class:`~repro.xpath.errors.XPathTypeError` with the function name, matching
the diagnostics style of real processors.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..xml.dom import Attribute, Element, NamespaceNode, Node
from .datamodel import (
    document_order,
    is_node_set,
    to_boolean,
    to_number,
    to_string,
)
from .errors import XPathTypeError
from .evaluator import Context

__all__ = ["CORE_FUNCTIONS"]


def _arity(name: str, args: Sequence[object], low: int,
           high: int | None = None) -> None:
    high = low if high is None else high
    if not (low <= len(args) <= high):
        expected = str(low) if low == high else f"{low}..{high}"
        raise XPathTypeError(
            f"{name}() expects {expected} argument(s), got {len(args)}")


def _context_string(context: Context, args: Sequence[object]) -> str:
    return to_string(args[0]) if args else context.node.string_value()


# -- node-set functions -----------------------------------------------------


def fn_last(context: Context, args: Sequence[object]) -> object:
    _arity("last", args, 0)
    return float(context.size)


def fn_position(context: Context, args: Sequence[object]) -> object:
    _arity("position", args, 0)
    return float(context.position)


def fn_count(context: Context, args: Sequence[object]) -> object:
    _arity("count", args, 1)
    if not is_node_set(args[0]):
        raise XPathTypeError("count() requires a node-set")
    return float(len(args[0]))  # type: ignore[arg-type]


def fn_id(context: Context, args: Sequence[object]) -> object:
    _arity("id", args, 1)
    value = args[0]
    if is_node_set(value):
        tokens: list[str] = []
        for node in value:  # type: ignore[union-attr]
            tokens.extend(node.string_value().split())
    else:
        tokens = to_string(value).split()

    root = context.node.root
    id_map: dict[str, Element] = {}
    declared_ids = False
    if isinstance(root, (Element,)) or hasattr(root, "iter_elements"):
        for element in root.iter_elements():  # type: ignore[union-attr]
            for attr in element.attributes:
                if attr.is_id:
                    declared_ids = True
                    id_map.setdefault(attr.value, element)
        if not declared_ids:
            # Fallback for unvalidated documents: treat @id as ID-typed,
            # which matches the goldmodel schema's declarations.
            for element in root.iter_elements():  # type: ignore[union-attr]
                value_ = element.get_attribute("id")
                if value_ is not None:
                    id_map.setdefault(value_, element)
    found = [id_map[token] for token in tokens if token in id_map]
    return document_order(found)


def fn_local_name(context: Context, args: Sequence[object]) -> object:
    _arity("local-name", args, 0, 1)
    node = _first_node(context, args, "local-name")
    if node is None:
        return ""
    if isinstance(node, (Element, Attribute)):
        return node.local_name
    if isinstance(node, NamespaceNode):
        return node.prefix_name
    if node.kind == "processing-instruction":
        return node.target  # type: ignore[union-attr]
    return ""


def fn_namespace_uri(context: Context, args: Sequence[object]) -> object:
    _arity("namespace-uri", args, 0, 1)
    node = _first_node(context, args, "namespace-uri")
    if isinstance(node, (Element, Attribute)):
        return node.namespace_uri or ""
    return ""


def fn_name(context: Context, args: Sequence[object]) -> object:
    _arity("name", args, 0, 1)
    node = _first_node(context, args, "name")
    if node is None:
        return ""
    if isinstance(node, (Element, Attribute)):
        return node.name
    if isinstance(node, NamespaceNode):
        return node.prefix_name
    if node.kind == "processing-instruction":
        return node.target  # type: ignore[union-attr]
    return ""


def _first_node(context: Context, args: Sequence[object],
                fname: str) -> Node | None:
    if not args:
        return context.node
    if not is_node_set(args[0]):
        raise XPathTypeError(f"{fname}() requires a node-set argument")
    nodes = document_order(args[0])  # type: ignore[arg-type]
    return nodes[0] if nodes else None


# -- string functions ----------------------------------------------------------


def fn_string(context: Context, args: Sequence[object]) -> object:
    _arity("string", args, 0, 1)
    return _context_string(context, args)


def fn_concat(context: Context, args: Sequence[object]) -> object:
    _arity("concat", args, 2, 10_000)
    return "".join(to_string(arg) for arg in args)


def fn_starts_with(context: Context, args: Sequence[object]) -> object:
    _arity("starts-with", args, 2)
    return to_string(args[0]).startswith(to_string(args[1]))


def fn_contains(context: Context, args: Sequence[object]) -> object:
    _arity("contains", args, 2)
    return to_string(args[1]) in to_string(args[0])


def fn_substring_before(context: Context, args: Sequence[object]) -> object:
    _arity("substring-before", args, 2)
    haystack, needle = to_string(args[0]), to_string(args[1])
    index = haystack.find(needle)
    return haystack[:index] if index >= 0 else ""


def fn_substring_after(context: Context, args: Sequence[object]) -> object:
    _arity("substring-after", args, 2)
    haystack, needle = to_string(args[0]), to_string(args[1])
    index = haystack.find(needle)
    return haystack[index + len(needle):] if index >= 0 else ""


def fn_substring(context: Context, args: Sequence[object]) -> object:
    _arity("substring", args, 2, 3)
    text = to_string(args[0])
    # Per §4.2 a position p is kept iff p >= round(start) and, with a
    # length, p < round(start) + round(length) — rounded *separately*,
    # with IEEE semantics (so -inf + inf = NaN keeps nothing).
    start = _xpath_round(to_number(args[1]))
    if len(args) == 3:
        end = start + _xpath_round(to_number(args[2]))
    else:
        end = math.inf
    if math.isnan(start) or math.isnan(end):
        return ""
    begin = max(start, 1.0)
    if begin == math.inf or end <= begin:
        return ""
    if end == math.inf:
        return text[int(begin) - 1:]
    return text[int(begin) - 1:int(end) - 1]


def _xpath_round(value: float) -> float:
    """round() per XPath: .5 towards +infinity; NaN/inf pass through."""
    if math.isnan(value) or math.isinf(value):
        return value
    return float(math.floor(value + 0.5))


def fn_string_length(context: Context, args: Sequence[object]) -> object:
    _arity("string-length", args, 0, 1)
    return float(len(_context_string(context, args)))


def fn_normalize_space(context: Context, args: Sequence[object]) -> object:
    _arity("normalize-space", args, 0, 1)
    return " ".join(_context_string(context, args).split())


def fn_translate(context: Context, args: Sequence[object]) -> object:
    _arity("translate", args, 3)
    text = to_string(args[0])
    source = to_string(args[1])
    target = to_string(args[2])
    mapping: dict[str, str | None] = {}
    for index, ch in enumerate(source):
        if ch not in mapping:
            mapping[ch] = target[index] if index < len(target) else None
    out: list[str] = []
    for ch in text:
        if ch in mapping:
            replacement = mapping[ch]
            if replacement is not None:
                out.append(replacement)
        else:
            out.append(ch)
    return "".join(out)


# -- boolean functions --------------------------------------------------------------


def fn_boolean(context: Context, args: Sequence[object]) -> object:
    _arity("boolean", args, 1)
    return to_boolean(args[0])


def fn_not(context: Context, args: Sequence[object]) -> object:
    _arity("not", args, 1)
    return not to_boolean(args[0])


def fn_true(context: Context, args: Sequence[object]) -> object:
    _arity("true", args, 0)
    return True


def fn_false(context: Context, args: Sequence[object]) -> object:
    _arity("false", args, 0)
    return False


def fn_lang(context: Context, args: Sequence[object]) -> object:
    _arity("lang", args, 1)
    wanted = to_string(args[0]).lower()
    node: Node | None = context.node
    while node is not None:
        if isinstance(node, Element):
            value = node.get_attribute("xml:lang")
            if value is not None:
                actual = value.lower()
                return actual == wanted or \
                    actual.startswith(wanted + "-")
        node = node.parent
    return False


# -- number functions ---------------------------------------------------------------


def fn_number(context: Context, args: Sequence[object]) -> object:
    _arity("number", args, 0, 1)
    if args:
        return to_number(args[0])
    return to_number(context.node.string_value())


def fn_sum(context: Context, args: Sequence[object]) -> object:
    _arity("sum", args, 1)
    if not is_node_set(args[0]):
        raise XPathTypeError("sum() requires a node-set")
    return float(sum(
        to_number(node.string_value())
        for node in args[0]))  # type: ignore[union-attr]


def fn_floor(context: Context, args: Sequence[object]) -> object:
    _arity("floor", args, 1)
    value = to_number(args[0])
    return value if math.isnan(value) or math.isinf(value) \
        else float(math.floor(value))


def fn_ceiling(context: Context, args: Sequence[object]) -> object:
    _arity("ceiling", args, 1)
    value = to_number(args[0])
    return value if math.isnan(value) or math.isinf(value) \
        else float(math.ceil(value))


def fn_round(context: Context, args: Sequence[object]) -> object:
    _arity("round", args, 1)
    value = to_number(args[0])
    if math.isnan(value) or math.isinf(value):
        return value
    # XPath rounds .5 towards positive infinity (unlike banker's rounding).
    return float(math.floor(value + 0.5))


#: The complete core library, keyed by function name.
CORE_FUNCTIONS = {
    "last": fn_last,
    "position": fn_position,
    "count": fn_count,
    "id": fn_id,
    "local-name": fn_local_name,
    "namespace-uri": fn_namespace_uri,
    "name": fn_name,
    "string": fn_string,
    "concat": fn_concat,
    "starts-with": fn_starts_with,
    "contains": fn_contains,
    "substring-before": fn_substring_before,
    "substring-after": fn_substring_after,
    "substring": fn_substring,
    "string-length": fn_string_length,
    "normalize-space": fn_normalize_space,
    "translate": fn_translate,
    "boolean": fn_boolean,
    "not": fn_not,
    "true": fn_true,
    "false": fn_false,
    "lang": fn_lang,
    "number": fn_number,
    "sum": fn_sum,
    "floor": fn_floor,
    "ceiling": fn_ceiling,
    "round": fn_round,
}
