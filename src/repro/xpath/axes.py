"""The thirteen XPath axes as generator functions over DOM nodes.

Each axis function takes a context node and yields nodes in the axis's
natural order (document order for forward axes, reverse document order for
``ancestor``, ``ancestor-or-self``, ``preceding`` and
``preceding-sibling``), as required for correct positional predicates.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..xml.dom import (
    Attribute,
    Document,
    Element,
    NamespaceNode,
    Node,
)

__all__ = [
    "AXES",
    "REVERSE_AXES",
    "ORDER_PRESERVING_AXES",
    "FLAT_PRESERVING_AXES",
    "principal_node_kind",
]


def _children(node: Node) -> list[Node]:
    return node.children if isinstance(node, (Document, Element)) else []


def axis_child(node: Node) -> Iterator[Node]:
    yield from _children(node)


def axis_descendant(node: Node) -> Iterator[Node]:
    for child in _children(node):
        yield child
        yield from axis_descendant(child)


def axis_descendant_or_self(node: Node) -> Iterator[Node]:
    yield node
    yield from axis_descendant(node)


def axis_parent(node: Node) -> Iterator[Node]:
    if node.parent is not None:
        yield node.parent


def axis_ancestor(node: Node) -> Iterator[Node]:
    yield from node.ancestors()


def axis_ancestor_or_self(node: Node) -> Iterator[Node]:
    yield node
    yield from node.ancestors()


def axis_self(node: Node) -> Iterator[Node]:
    yield node


def axis_following_sibling(node: Node) -> Iterator[Node]:
    if isinstance(node, (Attribute, NamespaceNode)) or node.parent is None:
        return
    siblings = _children(node.parent)
    try:
        index = next(i for i, s in enumerate(siblings) if s is node)
    except StopIteration:
        return
    yield from siblings[index + 1:]


def axis_preceding_sibling(node: Node) -> Iterator[Node]:
    if isinstance(node, (Attribute, NamespaceNode)) or node.parent is None:
        return
    siblings = _children(node.parent)
    try:
        index = next(i for i, s in enumerate(siblings) if s is node)
    except StopIteration:
        return
    yield from reversed(siblings[:index])


def axis_following(node: Node) -> Iterator[Node]:
    # All nodes after this one in document order, excluding descendants,
    # attributes, and namespace nodes.
    if isinstance(node, (Attribute, NamespaceNode)):
        owner = node.parent
        if owner is not None:
            yield from axis_descendant(owner)
            yield from axis_following(owner)
        return
    current: Node | None = node
    while current is not None:
        for sibling in axis_following_sibling(current):
            yield sibling
            yield from axis_descendant(sibling)
        current = current.parent


def axis_preceding(node: Node) -> Iterator[Node]:
    # All nodes before this one in document order, excluding ancestors.
    if isinstance(node, (Attribute, NamespaceNode)):
        owner = node.parent
        if owner is not None:
            yield from axis_preceding(owner)
        return
    current: Node | None = node
    while current is not None and current.parent is not None:
        for sibling in axis_preceding_sibling(current):
            yield from _reverse_descendants(sibling)
            yield sibling
        current = current.parent


def _reverse_descendants(node: Node) -> Iterator[Node]:
    for child in reversed(_children(node)):
        yield from _reverse_descendants(child)
        yield child


def axis_attribute(node: Node) -> Iterator[Node]:
    if isinstance(node, Element):
        for attr in node.attributes:
            if not attr.is_namespace_decl:
                yield attr


def axis_namespace(node: Node) -> Iterator[Node]:
    if isinstance(node, Element):
        for prefix, uri in sorted(node.in_scope_namespaces().items()):
            yield NamespaceNode(prefix, uri, node)


#: Mapping of axis name to iterator factory.
AXES: dict[str, Callable[[Node], Iterator[Node]]] = {
    "child": axis_child,
    "descendant": axis_descendant,
    "descendant-or-self": axis_descendant_or_self,
    "parent": axis_parent,
    "ancestor": axis_ancestor,
    "ancestor-or-self": axis_ancestor_or_self,
    "self": axis_self,
    "following-sibling": axis_following_sibling,
    "preceding-sibling": axis_preceding_sibling,
    "following": axis_following,
    "preceding": axis_preceding,
    "attribute": axis_attribute,
    "namespace": axis_namespace,
}

#: Axes whose natural order is reverse document order.
REVERSE_AXES = frozenset({
    "ancestor", "ancestor-or-self", "preceding", "preceding-sibling",
})

#: Axes for which concatenating per-node results over a document-ordered
#: context (deduplicated by identity) is itself in document order, for
#: *any* context.  ``self``/``attribute``/``namespace`` results sort at
#: their context node's position; ``descendant``/``descendant-or-self``
#: results are either disjoint (non-nested context nodes) or fully
#: contained in an earlier node's results (nested ones), so duplicates
#: absorb any overlap.
ORDER_PRESERVING_AXES = frozenset({
    "self", "attribute", "namespace", "descendant", "descendant-or-self",
})

#: Axes that keep a context "flat" (free of ancestor/descendant pairs).
#: Over a flat context the ``child`` axis is also order-preserving, since
#: sibling-disjoint subtrees cannot interleave.
FLAT_PRESERVING_AXES = frozenset({
    "self", "child", "attribute", "namespace",
})


def principal_node_kind(axis: str) -> str:
    """The principal node kind a NameTest selects on *axis* (§2.3)."""
    if axis == "attribute":
        return "attribute"
    if axis == "namespace":
        return "namespace"
    return "element"
