"""The ``goldcase`` command-line CASE tool."""

from .cli import build_parser, main

__all__ = ["build_parser", "main"]
