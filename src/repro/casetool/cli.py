"""``goldcase`` — the command-line CASE tool.

The paper's CASE tool (i) stores models as XML, (ii) validates them
against the XML Schema, and (iii) publishes HTML presentations.  This CLI
exposes the same workflow:

.. code-block:: console

   goldcase demo sales model.xml          # write an example model
   goldcase validate model.xml            # XSD + semantic validation
   goldcase validate --dtd model.xml      # baseline DTD validation
   goldcase schema goldmodel.xsd          # emit the XML Schema
   goldcase dtd goldmodel.dtd             # emit the DTD
   goldcase tree                          # Fig. 2 schema tree
   goldcase publish model.xml site/       # Fig. 6 multi-page site
   goldcase publish --single model.xml s/ # one page, internal anchors
   goldcase publish --incremental-from site/ model.xml site/
                                          # diff-driven republish
   goldcase present model.xml f1 out.html # Fig. 5 per-fact presentation
   goldcase export --sql star model.xml   # OLAP-tool (SQL) export
   goldcase olap model.xml --fact Sales --dice Time@Month --measure qty
                                          # slice/dice over synthetic data
   goldcase serve --demo                  # model-repository HTTP server

Every command accepts ``--profile [PATH]`` / ``--trace [PATH]``
(observability, DESIGN.md §10): both enable the engine's recorder and
write a schema-versioned ``trace.json`` (to PATH when given);
``--profile`` additionally prints a plain-text profile to stderr, and a
profiled ``publish`` drops an HTML profile page into the site.  Place
them after the positional arguments (or use ``--profile=PATH``), since
the optional PATH is greedy.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main", "build_parser"]


def _add_profiling_options(parser: argparse.ArgumentParser,
                           suppress: bool = False) -> None:
    """``--profile`` / ``--trace``, shared by the root and every command.

    The subcommand copies default to ``SUPPRESS`` so a value parsed
    before the subcommand name is not clobbered by the subparser.
    """
    default = argparse.SUPPRESS if suppress else None
    parser.add_argument(
        "--profile", nargs="?", const="", default=default, metavar="PATH",
        help="enable instrumentation; write trace.json (to PATH if given) "
             "and print a text profile to stderr")
    parser.add_argument(
        "--trace", nargs="?", const="", default=default, metavar="PATH",
        help="enable instrumentation; write the JSON trace only")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="goldcase",
        description="CASE tool for GOLD multidimensional models "
                    "(EDBT 2002 reproduction)")
    _add_profiling_options(parser)
    common = argparse.ArgumentParser(add_help=False)
    _add_profiling_options(common, suppress=True)
    sub = parser.add_subparsers(dest="command", required=True,
                                parser_class=lambda **kw: argparse
                                .ArgumentParser(parents=[common], **kw))

    demo = sub.add_parser("demo", help="write an example model as XML")
    demo.add_argument("which", choices=["sales", "retail", "synthetic"])
    demo.add_argument("output", help="output .xml path (or '-')")

    validate = sub.add_parser("validate",
                              help="validate a model document")
    validate.add_argument("model", help="model .xml path")
    validate.add_argument("--dtd", action="store_true",
                          help="use the baseline DTD instead of the schema")
    validate.add_argument("--semantic", action="store_true",
                          help="also run CASE-level semantic checks")

    schema = sub.add_parser("schema", help="emit the goldmodel XML Schema")
    schema.add_argument("output", nargs="?", default="-")

    dtd = sub.add_parser("dtd", help="emit the goldmodel DTD")
    dtd.add_argument("output", nargs="?", default="-")

    tree = sub.add_parser("tree",
                          help="render the schema as a tree (Fig. 2)")
    tree.add_argument("--html", action="store_true")

    publish = sub.add_parser("publish",
                             help="generate the HTML site (Fig. 6)")
    publish.add_argument("model", help="model .xml path")
    publish.add_argument("directory", help="output directory")
    publish.add_argument("--single", action="store_true",
                         help="single page with internal links (XSLT 1.0)")
    publish.add_argument("--no-compile", action="store_true",
                         help="force the interpreting XSLT engine instead "
                              "of the compiled closures (DESIGN.md §13); "
                              "GOLDCASE_NO_COMPILE=1 does the same")
    publish.add_argument("--incremental-from", metavar="DIR",
                         dest="incremental_from", default=None,
                         help="previous multi-page build to diff against: "
                              "only pages affected by the edit are "
                              "re-rendered, the rest reuse DIR's bytes "
                              "(DESIGN.md §14); usually the same DIR as "
                              "the output directory")
    publish.add_argument("--no-incremental", action="store_true",
                         help="disable diff-driven republish and the "
                              "dependency-index dotfile; "
                              "GOLDCASE_NO_INCREMENTAL=1 does the same")

    present = sub.add_parser(
        "present", help="one per-fact-class presentation (Fig. 5)")
    present.add_argument("model", help="model .xml path")
    present.add_argument("fact", help="fact class id or name")
    present.add_argument("output", nargs="?", default="-")

    export = sub.add_parser("export",
                            help="export to an OLAP tool (SQL DDL)")
    export.add_argument("model", help="model .xml path")
    export.add_argument("--sql", choices=["star", "snowflake"],
                        default="star")
    export.add_argument("--data", action="store_true",
                        help="also emit INSERTs from a synthetic star "
                             "schema (star layout only)")
    export.add_argument("output", nargs="?", default="-")

    cwm = sub.add_parser(
        "cwm", help="CWM/XMI metadata interchange (paper §6 future work)")
    cwm.add_argument("model", help="model .xml path")
    cwm.add_argument("--plain", action="store_true",
                     help="plain CWM without the GOLD tagged-value "
                          "extension (lossy)")
    cwm.add_argument("output", nargs="?", default="-")

    sourceview = sub.add_parser(
        "sourceview", help="IE-style XML source view (paper Fig. 4)")
    sourceview.add_argument("model", help="model .xml path")
    sourceview.add_argument("output", nargs="?", default="-")

    bundle = sub.add_parser(
        "bundle", help="client-side transformation bundle (paper §6)")
    bundle.add_argument("model", help="model .xml path")
    bundle.add_argument("directory", help="output directory")

    serve = sub.add_parser(
        "serve", help="model-repository HTTP server (paper §6, DESIGN §11)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8040)
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="pre-fork N worker processes sharing the "
                            "port (SO_REUSEPORT; DESIGN §17). 1 = the "
                            "classic single-process threaded server")
    serve.add_argument("--store-dir", default=None, metavar="PATH",
                       help="build-store directory for --workers > 1 "
                            "(models + built artifacts shared across "
                            "processes; default: a temp directory)")
    serve.add_argument("--build-pool", type=int, default=0, metavar="N",
                       help="with --workers > 1: N background build "
                            "processes pre-rendering PUT models into "
                            "the store (default 0: build on demand)")
    serve.add_argument("--model", action="append", default=[],
                       metavar="NAME=PATH",
                       help="preload a model XML file under NAME "
                            "(bare PATH uses the file stem); repeatable")
    serve.add_argument("--demo", action="store_true",
                       help="preload the sales/retail example models")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")
    serve.add_argument("--faults", default=None, metavar="SPEC",
                       help="activate a fault plan, e.g. "
                            "'seed=7;cache.rebuild=raise:0.01' "
                            "(same grammar as GOLDCASE_FAULTS)")
    serve.add_argument("--no-compile", action="store_true",
                       help="force the interpreting XSLT engine instead "
                            "of the compiled closures (DESIGN.md §13); "
                            "GOLDCASE_NO_COMPILE=1 does the same")
    serve.add_argument("--no-incremental", action="store_true",
                       help="always rebuild sites cold on re-upload "
                            "instead of diff-driven republish "
                            "(DESIGN.md §14); GOLDCASE_NO_INCREMENTAL=1 "
                            "does the same")
    serve.add_argument("--access-log", nargs="?", const="-", default=None,
                       metavar="PATH",
                       help="write one JSON line per request (request id, "
                            "status, latency, cache flags, fault points) "
                            "to PATH, or stderr when no PATH is given")
    serve.add_argument("--slo", action="append", default=[],
                       metavar="SPEC",
                       help="add a service objective, e.g. "
                            "'p99:http.latency<5ms@1m', "
                            "'availability>=99.9%%@5m', "
                            "'ratio:http.stale/http.requests<1%%@5m'; "
                            "repeatable, replaces the defaults; evaluated "
                            "on /metrics and /dashboard")

    olap = sub.add_parser(
        "olap", help="run a slice/dice/roll-up query over a synthetic "
                     "dataset (DESIGN §16)")
    olap.add_argument("model", help="model .xml path")
    olap.add_argument("--cube", default=None,
                      help="predefined cube class id or name (excludes "
                           "the ad-hoc options below)")
    olap.add_argument("--fact", default=None, help="fact class id or name")
    olap.add_argument("--measure", action="append", default=[],
                      metavar="REF[:AGG]",
                      help="a measure, optionally with SUM/MAX/MIN/AVG/"
                           "COUNT (default SUM); repeatable")
    olap.add_argument("--dice", action="append", default=[],
                      metavar="DIM[@LEVEL]",
                      help="group by DIM at LEVEL (base grain without "
                           "@LEVEL); repeatable")
    olap.add_argument("--slice", action="append", default=[],
                      metavar="'ATTR OP VALUE'",
                      help="a slice predicate, e.g. "
                           "'Product.product_name NOTEQ \"unknown\"'; "
                           "repeatable")
    olap.add_argument("--seed", type=int, default=0,
                      help="data seed for the synthetic dataset")
    olap.add_argument("--members", type=int, default=8,
                      help="dimension members per level")
    olap.add_argument("--rows", type=int, default=2000,
                      help="fact rows per fact class")
    olap.add_argument("--format", choices=["table", "json", "xml"],
                      default="table", dest="output_format")

    fo = sub.add_parser(
        "fo", help="XSL-FO export with paginated rendering (paper §6)")
    fo.add_argument("model", help="model .xml path")
    fo.add_argument("--render", action="store_true",
                    help="render the FO document into text pages")
    fo.add_argument("output", nargs="?", default="-")

    return parser


def _write(path: str, content: str) -> None:
    if path == "-":
        sys.stdout.write(content)
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
    print(f"wrote {path}")


def _load_model(path: str):
    from ..mdm import xml_to_model

    with open(path, "rb") as handle:
        return xml_to_model(handle.read())


def _load_previous_build(directory: str):
    """(index, pages) reloaded from a published site directory, or None.

    Missing pages are simply omitted — :func:`republish_incremental`
    notices and falls back to a full publish (reason ``missing_page``).
    """
    import os

    from ..web.incremental import INDEX_FILENAME, DependencyIndex

    try:
        with open(os.path.join(directory, INDEX_FILENAME),
                  encoding="utf-8") as handle:
            index = DependencyIndex.from_json(handle.read())
    except (OSError, ValueError, KeyError):
        return None
    pages = {}
    for name in index.page_names:
        try:
            with open(os.path.join(directory, name),
                      encoding="utf-8") as handle:
                pages[name] = handle.read()
        except OSError:
            continue
    return index, pages


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    profile = getattr(args, "profile", None)
    trace_to = getattr(args, "trace", None)
    if profile is None and trace_to is None:
        return _run(args)

    from ..obs import RECORDER, build_trace, text_report, write_trace

    RECORDER.enable(clear=True)
    try:
        code = _run(args)
    finally:
        trace = build_trace()
        RECORDER.disable()
        path = trace_to or profile or "trace.json"
        write_trace(path, trace)
        print(f"wrote {path}", file=sys.stderr)
        if profile is not None:
            sys.stderr.write(text_report(trace))
    return code


def _run(args: argparse.Namespace) -> int:
    """Execute one parsed command; returns the process exit code."""
    if args.command == "demo":
        from ..mdm import (model_to_xml, sales_model, synthetic_model,
                           two_facts_model)

        factory = {"sales": sales_model, "retail": two_facts_model,
                   "synthetic": synthetic_model}[args.which]
        _write(args.output, model_to_xml(factory()))
        return 0

    if args.command == "validate":
        from ..xml import parse_file

        document = parse_file(args.model)
        if args.dtd:
            from ..dtd import parse_dtd, validate_dtd
            from ..mdm import gold_dtd_text

            report = validate_dtd(document, parse_dtd(gold_dtd_text()))
        else:
            from ..mdm import gold_schema
            from ..xsd import validate

            report = validate(document, gold_schema())
        print(report)
        exit_code = 0 if report.valid else 1
        if args.semantic and report.valid:
            from ..mdm import document_to_model, validate_model

            semantic = validate_model(document_to_model(document))
            print(semantic)
            exit_code = 0 if semantic.valid else 1
        return exit_code

    if args.command == "schema":
        from ..mdm import gold_schema_xml

        _write(args.output, gold_schema_xml())
        return 0

    if args.command == "dtd":
        from ..mdm import gold_dtd_text

        _write(args.output, gold_dtd_text())
        return 0

    if args.command == "tree":
        from ..mdm import gold_schema
        from ..web import render_schema_tree, render_schema_tree_html

        renderer = render_schema_tree_html if args.html \
            else render_schema_tree
        sys.stdout.write(renderer(gold_schema()))
        return 0

    if args.command == "publish":
        import os

        from ..web import check_site, publish_multi_page, publish_single_page
        from ..web.incremental import (INDEX_FILENAME, incremental_enabled,
                                       publish_with_index,
                                       republish_incremental,
                                       set_incremental_enabled)

        if args.no_compile:
            from ..xslt import set_compile_enabled

            set_compile_enabled(False)
        if args.no_incremental:
            set_incremental_enabled(False)
        model = _load_model(args.model)
        index = None
        note = ""
        if args.single:
            site = publish_single_page(model)
        elif not incremental_enabled():
            site = publish_multi_page(model)
        else:
            previous = _load_previous_build(args.incremental_from) \
                if args.incremental_from else None
            if previous is not None:
                site, index, info = republish_incremental(
                    model, previous[1], previous[0], verify_pages=True)
                if info["mode"] == "incremental":
                    note = (f" ({info['pages_rebuilt']} pages rebuilt, "
                            f"{info['pages_reused']} reused)")
                elif info["mode"] == "reuse":
                    note = " (no effective change; every page reused)"
                else:
                    note = (" (republished cold; incremental fallback: "
                            f"{info['reason']})")
            else:
                if args.incremental_from:
                    print(f"no usable {INDEX_FILENAME} under "
                          f"{args.incremental_from}; publishing cold",
                          file=sys.stderr)
                site, index = publish_with_index(model)
        written = site.write_to(args.directory)
        if index is not None:
            with open(os.path.join(args.directory, INDEX_FILENAME), "w",
                      encoding="utf-8") as handle:
                handle.write(index.to_json())
        report = check_site(site)
        print(f"{len(written)} files written to {args.directory}{note}; "
              f"{report.total_links} links checked, "
              f"{'all OK' if report.ok else 'BROKEN LINKS FOUND'}")
        return 0 if report.ok else 1

    if args.command == "present":
        from ..web import presentation_for

        model = _load_model(args.model)
        _write(args.output, presentation_for(model, args.fact))
        return 0

    if args.command == "export":
        from ..olap import snowflake_schema_sql, star_schema_sql

        model = _load_model(args.model)
        generator = star_schema_sql if args.sql == "star" \
            else snowflake_schema_sql
        sql = generator(model)
        if args.data:
            from ..olap import populate_star, star_data_sql

            star = populate_star(model, members_per_level=5,
                                 rows_per_fact=100)
            sql += "\n" + star_data_sql(star)
        _write(args.output, sql)
        return 0

    if args.command == "cwm":
        from ..cwm import cwm_to_xmi, model_to_cwm

        model = _load_model(args.model)
        schema = model_to_cwm(model, extended=not args.plain)
        _write(args.output, cwm_to_xmi(schema))
        return 0

    if args.command == "sourceview":
        from ..mdm import model_to_document
        from ..web import render_source_view

        model = _load_model(args.model)
        _write(args.output, render_source_view(
            model_to_document(model), title=f"{model.name} (source)"))
        return 0

    if args.command == "bundle":
        import os

        from ..web import client_bundle

        model = _load_model(args.model)
        bundle = client_bundle(model)
        os.makedirs(args.directory, exist_ok=True)
        files = {"model.xml": bundle.document_xml, **bundle.stylesheets}
        for name, content in files.items():
            with open(os.path.join(args.directory, name), "w",
                      encoding="utf-8") as handle:
                handle.write(content)
        print(f"{len(files)} files written to {args.directory} "
              "(open model.xml in an XSLT-capable browser)")
        return 0

    if args.command == "serve":
        import os

        from ..mdm import model_to_xml, sales_model, two_facts_model
        from ..server import (ModelRepositoryApp, ModelStoreError,
                              serve_forever)

        if args.faults:
            from ..faults import FAULTS, FaultPlan

            plan = FaultPlan.from_text(args.faults)
            FAULTS.activate(plan)
            print(f"fault plan active: {json.dumps(plan.describe())}",
                  file=sys.stderr)
        if args.no_compile:
            from ..xslt import set_compile_enabled

            set_compile_enabled(False)
        if args.no_incremental:
            from ..web.incremental import set_incremental_enabled

            set_incremental_enabled(False)
        if args.workers > 1 and (args.access_log is not None or args.slo):
            # Worker telemetry is constructed inside each forked
            # process; plumbing a shared log handle or SLO list through
            # the fork is not supported yet.
            print("--access-log/--slo require --workers 1",
                  file=sys.stderr)
            return 2
        telemetry = None
        if args.access_log is not None or args.slo:
            from ..server import ServerTelemetry

            access_log = None
            if args.access_log == "-":
                access_log = sys.stderr
            elif args.access_log is not None:
                access_log = open(  # noqa: SIM115 (lives for the server)
                    args.access_log, "a", encoding="utf-8")
            slos = None
            if args.slo:
                from ..obs.slo import parse_slo

                try:
                    slos = [parse_slo(spec) for spec in args.slo]
                except ValueError as exc:
                    print(f"bad --slo: {exc}", file=sys.stderr)
                    return 2
            telemetry = ServerTelemetry(access_log=access_log, slos=slos)
        app = None
        if args.workers > 1:
            # Pre-fork mode (DESIGN §17): durable state lives in the
            # build store; preloads go straight to disk and every
            # worker picks them up through the shared pointer files.
            import tempfile

            from ..server import BuildStore, SharedModelStore

            store_dir = args.store_dir or tempfile.mkdtemp(
                prefix="goldcase-store-")
            store = SharedModelStore(BuildStore(store_dir))
        else:
            app = ModelRepositoryApp(telemetry=telemetry)
            store = app.store
        if args.demo:
            for factory in (sales_model, two_facts_model):
                model = factory()
                xml = model_to_xml(model).encode("utf-8")
                record, _ = store.put(model.id, xml)
                print(f"preloaded {record.name} "
                      f"({record.content_hash[:12]})")
        for spec in args.model:
            name, _, path = spec.rpartition("=")
            if not name:
                name = os.path.splitext(os.path.basename(path))[0]
            with open(path, "rb") as handle:
                try:
                    record, _ = store.put(name, handle.read())
                except ModelStoreError as exc:
                    print(f"refusing to preload {path}: {exc.kind}",
                          file=sys.stderr)
                    for issue in exc.issues:
                        print(f"  {issue['path'] or 'document'}: "
                              f"{issue['message']}", file=sys.stderr)
                    return 1
            print(f"preloaded {record.name} ({record.content_hash[:12]}) "
                  f"from {path}")
        if args.workers > 1:
            from ..server import serve_forever_multi

            serve_forever_multi(
                store_dir, workers=args.workers, host=args.host,
                port=args.port, quiet=args.quiet,
                build_pool_processes=args.build_pool)
            return 0
        print(f"serving model repository on http://{args.host}:{args.port} "
              "(Ctrl-C to stop; /metrics and /dashboard expose telemetry)")
        serve_forever(app, host=args.host, port=args.port, quiet=args.quiet)
        return 0

    if args.command == "olap":
        import hashlib

        from ..mdm import xml_to_model
        from ..olap.engine import CubeEngine
        from ..olap.service import (DatasetConfig, QueryError, parse_query,
                                    render_json, render_xml, resolve_query,
                                    result_payload, synthesize_star)

        with open(args.model, "rb") as handle:
            xml_bytes = handle.read()
        model = xml_to_model(xml_bytes)
        params: dict[str, object] = {"seed": str(args.seed)}
        if args.cube:
            params["cube"] = args.cube
        if args.fact:
            params["fact"] = args.fact
        if args.measure:
            params["measure"] = args.measure
        if args.dice:
            params["dice"] = args.dice
        if args.slice:
            params["slice"] = args.slice
        try:
            spec = resolve_query(parse_query(params), model)
        except QueryError as exc:
            print(f"query rejected ({exc.kind}):", file=sys.stderr)
            for issue in exc.issues:
                print(f"  {issue['path'] or '/query'}: "
                      f"{issue['message']}", file=sys.stderr)
            return 1
        content_hash = hashlib.sha256(xml_bytes).hexdigest()
        config = DatasetConfig(members_per_level=args.members,
                               rows_per_fact=args.rows)
        star = synthesize_star(model, content_hash, spec.seed, config)
        result = CubeEngine(star).execute(spec.to_cube(model))
        if args.output_format == "table":
            summary = star.summary()
            print(f"dataset: {summary['fact_rows']} fact rows, "
                  f"{summary['members']} members "
                  f"(seed {spec.seed}, model {content_hash[:12]})")
            print(f"query key: {spec.query_key()}")
            print(result.pretty())
            print(f"({len(result.rows)} groups, "
                  f"{result.sliced_out} rows sliced out)")
            return 0
        payload = result_payload(model, content_hash, spec, result,
                                 dataset=star.summary())
        renderer = render_json if args.output_format == "json" \
            else render_xml
        sys.stdout.write(renderer(payload).decode("utf-8"))
        return 0

    if args.command == "fo":
        from ..web import model_to_fo, render_fo_pages
        from ..xml import pretty_print

        model = _load_model(args.model)
        if args.render:
            pages = render_fo_pages(model)
            rendered = []
            for page in pages:
                rendered.append(page.text())
                rendered.append(f"\n--- page {page.number} ---\n")
            _write(args.output, "\n".join(rendered))
        else:
            _write(args.output, pretty_print(model_to_fo(model)))
        return 0

    raise AssertionError(args.command)  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
