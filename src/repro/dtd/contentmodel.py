"""Compile DTD content models by reuse of the XSD automaton machinery.

A DTD children model ``(a, (b | c)*, d?)`` is structurally a particle tree,
so we translate it into :class:`~repro.xsd.components.Particle` objects and
compile with :class:`~repro.xsd.content.ContentAutomaton`.  The translation
keys occurrence suffixes to occurrence bounds: ``?`` → 0..1, ``*`` → 0..∞,
``+`` → 1..∞.
"""

from __future__ import annotations

from ..xsd.components import ElementDecl, ModelGroup, Particle
from ..xsd.content import ContentAutomaton
from .ast import ContentParticle, ElementType, GroupParticle, NameParticle

__all__ = ["compile_element_model"]

_OCCURRENCE_BOUNDS = {
    "": (1, 1),
    "?": (0, 1),
    "*": (0, None),
    "+": (1, None),
}


def compile_element_model(etype: ElementType) -> ContentAutomaton | None:
    """Compile the children model of *etype*; None for non-children kinds."""
    if etype.content_kind != "children" or etype.model is None:
        return None
    return ContentAutomaton(_translate(etype.model))


def _translate(particle: ContentParticle) -> Particle:
    low, high = _OCCURRENCE_BOUNDS[particle.occurrence]
    if isinstance(particle, NameParticle):
        return Particle(ElementDecl(particle.name), low, high)
    assert isinstance(particle, GroupParticle)
    kind = "sequence" if particle.kind == "seq" else "choice"
    group = ModelGroup(kind, [_translate(p) for p in particle.particles])
    return Particle(group, low, high)
