"""Component model for Document Type Definitions.

DTDs (the paper's earlier proposal [16]) declare element content models and
attribute lists.  These classes mirror the XML 1.0 declarations:

* ``<!ELEMENT name (model)>`` → :class:`ElementType`
* ``<!ATTLIST name attr type default>`` → :class:`AttributeDef`

Content-model expressions are a tiny regex language over element names
(``,`` sequence, ``|`` choice, ``?``/``*``/``+`` occurrence), represented
by :class:`ContentParticle` trees and compiled in
:mod:`repro.dtd.contentmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = [
    "ContentParticle",
    "NameParticle",
    "GroupParticle",
    "ElementType",
    "AttributeDef",
    "DTD",
    "ATTRIBUTE_TYPES",
]

#: Legal ATTLIST attribute types (enumerations are handled separately).
ATTRIBUTE_TYPES = frozenset({
    "CDATA", "ID", "IDREF", "IDREFS", "ENTITY", "ENTITIES",
    "NMTOKEN", "NMTOKENS",
})


class ContentParticle:
    """Base class of content-model expression nodes."""

    __slots__ = ("occurrence",)

    def __init__(self, occurrence: str = "") -> None:
        #: '' (exactly one), '?', '*', or '+'.
        self.occurrence = occurrence


class NameParticle(ContentParticle):
    """A child element name with an optional occurrence suffix."""

    __slots__ = ("name",)

    def __init__(self, name: str, occurrence: str = "") -> None:
        super().__init__(occurrence)
        self.name = name

    def __repr__(self) -> str:
        return f"{self.name}{self.occurrence}"


class GroupParticle(ContentParticle):
    """A ``(a, b)`` sequence or ``(a | b)`` choice group."""

    __slots__ = ("kind", "particles")

    def __init__(self, kind: str, particles: Sequence[ContentParticle],
                 occurrence: str = "") -> None:
        if kind not in ("seq", "choice"):
            raise ValueError(f"invalid group kind {kind!r}")
        super().__init__(occurrence)
        self.kind = kind
        self.particles = list(particles)

    def __repr__(self) -> str:
        sep = ", " if self.kind == "seq" else " | "
        inner = sep.join(repr(p) for p in self.particles)
        return f"({inner}){self.occurrence}"


@dataclass
class ElementType:
    """An ``<!ELEMENT>`` declaration.

    ``content_kind`` is ``"EMPTY"``, ``"ANY"``, ``"mixed"`` or
    ``"children"``; ``model`` is set for children content; ``mixed_names``
    for mixed content.
    """

    name: str
    content_kind: str
    model: Optional[ContentParticle] = None
    mixed_names: tuple[str, ...] = ()

    def describe(self) -> str:
        if self.content_kind == "children":
            return repr(self.model)
        if self.content_kind == "mixed":
            if self.mixed_names:
                names = " | ".join(self.mixed_names)
                return f"(#PCDATA | {names})*"
            return "(#PCDATA)"
        return self.content_kind


@dataclass
class AttributeDef:
    """One attribute in an ``<!ATTLIST>`` declaration."""

    element: str
    name: str
    type: str  # one of ATTRIBUTE_TYPES or 'enumeration'/'NOTATION'
    enumeration: tuple[str, ...] = ()
    #: '#REQUIRED', '#IMPLIED', '#FIXED', or '' (plain default).
    default_kind: str = "#IMPLIED"
    default_value: str | None = None


@dataclass
class DTD:
    """A parsed DTD: element types, attribute lists, entity declarations."""

    elements: dict[str, ElementType] = field(default_factory=dict)
    #: element name → attribute name → definition.
    attributes: dict[str, dict[str, AttributeDef]] = field(
        default_factory=dict)
    general_entities: dict[str, str] = field(default_factory=dict)
    parameter_entities: dict[str, str] = field(default_factory=dict)

    def attribute_defs(self, element: str) -> dict[str, AttributeDef]:
        """Attribute definitions for *element* (empty dict when none)."""
        return self.attributes.get(element, {})
