"""DTD substrate: the paper's baseline validation technology [16].

Parses Document Type Definitions and validates instance documents with
exact XML 1.0 validity semantics — including the weaknesses relative to
XML Schema the paper calls out (untyped attributes, unselective IDREFs).

Typical use::

    from repro.dtd import parse_dtd, validate_dtd
    dtd = parse_dtd(open('goldmodel.dtd').read())
    report = validate_dtd(document, dtd)
"""

from .ast import DTD, AttributeDef, ElementType, GroupParticle, NameParticle
from .parser import parse_dtd
from .validator import DTDValidator, validate_dtd

__all__ = [
    "DTD",
    "AttributeDef",
    "ElementType",
    "GroupParticle",
    "NameParticle",
    "parse_dtd",
    "DTDValidator",
    "validate_dtd",
]
