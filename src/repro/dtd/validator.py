"""Validating instance documents against a DTD.

This is the paper's *baseline*: the authors' earlier work [16] validated
CASE-tool documents with a DTD, and §3.1 motivates the move to XML Schema
with DTDs' two weaknesses — untyped attribute values (everything is CDATA
or a name token) and unselective references (an IDREF may point at *any*
ID in the document, not specifically at a ``dimclass``).  This validator
implements exactly the DTD semantics, so experiment V2 can demonstrate the
difference empirically.
"""

from __future__ import annotations

from ..xml.chars import is_name, is_ncname
from ..xml.dom import Document, Element, Text
from ..xsd.errors import ValidationReport
from .ast import AttributeDef, DTD
from .contentmodel import compile_element_model

__all__ = ["validate_dtd", "DTDValidator"]


def validate_dtd(document: Document | Element, dtd: DTD) -> ValidationReport:
    """Validate *document* against *dtd*; returns a ValidationReport."""
    return DTDValidator(dtd).validate(document)


class DTDValidator:
    """A reusable validator bound to one DTD."""

    def __init__(self, dtd: DTD) -> None:
        self.dtd = dtd
        self._automata = {
            name: compile_element_model(etype)
            for name, etype in dtd.elements.items()
        }

    def validate(self, document: Document | Element) -> ValidationReport:
        """Run validity checks and return the collected report."""
        report = ValidationReport()
        root = document.root_element if isinstance(document, Document) \
            else document
        if root is None:
            report.add("document has no root element")
            return report
        if isinstance(document, Document) and document.doctype_name and \
                document.doctype_name != root.name:
            report.add(
                f"root element <{root.name}> does not match DOCTYPE "
                f"{document.doctype_name!r}")

        ids: dict[str, str] = {}
        idrefs: list[tuple[str, str, int | None]] = []
        self._validate_element(root, f"/{root.name}", report, ids, idrefs)
        for value, path, line in idrefs:
            if value not in ids:
                report.add(
                    f"IDREF {value!r} does not match any ID in the document",
                    path=path, line=line)
        return report

    # -- elements ------------------------------------------------------------

    def _validate_element(self, element: Element, path: str,
                          report: ValidationReport, ids: dict[str, str],
                          idrefs: list[tuple[str, str, int | None]]) -> None:
        etype = self.dtd.elements.get(element.name)
        if etype is None:
            report.add(
                f"element <{element.name}> is not declared in the DTD",
                path=path, line=element.line)
        else:
            self._check_content(element, etype, path, report)
        self._check_attributes(element, path, report, ids, idrefs)

        ordinal: dict[str, int] = {}
        for child in element.children:
            if not isinstance(child, Element):
                continue
            number = ordinal.get(child.name, 0) + 1
            ordinal[child.name] = number
            self._validate_element(child, f"{path}/{child.name}[{number}]",
                                   report, ids, idrefs)

    def _check_content(self, element: Element, etype, path: str,
                       report: ValidationReport) -> None:
        children = [c for c in element.children if isinstance(c, Element)]
        has_text = any(
            isinstance(c, Text) and c.data.strip() for c in element.children)

        if etype.content_kind == "EMPTY":
            if children or has_text:
                report.add(
                    f"element <{element.name}> is declared EMPTY but has "
                    "content", path=path, line=element.line)
        elif etype.content_kind == "ANY":
            return
        elif etype.content_kind == "mixed":
            allowed = set(etype.mixed_names)
            for child in children:
                if child.name not in allowed:
                    report.add(
                        f"element <{child.name}> is not allowed in mixed "
                        f"content of <{element.name}>", path=path,
                        line=child.line)
        else:  # children
            if has_text:
                report.add(
                    f"element <{element.name}> has element content but "
                    "contains character data", path=path, line=element.line)
            automaton = self._automata.get(element.name)
            if automaton is not None:
                problem = automaton.validate(children)
                if problem is not None:
                    report.add(f"in <{element.name}>: {problem}", path=path,
                               line=element.line)

    # -- attributes -------------------------------------------------------------

    def _check_attributes(self, element: Element, path: str,
                          report: ValidationReport, ids: dict[str, str],
                          idrefs: list[tuple[str, str, int | None]]) -> None:
        defs = self.dtd.attribute_defs(element.name)
        present = {
            attr.name for attr in element.attributes
            if attr.name != "xmlns" and not attr.name.startswith("xmlns:")
        }

        for attr in list(element.attributes):
            if attr.name == "xmlns" or attr.name.startswith("xmlns:"):
                continue
            definition = defs.get(attr.name)
            if definition is None:
                report.add(
                    f"attribute {attr.name!r} is not declared for "
                    f"<{element.name}>", path=path, line=attr.line)
                continue
            self._check_attribute_value(attr.value, definition, path,
                                        attr.line, report, ids, idrefs)
            if definition.type == "ID":
                attr.is_id = True
            if definition.default_kind == "#FIXED" and \
                    attr.value != definition.default_value:
                report.add(
                    f"attribute {attr.name!r} must have the fixed value "
                    f"{definition.default_value!r}", path=path,
                    line=attr.line)

        for name, definition in defs.items():
            if name in present:
                continue
            if definition.default_kind == "#REQUIRED":
                report.add(
                    f"required attribute {name!r} is missing on "
                    f"<{element.name}>", path=path, line=element.line)
            elif definition.default_value is not None:
                added = element.set_attribute(name, definition.default_value)
                added.specified = False
                if definition.type == "ID":
                    added.is_id = True

    def _check_attribute_value(self, value: str, definition: AttributeDef,
                               path: str, line: int | None,
                               report: ValidationReport, ids: dict[str, str],
                               idrefs: list[tuple[str, str, int | None]]
                               ) -> None:
        att = definition.name
        kind = definition.type
        if kind == "CDATA":
            return
        normalized = " ".join(value.split())
        if kind == "ID":
            if not is_ncname(normalized) and not is_name(normalized):
                report.add(f"attribute {att!r}: {normalized!r} is not a "
                           "valid ID name", path=path, line=line)
            elif normalized in ids:
                report.add(
                    f"duplicate ID {normalized!r} (first used at "
                    f"{ids[normalized]})", path=path, line=line)
            else:
                ids[normalized] = path
        elif kind == "IDREF":
            idrefs.append((normalized, path, line))
        elif kind == "IDREFS":
            for token in normalized.split():
                idrefs.append((token, path, line))
        elif kind in ("NMTOKEN", "ENTITY"):
            if not normalized or " " in normalized:
                report.add(
                    f"attribute {att!r}: {value!r} is not a single token",
                    path=path, line=line)
        elif kind in ("NMTOKENS", "ENTITIES"):
            if not normalized:
                report.add(f"attribute {att!r}: empty token list",
                           path=path, line=line)
        elif kind in ("enumeration", "NOTATION"):
            if normalized not in definition.enumeration:
                allowed = ", ".join(definition.enumeration)
                report.add(
                    f"attribute {att!r}: value {normalized!r} not in "
                    f"({allowed})", path=path, line=line)
