"""Parser for DTD text (internal subsets and external ``.dtd`` files).

Supports ``<!ELEMENT>``, ``<!ATTLIST>``, ``<!ENTITY>`` (general and
parameter, internal values only), comments, and processing instructions.
Parameter-entity references (``%name;``) are expanded textually before
declaration parsing, as XML 1.0 prescribes for the common cases.
"""

from __future__ import annotations

from ..xml.errors import XMLSyntaxError
from ..xml.lexer import Scanner
from .ast import (
    ATTRIBUTE_TYPES,
    AttributeDef,
    ContentParticle,
    DTD,
    ElementType,
    GroupParticle,
    NameParticle,
)

__all__ = ["parse_dtd"]


def parse_dtd(text: str) -> DTD:
    """Parse DTD declarations from *text* into a :class:`DTD`."""
    dtd = DTD()
    _collect_parameter_entities(text, dtd)
    expanded = _expand_parameter_entities(text, dtd)
    _Parser(expanded, dtd).run()
    return dtd


def _collect_parameter_entities(text: str, dtd: DTD) -> None:
    scanner = Scanner(text)
    while not scanner.at_end:
        if scanner.startswith("<!ENTITY"):
            start = scanner.pos
            scanner.advance(8)
            scanner.skip_space()
            if scanner.peek() == "%":
                scanner.advance()
                scanner.skip_space()
                name = scanner.read_name("parameter entity name")
                scanner.skip_space()
                value = scanner.read_quoted("entity value")
                dtd.parameter_entities[name] = value
                scanner.skip_space()
                if scanner.peek() == ">":
                    scanner.advance()
                continue
            scanner.pos = start + 1
        else:
            scanner.advance()


def _expand_parameter_entities(text: str, dtd: DTD, depth: int = 0) -> str:
    if depth > 10:
        raise XMLSyntaxError("parameter entity expansion too deep")
    if "%" not in text or not dtd.parameter_entities:
        return text
    out: list[str] = []
    index = 0
    while index < len(text):
        ch = text[index]
        if ch == "%":
            end = text.find(";", index + 1)
            candidate = text[index + 1:end] if end != -1 else ""
            if candidate in dtd.parameter_entities:
                replacement = dtd.parameter_entities[candidate]
                out.append(_expand_parameter_entities(
                    replacement, dtd, depth + 1))
                index = end + 1
                continue
        out.append(ch)
        index += 1
    return "".join(out)


class _Parser:
    def __init__(self, text: str, dtd: DTD) -> None:
        self.scanner = Scanner(text)
        self.dtd = dtd

    def run(self) -> None:
        scanner = self.scanner
        while True:
            scanner.skip_space()
            if scanner.at_end:
                return
            if scanner.startswith("<!--"):
                scanner.advance(4)
                scanner.read_until("-->", "comment")
            elif scanner.startswith("<!ELEMENT"):
                self._parse_element_decl()
            elif scanner.startswith("<!ATTLIST"):
                self._parse_attlist_decl()
            elif scanner.startswith("<!ENTITY"):
                self._parse_entity_decl()
            elif scanner.startswith("<!NOTATION"):
                scanner.read_until(">", "notation declaration")
            elif scanner.startswith("<?"):
                scanner.read_until("?>", "processing instruction")
            else:
                raise scanner.error(
                    f"unexpected content in DTD: {scanner.peek()!r}")

    # -- <!ELEMENT ...> ------------------------------------------------------

    def _parse_element_decl(self) -> None:
        scanner = self.scanner
        scanner.expect("<!ELEMENT")
        scanner.require_space("after <!ELEMENT")
        name = scanner.read_name("element name")
        scanner.require_space("after element name")
        if name in self.dtd.elements:
            raise scanner.error(f"duplicate <!ELEMENT {name}> declaration")

        if scanner.match("EMPTY"):
            etype = ElementType(name, "EMPTY")
        elif scanner.match("ANY"):
            etype = ElementType(name, "ANY")
        elif scanner.startswith("("):
            etype = self._parse_content_spec(name)
        else:
            raise scanner.error("expected EMPTY, ANY, or a content model")
        scanner.skip_space()
        scanner.expect(">", "'>' ending element declaration")
        self.dtd.elements[name] = etype

    def _parse_content_spec(self, element_name: str) -> ElementType:
        scanner = self.scanner
        checkpoint = scanner.pos
        scanner.expect("(")
        scanner.skip_space()
        if scanner.startswith("#PCDATA"):
            scanner.advance(7)
            names: list[str] = []
            while True:
                scanner.skip_space()
                if scanner.match(")"):
                    # '(#PCDATA)' may be followed by '*'; with names it must.
                    starred = scanner.match("*")
                    if names and not starred:
                        raise scanner.error(
                            "mixed content with names must end in ')*'")
                    return ElementType(element_name, "mixed",
                                       mixed_names=tuple(names))
                scanner.expect("|", "'|' in mixed content")
                scanner.skip_space()
                names.append(scanner.read_name("element name"))
        scanner.pos = checkpoint
        model = self._parse_children_group()
        return ElementType(element_name, "children", model=model)

    def _parse_children_group(self) -> ContentParticle:
        scanner = self.scanner
        scanner.expect("(")
        particles = [self._parse_cp()]
        scanner.skip_space()
        separator = None
        while not scanner.startswith(")"):
            if scanner.match(","):
                kind = ","
            elif scanner.match("|"):
                kind = "|"
            else:
                raise scanner.error("expected ',', '|' or ')'")
            if separator is None:
                separator = kind
            elif separator != kind:
                raise scanner.error(
                    "cannot mix ',' and '|' in one group")
            scanner.skip_space()
            particles.append(self._parse_cp())
            scanner.skip_space()
        scanner.expect(")")
        group_kind = "choice" if separator == "|" else "seq"
        group = GroupParticle(group_kind, particles)
        group.occurrence = self._parse_occurrence()
        return group

    def _parse_cp(self) -> ContentParticle:
        scanner = self.scanner
        scanner.skip_space()
        if scanner.startswith("("):
            return self._parse_children_group()
        name = scanner.read_name("element name in content model")
        particle = NameParticle(name)
        particle.occurrence = self._parse_occurrence()
        return particle

    def _parse_occurrence(self) -> str:
        ch = self.scanner.peek()
        if ch in ("?", "*", "+"):
            self.scanner.advance()
            return ch
        return ""

    # -- <!ATTLIST ...> -------------------------------------------------------

    def _parse_attlist_decl(self) -> None:
        scanner = self.scanner
        scanner.expect("<!ATTLIST")
        scanner.require_space("after <!ATTLIST")
        element = scanner.read_name("element name")
        defs = self.dtd.attributes.setdefault(element, {})
        while True:
            had_space = scanner.skip_space()
            if scanner.match(">"):
                return
            if not had_space:
                raise scanner.error("white space required before attribute")
            name = scanner.read_name("attribute name")
            scanner.require_space("after attribute name")
            att_type, enumeration = self._parse_att_type()
            scanner.require_space("after attribute type")
            default_kind, default_value = self._parse_default()
            # First declaration wins, per XML 1.0 §3.3.
            if name not in defs:
                defs[name] = AttributeDef(
                    element=element, name=name, type=att_type,
                    enumeration=enumeration, default_kind=default_kind,
                    default_value=default_value)

    def _parse_att_type(self) -> tuple[str, tuple[str, ...]]:
        scanner = self.scanner
        if scanner.startswith("NOTATION"):
            scanner.advance(8)
            scanner.require_space("after NOTATION")
            values = self._parse_enumeration(read_names=True)
            return "NOTATION", values
        if scanner.startswith("("):
            return "enumeration", self._parse_enumeration(read_names=False)
        for att_type in sorted(ATTRIBUTE_TYPES, key=len, reverse=True):
            if scanner.match(att_type):
                return att_type, ()
        raise scanner.error("expected an attribute type")

    def _parse_enumeration(self, read_names: bool) -> tuple[str, ...]:
        scanner = self.scanner
        scanner.expect("(")
        values: list[str] = []
        while True:
            scanner.skip_space()
            values.append(self._read_nmtoken())
            scanner.skip_space()
            if scanner.match(")"):
                return tuple(values)
            scanner.expect("|", "'|' in enumeration")

    def _read_nmtoken(self) -> str:
        from ..xml.chars import is_name_char

        scanner = self.scanner
        start = scanner.pos
        while not scanner.at_end and is_name_char(scanner.peek()):
            scanner.advance()
        if scanner.pos == start:
            raise scanner.error("expected an NMTOKEN")
        return scanner.text[start:scanner.pos]

    def _parse_default(self) -> tuple[str, str | None]:
        scanner = self.scanner
        if scanner.match("#REQUIRED"):
            return "#REQUIRED", None
        if scanner.match("#IMPLIED"):
            return "#IMPLIED", None
        if scanner.match("#FIXED"):
            scanner.require_space("after #FIXED")
            return "#FIXED", scanner.read_quoted("fixed value")
        return "", scanner.read_quoted("default value")

    # -- <!ENTITY ...> ------------------------------------------------------------

    def _parse_entity_decl(self) -> None:
        scanner = self.scanner
        scanner.expect("<!ENTITY")
        scanner.require_space("after <!ENTITY")
        if scanner.peek() == "%":
            # Parameter entities were pre-collected; skip the declaration.
            scanner.read_until(">", "entity declaration")
            return
        name = scanner.read_name("entity name")
        scanner.require_space("after entity name")
        if scanner.startswith("SYSTEM") or scanner.startswith("PUBLIC"):
            raise scanner.error(
                "external entities are not supported in this subset")
        value = scanner.read_quoted("entity value")
        self.dtd.general_entities[name] = value
        scanner.skip_space()
        scanner.expect(">", "'>' ending entity declaration")
