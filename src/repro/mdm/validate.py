"""Semantic validation of GOLD models.

These checks enforce the constraints §2 states informally and §3.1
encodes in the XML Schema:

* identifiers are globally unique (``xsd:ID``);
* shared aggregations and additivity rules reference existing dimension
  classes (the ``dimclassKey`` keyrefs);
* additivity rules name dimensions the fact actually shares (stronger
  than the schema can express — the CASE-tool layer of checking);
* every classification hierarchy is a **DAG rooted in the dimension
  class** ({dag}), checked with :mod:`networkx`;
* every level has exactly one identifying ({OID}) and at most one
  descriptor ({D}) attribute; a missing descriptor is a warning because
  OLAP export needs it (§2);
* cube classes reference existing facts, measures, dimensions, levels,
  and respect additivity rules.
"""

from __future__ import annotations

import networkx as nx

from ..xsd.errors import ValidationReport
from .dimensions import DimensionClass
from .model import GoldModel

__all__ = ["validate_model"]


def validate_model(model: GoldModel) -> ValidationReport:
    """Run every semantic check; returns a report of errors and warnings."""
    report = ValidationReport()
    _check_unique_ids(model, report)
    _check_fact_references(model, report)
    for dimension in model.dimensions:
        _check_hierarchy_dag(dimension, report)
        _check_level_attributes(dimension, report)
    _check_cubes(model, report)
    return report


def _check_unique_ids(model: GoldModel, report: ValidationReport) -> None:
    seen: set[str] = set()
    for identifier in model.all_ids():
        if identifier in seen:
            report.add(f"duplicate identifier {identifier!r}",
                       code="mdm-unique-id")
        seen.add(identifier)


def _check_fact_references(model: GoldModel,
                           report: ValidationReport) -> None:
    dimension_ids = {d.id for d in model.dimensions}
    for fact in model.facts:
        shared: set[str] = set()
        for aggregation in fact.aggregations:
            if aggregation.dimension not in dimension_ids:
                report.add(
                    f"fact {fact.name!r}: shared aggregation references "
                    f"unknown dimension {aggregation.dimension!r}",
                    path=fact.id, code="mdm-dangling-dimension")
            if aggregation.dimension in shared:
                report.add(
                    f"fact {fact.name!r}: duplicate shared aggregation to "
                    f"dimension {aggregation.dimension!r}",
                    path=fact.id, code="mdm-duplicate-aggregation")
            shared.add(aggregation.dimension)
        for attribute in fact.attributes:
            for rule in attribute.additivity:
                if rule.dimension not in dimension_ids:
                    report.add(
                        f"fact {fact.name!r}: additivity rule of "
                        f"{attribute.name!r} references unknown dimension "
                        f"{rule.dimension!r}",
                        path=fact.id, code="mdm-dangling-dimension")
                elif rule.dimension not in shared:
                    report.add(
                        f"fact {fact.name!r}: additivity rule of "
                        f"{attribute.name!r} names dimension "
                        f"{rule.dimension!r} the fact does not share",
                        path=fact.id, code="mdm-additivity-scope")
        if fact.is_factless:
            report.add(
                f"fact {fact.name!r} has no attributes (fact-less fact "
                "table)", path=fact.id, severity="warning",
                code="mdm-factless")


def _check_hierarchy_dag(dimension: DimensionClass,
                         report: ValidationReport) -> None:
    known = {dimension.id} | {
        level.id for level in dimension.iter_levels()}
    graph = nx.DiGraph()
    graph.add_node(dimension.id)
    for source, target, _relation in dimension.hierarchy_edges():
        if target not in known:
            report.add(
                f"dimension {dimension.name!r}: relation from {source!r} "
                f"references unknown level {target!r}",
                path=dimension.id, code="mdm-dangling-level")
            continue
        graph.add_edge(source, target)

    if not nx.is_directed_acyclic_graph(graph):
        cycle = nx.find_cycle(graph)
        shown = " -> ".join(edge[0] for edge in cycle)
        report.add(
            f"dimension {dimension.name!r}: classification hierarchy has a "
            f"cycle ({shown}) — the {{dag}} constraint is violated",
            path=dimension.id, code="mdm-dag")
        return

    # Rooted: every level reachable from the dimension class.
    reachable = nx.descendants(graph, dimension.id) | {dimension.id}
    for level in dimension.iter_levels():
        if level.id not in reachable and \
                level not in dimension.categorization_levels:
            report.add(
                f"dimension {dimension.name!r}: level {level.name!r} is "
                "not reachable from the dimension class (the DAG must be "
                "rooted in the dimension class)",
                path=dimension.id, code="mdm-dag-root")


def _check_level_attributes(dimension: DimensionClass,
                            report: ValidationReport) -> None:
    carriers = [(dimension.name, dimension.attributes)] + [
        (level.name, level.attributes) for level in dimension.levels]
    for name, attributes in carriers:
        oids = [a for a in attributes if a.is_oid]
        descriptors = [a for a in attributes if a.is_descriptor]
        if not oids:
            report.add(
                f"dimension {dimension.name!r}: {name!r} has no "
                "identifying {OID} attribute (required for OLAP export)",
                path=dimension.id, code="mdm-oid")
        elif len(oids) > 1:
            report.add(
                f"dimension {dimension.name!r}: {name!r} has "
                f"{len(oids)} {{OID}} attributes; exactly one is required",
                path=dimension.id, code="mdm-oid")
        if not descriptors:
            report.add(
                f"dimension {dimension.name!r}: {name!r} has no "
                "descriptor {D} attribute",
                path=dimension.id, severity="warning", code="mdm-descriptor")
        elif len(descriptors) > 1:
            report.add(
                f"dimension {dimension.name!r}: {name!r} has "
                f"{len(descriptors)} {{D}} attributes; at most one is "
                "expected", path=dimension.id, code="mdm-descriptor")


def _check_cubes(model: GoldModel, report: ValidationReport) -> None:
    for cube in model.cubes:
        for problem in cube.check_against(model):
            report.add(problem, path=cube.id, code="mdm-cube")
