"""Generation of the paper's ``goldmodel`` XML Schema and DTD.

:func:`gold_schema` builds the XML Schema of §3.1 programmatically
(Russian-doll design): the ``goldmodel`` root with ``factclasses`` /
``dimclasses`` / ``cubeclasses``, the user-defined ``Operator`` and
``Multiplicity`` simple types, boolean-flag additivity elements, and —
the feature the paper highlights over DTDs — ``xsd:key`` / ``xsd:keyref``
constraints making references *selective* (``additivity/@dimclass`` must
point at a ``dimclass/@id``, not just any ID).

:func:`gold_dtd` produces the equivalent DTD, reproducing the authors'
earlier proposal [16] as the comparison baseline: same structure, but
attribute values are untyped and references are plain IDREFs.

:func:`gold_schema_xml` / :func:`gold_dtd_text` render file-ready text.
"""

from __future__ import annotations

from functools import lru_cache

from ..xsd.facets import Enumeration
from ..xsd.schema import Schema, SchemaBuilder
from ..xsd.writer import schema_to_xml

__all__ = ["gold_schema", "gold_schema_xml", "gold_dtd_text",
           "OPERATOR_VALUES", "MULTIPLICITY_VALUES", "AGGREGATION_VALUES"]

#: Enumeration values of the paper's ``Operator`` simple type (§3.1).
OPERATOR_VALUES = ("EQ", "LT", "GT", "LET", "GET", "NOTEQ", "LIKE",
                   "NOTLIKE", "IN", "NOTIN")

#: Enumeration values of the paper's ``Multiplicity`` simple type (§3.1).
MULTIPLICITY_VALUES = ("0", "1", "M", "1..M")

#: Aggregation functions usable on cube measures.
AGGREGATION_VALUES = ("SUM", "MAX", "MIN", "AVG", "COUNT")


@lru_cache(maxsize=1)
def gold_schema() -> Schema:
    """The compiled goldmodel XML Schema (memoized)."""
    b = SchemaBuilder()

    operator = b.enumeration("string", list(OPERATOR_VALUES),
                             name="Operator")
    multiplicity = b.enumeration("string", list(MULTIPLICITY_VALUES),
                                 name="Multiplicity")
    aggregation = b.enumeration("string", list(AGGREGATION_VALUES),
                                name="Aggregation")

    # -- shared named types (flat part of the mostly-Russian-doll design) --
    method = b.element("method", b.complex_type(
        content=b.sequence(
            b.particle(b.element("param", b.complex_type(attributes=[
                b.attribute("name", "string", use="required"),
                b.attribute("type", "string"),
            ])), 0, None)),
        attributes=[
            b.attribute("id", "ID", use="required"),
            b.attribute("name", "string", use="required"),
            b.attribute("returntype", "string"),
            b.attribute("visibility", "string"),
            b.attribute("description", "string"),
        ]))
    methods_type = b.complex_type(
        name="methodstype",
        content=b.sequence(b.particle(method, 1, None)))

    dimatt = b.element("dimatt", b.complex_type(attributes=[
        b.attribute("id", "ID", use="required"),
        b.attribute("name", "string", use="required"),
        b.attribute("type", "string"),
        b.attribute("oid", "boolean", default="false"),
        b.attribute("d", "boolean", default="false"),
        b.attribute("description", "string"),
    ]))
    dimatts_type = b.complex_type(
        name="dimattstype",
        content=b.sequence(b.particle(dimatt, 1, None)))

    relationasoc = b.element("relationasoc", b.complex_type(attributes=[
        b.attribute("child", "IDREF", use="required"),
        b.attribute("name", "string"),
        b.attribute("description", "string"),
        b.attribute("rolea", multiplicity, default="1"),
        b.attribute("roleb", multiplicity, default="M"),
        b.attribute("completeness", "boolean"),
    ]))
    relationasocs_type = b.complex_type(
        name="relationasocstype",
        content=b.sequence(b.particle(relationasoc, 1, None)))

    # -- fact classes -----------------------------------------------------------
    additivity = b.element("additivity", b.complex_type(attributes=[
        b.attribute("dimclass", "IDREF", use="required"),
        b.attribute("isnot", "boolean", default="false"),
        b.attribute("issum", "boolean", default="false"),
        b.attribute("ismax", "boolean", default="false"),
        b.attribute("ismin", "boolean", default="false"),
        b.attribute("isavg", "boolean", default="false"),
        b.attribute("iscount", "boolean"),
    ]))

    factatt = b.element("factatt", b.complex_type(
        content=b.sequence(b.particle(additivity, 0, None)),
        attributes=[
            b.attribute("id", "ID", use="required"),
            b.attribute("name", "string", use="required"),
            b.attribute("type", "string"),
            b.attribute("isoid", "boolean", default="false"),
            b.attribute("isderived", "boolean", default="false"),
            b.attribute("atomic", "boolean", default="true"),
            b.attribute("derivationrule", "string"),
            b.attribute("description", "string"),
        ]))

    sharedagg = b.element("sharedagg", b.complex_type(attributes=[
        b.attribute("dimclass", "IDREF", use="required"),
        b.attribute("name", "string"),
        b.attribute("description", "string"),
        b.attribute("rolea", multiplicity, default="M"),
        b.attribute("roleb", multiplicity, default="1"),
    ]))

    factclass = b.element("factclass", b.complex_type(
        content=b.sequence(
            b.particle(b.element("factatts", b.complex_type(
                content=b.sequence(b.particle(factatt, 1, None)))), 0, 1),
            b.particle(b.element("methods", methods_type), 0, 1),
            b.particle(b.element("sharedaggs", b.complex_type(
                content=b.sequence(b.particle(sharedagg, 1, None)))), 0, 1),
        ),
        attributes=[
            b.attribute("id", "ID", use="required"),
            b.attribute("name", "string", use="required"),
            b.attribute("caption", "string"),
            b.attribute("description", "string"),
        ]))

    # -- dimension classes ---------------------------------------------------------
    def level_element(tag: str):
        return b.element(tag, b.complex_type(
            content=b.sequence(
                b.particle(b.element("dimatts", dimatts_type), 0, 1),
                b.particle(b.element("relationasocs", relationasocs_type),
                           0, 1),
                b.particle(b.element("methods", methods_type), 0, 1),
            ),
            attributes=[
                b.attribute("id", "ID", use="required"),
                b.attribute("name", "string", use="required"),
                b.attribute("description", "string"),
            ]))

    dimclass = b.element("dimclass", b.complex_type(
        content=b.sequence(
            b.particle(b.element("dimatts", dimatts_type), 0, 1),
            b.particle(b.element("relationasocs", relationasocs_type), 0, 1),
            b.particle(b.element("asoclevels", b.complex_type(
                content=b.sequence(
                    b.particle(level_element("asoclevel"), 1, None)))),
                0, 1),
            b.particle(b.element("catlevels", b.complex_type(
                content=b.sequence(
                    b.particle(level_element("catlevel"), 1, None)))),
                0, 1),
            b.particle(b.element("methods", methods_type), 0, 1),
        ),
        attributes=[
            b.attribute("id", "ID", use="required"),
            b.attribute("name", "string", use="required"),
            b.attribute("caption", "string"),
            b.attribute("description", "string"),
            b.attribute("istime", "boolean", default="false"),
        ]))

    # -- cube classes ------------------------------------------------------------------
    measure = b.element("measure", b.complex_type(attributes=[
        b.attribute("ref", "IDREF", use="required"),
        b.attribute("aggregation", aggregation),
    ]))
    slice_el = b.element("slice", b.complex_type(attributes=[
        b.attribute("attribute", "string", use="required"),
        b.attribute("operator", operator, use="required"),
        b.attribute("value", "string", use="required"),
    ]))
    dice = b.element("dice", b.complex_type(attributes=[
        b.attribute("dimclass", "IDREF", use="required"),
        b.attribute("level", "IDREF", use="required"),
    ]))
    cubeclass = b.element("cubeclass", b.complex_type(
        content=b.sequence(
            b.particle(b.element("measures", b.complex_type(
                content=b.sequence(b.particle(measure, 1, None)))), 0, 1),
            b.particle(b.element("slices", b.complex_type(
                content=b.sequence(b.particle(slice_el, 1, None)))), 0, 1),
            b.particle(b.element("dices", b.complex_type(
                content=b.sequence(b.particle(dice, 1, None)))), 0, 1),
        ),
        attributes=[
            b.attribute("id", "ID", use="required"),
            b.attribute("name", "string", use="required"),
            b.attribute("fact", "IDREF", use="required"),
            b.attribute("description", "string"),
        ]))

    # -- root --------------------------------------------------------------------------
    goldmodel = b.element(
        "goldmodel",
        b.complex_type(
            content=b.sequence(
                b.particle(b.element("factclasses", b.complex_type(
                    content=b.sequence(b.particle(factclass, 0, None)))),
                    1, 1),
                b.particle(b.element("dimclasses", b.complex_type(
                    content=b.sequence(b.particle(dimclass, 0, None)))),
                    1, 1),
                b.particle(b.element("cubeclasses", b.complex_type(
                    content=b.sequence(b.particle(cubeclass, 0, None)))),
                    0, 1),
            ),
            attributes=[
                b.attribute("id", "ID", use="required"),
                b.attribute("name", "string", use="required"),
                b.attribute("showatts", "boolean", default="true"),
                b.attribute("showmethods", "boolean", default="true"),
                b.attribute("creationdate", "date"),
                b.attribute("lastmodified", "date"),
                b.attribute("description", "string"),
                b.attribute("responsible", "string"),
            ]),
        constraints=[
            # The selective references §3.1 presents as the advance over
            # DTDs: dimension references must hit dimclass ids.
            b.key("dimclassKey", "dimclasses/dimclass", ["@id"]),
            b.keyref(
                "additivityDimclassKey",
                "factclasses/factclass/factatts/factatt/additivity",
                ["@dimclass"], refer="dimclassKey"),
            b.keyref(
                "sharedaggDimclassKey",
                "factclasses/factclass/sharedaggs/sharedagg",
                ["@dimclass"], refer="dimclassKey"),
            b.keyref(
                "diceDimclassKey", "cubeclasses/cubeclass/dices/dice",
                ["@dimclass"], refer="dimclassKey"),
            b.key("factclassKey", "factclasses/factclass", ["@id"]),
            b.keyref("cubeFactKey", "cubeclasses/cubeclass", ["@fact"],
                     refer="factclassKey"),
            b.key(
                "levelKey",
                "dimclasses/dimclass/asoclevels/asoclevel | "
                "dimclasses/dimclass/catlevels/catlevel | "
                "dimclasses/dimclass",
                ["@id"]),
            b.keyref(
                "relationChildKey",
                "dimclasses/dimclass/relationasocs/relationasoc | "
                "dimclasses/dimclass/asoclevels/asoclevel/relationasocs"
                "/relationasoc",
                ["@child"], refer="levelKey"),
        ])

    return b.build(goldmodel, documentation=(
        "XML Schema for GOLD conceptual multidimensional models "
        "(Lujan-Mora, Medina, Trujillo - EDBT 2002 workshops). "
        "Generated by repro.mdm.schema_gen."))


def gold_schema_xml() -> str:
    """The goldmodel schema as ``.xsd`` document text."""
    return schema_to_xml(gold_schema())


def gold_dtd_text() -> str:
    """The equivalent DTD — the baseline proposal [16].

    Structure matches the XML Schema, but with DTD expressiveness only:
    enumerations survive, yet dates are CDATA and every reference is an
    unselective IDREF.
    """
    multiplicity = "|".join(v.replace("..", "..") for v in
                            MULTIPLICITY_VALUES)
    operator = "|".join(OPERATOR_VALUES)
    aggregation = "|".join(AGGREGATION_VALUES)
    return f"""<!-- DTD for GOLD multidimensional models (baseline [16]) -->
<!ELEMENT goldmodel (factclasses, dimclasses, cubeclasses?)>
<!ATTLIST goldmodel
  id ID #REQUIRED
  name CDATA #REQUIRED
  showatts (true|false) "true"
  showmethods (true|false) "true"
  creationdate CDATA #IMPLIED
  lastmodified CDATA #IMPLIED
  description CDATA #IMPLIED
  responsible CDATA #IMPLIED>

<!ELEMENT factclasses (factclass*)>
<!ELEMENT factclass (factatts?, methods?, sharedaggs?)>
<!ATTLIST factclass
  id ID #REQUIRED
  name CDATA #REQUIRED
  caption CDATA #IMPLIED
  description CDATA #IMPLIED>

<!ELEMENT factatts (factatt+)>
<!ELEMENT factatt (additivity*)>
<!ATTLIST factatt
  id ID #REQUIRED
  name CDATA #REQUIRED
  type CDATA #IMPLIED
  isoid (true|false) "false"
  isderived (true|false) "false"
  atomic (true|false) "true"
  derivationrule CDATA #IMPLIED
  description CDATA #IMPLIED>

<!ELEMENT additivity EMPTY>
<!ATTLIST additivity
  dimclass IDREF #REQUIRED
  isnot (true|false) "false"
  issum (true|false) "false"
  ismax (true|false) "false"
  ismin (true|false) "false"
  isavg (true|false) "false"
  iscount (true|false) #IMPLIED>

<!ELEMENT sharedaggs (sharedagg+)>
<!ELEMENT sharedagg EMPTY>
<!ATTLIST sharedagg
  dimclass IDREF #REQUIRED
  name CDATA #IMPLIED
  description CDATA #IMPLIED
  rolea ({multiplicity}) "M"
  roleb ({multiplicity}) "1">

<!ELEMENT methods (method+)>
<!ELEMENT method (param*)>
<!ATTLIST method
  id ID #REQUIRED
  name CDATA #REQUIRED
  returntype CDATA #IMPLIED
  visibility CDATA #IMPLIED
  description CDATA #IMPLIED>
<!ELEMENT param EMPTY>
<!ATTLIST param
  name CDATA #REQUIRED
  type CDATA #IMPLIED>

<!ELEMENT dimclasses (dimclass*)>
<!ELEMENT dimclass (dimatts?, relationasocs?, asoclevels?, catlevels?,
                    methods?)>
<!ATTLIST dimclass
  id ID #REQUIRED
  name CDATA #REQUIRED
  caption CDATA #IMPLIED
  description CDATA #IMPLIED
  istime (true|false) "false">

<!ELEMENT dimatts (dimatt+)>
<!ELEMENT dimatt EMPTY>
<!ATTLIST dimatt
  id ID #REQUIRED
  name CDATA #REQUIRED
  type CDATA #IMPLIED
  oid (true|false) "false"
  d (true|false) "false"
  description CDATA #IMPLIED>

<!ELEMENT relationasocs (relationasoc+)>
<!ELEMENT relationasoc EMPTY>
<!ATTLIST relationasoc
  child IDREF #REQUIRED
  name CDATA #IMPLIED
  description CDATA #IMPLIED
  rolea ({multiplicity}) "1"
  roleb ({multiplicity}) "M"
  completeness (true|false) #IMPLIED>

<!ELEMENT asoclevels (asoclevel+)>
<!ELEMENT asoclevel (dimatts?, relationasocs?, methods?)>
<!ATTLIST asoclevel
  id ID #REQUIRED
  name CDATA #REQUIRED
  description CDATA #IMPLIED>

<!ELEMENT catlevels (catlevel+)>
<!ELEMENT catlevel (dimatts?, relationasocs?, methods?)>
<!ATTLIST catlevel
  id ID #REQUIRED
  name CDATA #REQUIRED
  description CDATA #IMPLIED>

<!ELEMENT cubeclasses (cubeclass*)>
<!ELEMENT cubeclass (measures?, slices?, dices?)>
<!ATTLIST cubeclass
  id ID #REQUIRED
  name CDATA #REQUIRED
  fact IDREF #REQUIRED
  description CDATA #IMPLIED>

<!ELEMENT measures (measure+)>
<!ELEMENT measure EMPTY>
<!ATTLIST measure
  ref IDREF #REQUIRED
  aggregation ({aggregation}) #IMPLIED>

<!ELEMENT slices (slice+)>
<!ELEMENT slice EMPTY>
<!ATTLIST slice
  attribute CDATA #REQUIRED
  operator ({operator}) #REQUIRED
  value CDATA #REQUIRED>

<!ELEMENT dices (dice+)>
<!ELEMENT dice EMPTY>
<!ATTLIST dice
  dimclass IDREF #REQUIRED
  level IDREF #REQUIRED>
"""
