"""Canonical example models.

:func:`sales_model` reconstructs the paper's running example (a sales
data warehouse): the ``Sales`` fact class with the ``inventory``,
``num_ticket`` and ``qty`` attributes shown in Fig. 6.2 (the ticket and
line numbers stored as degenerate dimensions, §2), and the ``Time``
dimension whose page in Fig. 6.4 lists the ``Month`` and ``Week``
association levels (alternative paths, converging non-strictly on
``Year``).

:func:`two_facts_model` is the Fig. 5 scenario: two fact classes sharing
common dimensions, used to generate per-fact-class presentations.

:func:`synthetic_model` generates models of arbitrary size for the
scaling benchmarks.
"""

from __future__ import annotations

from datetime import date

from .builder import ModelBuilder
from .enums import AggregationKind, Multiplicity, Operator
from .model import GoldModel

__all__ = ["sales_model", "two_facts_model", "synthetic_model"]


def sales_model() -> GoldModel:
    """The paper's sales data warehouse example."""
    b = ModelBuilder(
        "Sales DW", model_id="goldSales",
        description="Sales data warehouse from the EDBT 2002 paper",
        responsible="DW team",
        creation_date=date(2002, 3, 1))

    time = (b.dimension("Time", is_time=True,
                        description="When the ticket was issued")
            .attribute("day_id", type_="Number", oid=True)
            .attribute("day_date", type_="Date", descriptor=True)
            .attribute("is_holiday", type_="Boolean"))
    (time.level("Month")
         .attribute("month_id", type_="Number", oid=True)
         .attribute("month_name", descriptor=True)
         .done()
     .level("Week")
         .attribute("week_id", type_="Number", oid=True)
         .attribute("week_number", type_="Number", descriptor=True)
         .done()
     .level("Year")
         .attribute("year_id", type_="Number", oid=True)
         .attribute("year_number", type_="Number", descriptor=True)
         .done())
    # Alternative paths: Time → Month → Year and Time → Week → Year.
    time.relate_root("Month", completeness=True)
    time.relate_root("Week")
    time.relate("Month", "Year", completeness=True)
    # Weeks span year boundaries: a non-strict relationship (M both sides).
    time.relate("Week", "Year", role_a=Multiplicity.MANY,
                role_b=Multiplicity.MANY)

    product = (b.dimension("Product", description="The product sold")
               .attribute("product_id", type_="Number", oid=True)
               .attribute("product_name", descriptor=True)
               .attribute("price", type_="Number"))
    (product.level("Family")
            .attribute("family_id", type_="Number", oid=True)
            .attribute("family_name", descriptor=True)
            .done()
     .level("Group")
            .attribute("group_id", type_="Number", oid=True)
            .attribute("group_name", descriptor=True)
            .done())
    product.relate_root("Family")
    product.relate("Family", "Group", completeness=True)
    # Categorization: perishable products carry extra features (§2).
    (product.level("PerishableProduct", categorization=True)
            .attribute("expiration_days", type_="Number")
            .done())

    store = (b.dimension("Store", description="Where the sale happened")
             .attribute("store_id", type_="Number", oid=True)
             .attribute("store_name", descriptor=True)
             .method("address", return_type="String"))
    (store.level("City")
          .attribute("city_id", type_="Number", oid=True)
          .attribute("city_name", descriptor=True)
          .done()
     .level("Province")
          .attribute("province_id", type_="Number", oid=True)
          .attribute("province_name", descriptor=True)
          .done()
     .level("Country")
          .attribute("country_id", type_="Number", oid=True)
          .attribute("country_name", descriptor=True)
          .done())
    store.relate_root("City", completeness=True)
    store.relate("City", "Province", completeness=True)
    store.relate("Province", "Country", completeness=True)

    sales = (b.fact("Sales", description="Ticket lines of the stores")
             .measure("inventory",
                      description="Stock level; a snapshot, not a flow")
             .degenerate("num_ticket",
                         description="Ticket number (degenerate dimension)")
             .degenerate("num_line",
                         description="Line number (degenerate dimension)")
             .measure("qty", description="Units sold")
             .measure("total", derived=True, derivation_rule="qty * price")
             .method("register_sale"))
    # Inventory levels must not be summed over time (§2 additivity rules).
    sales.additivity("inventory", time, allow=(
        AggregationKind.MAX, AggregationKind.MIN, AggregationKind.AVG))
    sales.uses(time)
    # A ticket line may bundle several products: many-to-many (§2).
    sales.many_to_many(product)
    sales.uses(store)

    cube = b.cube(
        "Quarterly sales by city", sales,
        measures=("qty", "total"),
        aggregations=(AggregationKind.SUM, AggregationKind.SUM),
        description="Initial user requirement from the analysis phase")
    cube = b.replace_cube(cube, cube.dice([
        _dice(b, "Time", "Month"), _dice(b, "Store", "City")]))
    b.replace_cube(cube, cube.slice(
        "Product.product_name", Operator.NOTEQ, "unknown"))

    return b.build()


def _dice(builder: ModelBuilder, dimension_name: str, level_name: str):
    from .cubes import DiceGrouping

    model = builder.build()
    dimension = model.dimension_class(dimension_name)
    level = dimension.level(level_name)
    return DiceGrouping(dimension.id, level.id)


def two_facts_model() -> GoldModel:
    """Fig. 5: two fact classes sharing common dimensions."""
    b = ModelBuilder("Retail DW", model_id="goldRetail",
                     description="Two fact classes sharing dimensions "
                                 "(paper Fig. 5)",
                     creation_date=date(2002, 3, 15))

    time = (b.dimension("Time", is_time=True)
            .attribute("day_id", oid=True)
            .attribute("day_date", descriptor=True))
    time.level("Month").attribute("month_id", oid=True) \
        .attribute("month_name", descriptor=True).done()
    time.relate_root("Month")

    product = (b.dimension("Product")
               .attribute("product_id", oid=True)
               .attribute("product_name", descriptor=True))

    warehouse = (b.dimension("Warehouse")
                 .attribute("warehouse_id", oid=True)
                 .attribute("warehouse_name", descriptor=True))

    store = (b.dimension("Store")
             .attribute("store_id", oid=True)
             .attribute("store_name", descriptor=True))

    (b.fact("Sales")
     .measure("qty")
     .measure("amount")
     .uses(time).uses(product).uses(store))

    (b.fact("Inventory")
     .measure("stock_level")
     .measure("reorder_point")
     .uses(time).uses(product).uses(warehouse))

    return b.build()


def synthetic_model(*, facts: int = 4, dimensions: int = 6,
                    levels_per_dimension: int = 3,
                    measures_per_fact: int = 5,
                    dimensions_per_fact: int | None = None,
                    cubes: int = 2) -> GoldModel:
    """A parametric model for scaling experiments (bench S1).

    Every fact shares ``dimensions_per_fact`` dimensions (all of them by
    default) in round-robin; each dimension gets a linear classification
    hierarchy of the requested depth.
    """
    b = ModelBuilder(
        f"Synthetic {facts}x{dimensions}x{levels_per_dimension}",
        model_id="goldSynthetic")

    dimension_builders = []
    for d in range(dimensions):
        dimension = (b.dimension(f"Dimension{d}", is_time=(d == 0))
                     .attribute(f"dim{d}_id", oid=True)
                     .attribute(f"dim{d}_name", descriptor=True))
        previous: str | None = None
        for lv in range(levels_per_dimension):
            name = f"D{d}L{lv}"
            (dimension.level(name)
             .attribute(f"{name}_id", oid=True)
             .attribute(f"{name}_name", descriptor=True)
             .done())
            if previous is None:
                dimension.relate_root(name)
            else:
                dimension.relate(previous, name)
            previous = name
        dimension_builders.append(dimension)

    share = dimensions_per_fact or dimensions
    fact_builders = []
    for f in range(facts):
        fact = b.fact(f"Fact{f}")
        fact.degenerate(f"fact{f}_ticket")
        for m in range(measures_per_fact):
            fact.measure(f"fact{f}_m{m}")
        for k in range(share):
            dimension = dimension_builders[(f + k) % dimensions]
            fact.uses(dimension)
            measure_index = (f + k) % measures_per_fact
            if measure_index:
                fact.additivity(
                    f"fact{f}_m{measure_index}", dimension,
                    allow=(AggregationKind.MAX, AggregationKind.MIN))
        fact_builders.append(fact)

    model = b.build()
    for c in range(cubes):
        fact = fact_builders[c % facts]
        dimension_id = fact.fact.dimension_ids[0]
        dimension = model.dimension_class(dimension_id)
        level = dimension.levels[0]
        cube = b.cube(f"Cube{c}", fact,
                      measures=(fact.fact.measures[0].name,))
        from .cubes import DiceGrouping

        b.replace_cube(cube, cube.dice(
            [DiceGrouping(dimension.id, level.id)]))
    return model
