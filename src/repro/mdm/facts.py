"""Fact classes: measures, additivity, degenerate dimensions, aggregations.

The structural half of the paper's §2 for facts:

* a :class:`FactClass` is a UML composite class holding measures
  (:class:`FactAttribute`) and participating in shared aggregation
  relationships (:class:`SharedAggregation`) with dimension classes;
* measures are **additive by default**; non-additive measures carry
  :class:`Additivity` rules naming which aggregations are legal along
  which dimension;
* derived measures record their derivation rule (shown between braces in
  the UML diagrams);
* a measure flagged ``is_oid`` is a *degenerate dimension* — a fact
  feature such as a ticket number that identifies the fact without being
  a measure for analysis ({OID} in the diagrams);
* assigning ``M`` to both roles of a shared aggregation expresses a
  many-to-many relationship between the fact and that dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .enums import AggregationKind, Multiplicity

__all__ = ["Additivity", "FactAttribute", "SharedAggregation", "FactClass"]


@dataclass
class Additivity:
    """How one measure may be aggregated along one dimension.

    Mirrors the schema's ``additivity`` element: boolean flags per
    aggregation function, plus ``is_not`` meaning "not additive at all
    along this dimension".
    """

    dimension: str  # id of the dimension class
    is_not: bool = False
    is_sum: bool = False
    is_max: bool = False
    is_min: bool = False
    is_avg: bool = False
    is_count: bool = False

    def allowed(self) -> set[AggregationKind]:
        """The aggregation kinds this rule permits."""
        if self.is_not:
            return set()
        kinds = set()
        if self.is_sum:
            kinds.add(AggregationKind.SUM)
        if self.is_max:
            kinds.add(AggregationKind.MAX)
        if self.is_min:
            kinds.add(AggregationKind.MIN)
        if self.is_avg:
            kinds.add(AggregationKind.AVG)
        if self.is_count:
            kinds.add(AggregationKind.COUNT)
        return kinds

    def permits(self, kind: AggregationKind) -> bool:
        """True when *kind* may be applied along this dimension."""
        return kind in self.allowed()

    def describe(self) -> str:
        """Human-readable rule, e.g. ``Time: MAX, MIN``."""
        if self.is_not:
            return f"{self.dimension}: not additive"
        kinds = sorted(k.value for k in self.allowed())
        return f"{self.dimension}: {', '.join(kinds) or 'additive (SUM)'}"


@dataclass
class FactAttribute:
    """A measure (or degenerate-dimension feature) of a fact class."""

    id: str
    name: str
    type: str = "Number"
    #: {OID} — identifying attribute; models degenerate dimensions.
    is_oid: bool = False
    #: '/' prefix in UML — derived measure.
    is_derived: bool = False
    derivation_rule: str = ""
    #: Whether the measure is atomic (directly recorded) or not.
    atomic: bool = True
    description: str = ""
    additivity: list[Additivity] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.is_derived and not self.derivation_rule:
            raise ValueError(
                f"derived measure {self.name!r} needs a derivation rule")

    def additivity_for(self, dimension: str) -> Additivity | None:
        """The explicit additivity rule along *dimension*, if any."""
        for rule in self.additivity:
            if rule.dimension == dimension:
                return rule
        return None

    def allowed_aggregations(self, dimension: str) -> set[AggregationKind]:
        """Aggregations legal along *dimension*.

        Measures are additive by default (§2): without an explicit rule
        every aggregation function is permitted.  Degenerate-dimension
        attributes ({OID}) are never aggregated; only COUNT applies.
        """
        if self.is_oid:
            return {AggregationKind.COUNT}
        rule = self.additivity_for(dimension)
        if rule is None:
            return set(AggregationKind)
        return rule.allowed()

    def uml_label(self) -> str:
        """The UML rendering, e.g. ``/profit`` or ``num_ticket {OID}``."""
        label = f"/{self.name}" if self.is_derived else self.name
        if self.is_oid:
            label += " {OID}"
        return label


@dataclass
class SharedAggregation:
    """A shared-aggregation relationship from a fact to a dimension.

    ``role_a`` is the multiplicity on the fact side (default ``M``) and
    ``role_b`` on the dimension side (default ``1``); ``M``/``M`` encodes
    a many-to-many relationship such as a sale involving several products.
    """

    dimension: str  # id of the dimension class
    name: str = ""
    description: str = ""
    role_a: Multiplicity = Multiplicity.MANY
    role_b: Multiplicity = Multiplicity.ONE

    @property
    def many_to_many(self) -> bool:
        """True when both roles are many (§2's M–M encoding)."""
        return self.role_a.is_many and self.role_b.is_many


@dataclass
class FactClass:
    """A fact class: measures + methods + shared aggregations."""

    id: str
    name: str
    caption: str = ""
    description: str = ""
    attributes: list[FactAttribute] = field(default_factory=list)
    methods: list = field(default_factory=list)
    aggregations: list[SharedAggregation] = field(default_factory=list)

    @property
    def is_factless(self) -> bool:
        """Fact-less fact table: no measures at all (allowed by §3.1)."""
        return not self.attributes

    @property
    def measures(self) -> list[FactAttribute]:
        """Attributes that are analysed measures (not {OID} features)."""
        return [a for a in self.attributes if not a.is_oid]

    @property
    def degenerate_dimensions(self) -> list[FactAttribute]:
        """{OID} fact features — the degenerate dimensions."""
        return [a for a in self.attributes if a.is_oid]

    def attribute(self, ref: str) -> FactAttribute:
        """Look up a fact attribute by id or name."""
        for attribute in self.attributes:
            if attribute.id == ref or attribute.name == ref:
                return attribute
        raise KeyError(
            f"fact class {self.name!r} has no attribute {ref!r}")

    def aggregation_for(self, dimension: str) -> SharedAggregation | None:
        """The shared aggregation towards *dimension*, if present."""
        for aggregation in self.aggregations:
            if aggregation.dimension == dimension:
                return aggregation
        return None

    @property
    def dimension_ids(self) -> list[str]:
        """Ids of all dimensions this fact participates with."""
        return [aggregation.dimension for aggregation in self.aggregations]
