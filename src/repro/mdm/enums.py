"""Enumerated vocabularies of the GOLD metamodel.

These mirror the user-defined simple types of the paper's XML Schema
(§3.1): ``Multiplicity`` for association role cardinalities and
``Operator`` for cube-class slice conditions.
"""

from __future__ import annotations

import enum

__all__ = ["Multiplicity", "Operator", "AggregationKind"]


class Multiplicity(str, enum.Enum):
    """Role multiplicity on shared aggregations and associations.

    The paper encodes many-to-many fact/dimension relationships and
    non-strict hierarchies by assigning ``M`` to *both* roles.
    """

    ZERO = "0"
    ONE = "1"
    MANY = "M"
    ONE_MANY = "1..M"

    @property
    def is_many(self) -> bool:
        """True for the multiplicities that allow more than one object."""
        return self in (Multiplicity.MANY, Multiplicity.ONE_MANY)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Operator(str, enum.Enum):
    """Comparison operators usable in cube-class slice conditions."""

    EQ = "EQ"
    LT = "LT"
    GT = "GT"
    LET = "LET"
    GET = "GET"
    NOTEQ = "NOTEQ"
    LIKE = "LIKE"
    NOTLIKE = "NOTLIKE"
    IN = "IN"
    NOTIN = "NOTIN"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    def apply(self, left: object, right: object) -> bool:
        """Evaluate ``left <op> right`` with OLAP comparison semantics."""
        if self is Operator.EQ:
            return left == right
        if self is Operator.NOTEQ:
            return left != right
        if self is Operator.LT:
            return left < right  # type: ignore[operator]
        if self is Operator.GT:
            return left > right  # type: ignore[operator]
        if self is Operator.LET:
            return left <= right  # type: ignore[operator]
        if self is Operator.GET:
            return left >= right  # type: ignore[operator]
        if self is Operator.LIKE:
            return _like(str(left), str(right))
        if self is Operator.NOTLIKE:
            return not _like(str(left), str(right))
        if self is Operator.IN:
            return left in _as_collection(right)
        if self is Operator.NOTIN:
            return left not in _as_collection(right)
        raise AssertionError(self)  # pragma: no cover


def _like(text: str, pattern: str) -> bool:
    """SQL LIKE with ``%`` (any run) and ``_`` (any char) wildcards."""
    import re

    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern)
    return re.fullmatch(regex, text) is not None


def _as_collection(value: object):
    if isinstance(value, (list, tuple, set, frozenset)):
        return value
    return (value,)


class AggregationKind(str, enum.Enum):
    """Aggregation functions the additivity rules speak about."""

    SUM = "SUM"
    MAX = "MAX"
    MIN = "MIN"
    AVG = "AVG"
    COUNT = "COUNT"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value
