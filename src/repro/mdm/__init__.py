"""The GOLD conceptual multidimensional metamodel — the paper's core.

Structural part (§2): fact classes with measures, additivity rules,
derived measures and degenerate dimensions; dimension classes whose
classification hierarchies form DAGs of levels with {OID}/{D} attributes,
strict/non-strict and complete/non-complete relationships, and
categorization; shared aggregations (including many-to-many).

Dynamic part: cube classes (measures / slice / dice) with the OLAP
operation algebra (roll-up, drill-down, slice, dice, pivot).

Interchange (§3): XML document round-trip (:mod:`repro.mdm.xml_io`) and
the generated XML Schema and DTD (:mod:`repro.mdm.schema_gen`).
"""

from .builder import ModelBuilder
from .cubes import CubeClass, DiceGrouping, SliceCondition
from .dimensions import (
    AssociationRelation,
    DimensionAttribute,
    DimensionClass,
    Level,
)
from .enums import AggregationKind, Multiplicity, Operator
from .errors import ModelError, ModelReferenceError, ModelStructureError
from .examples import sales_model, synthetic_model, two_facts_model
from .facts import Additivity, FactAttribute, FactClass, SharedAggregation
from .methods import Method, Parameter
from .model import GoldModel
from .schema_gen import gold_dtd_text, gold_schema, gold_schema_xml
from .validate import validate_model
from .xml_io import (
    document_to_model,
    model_to_document,
    model_to_xml,
    xml_to_model,
)

__all__ = [
    "ModelBuilder",
    "CubeClass",
    "DiceGrouping",
    "SliceCondition",
    "AssociationRelation",
    "DimensionAttribute",
    "DimensionClass",
    "Level",
    "AggregationKind",
    "Multiplicity",
    "Operator",
    "ModelError",
    "ModelReferenceError",
    "ModelStructureError",
    "sales_model",
    "synthetic_model",
    "two_facts_model",
    "Additivity",
    "FactAttribute",
    "FactClass",
    "SharedAggregation",
    "Method",
    "Parameter",
    "GoldModel",
    "gold_dtd_text",
    "gold_schema",
    "gold_schema_xml",
    "validate_model",
    "document_to_model",
    "model_to_document",
    "model_to_xml",
    "xml_to_model",
]
