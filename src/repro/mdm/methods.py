"""UML operations (methods) on fact, dimension, and level classes.

The GOLD model is UML-based, so classes may carry operations; the XML
Schema groups them under ``<methods>`` and the HTML presentation lists
them when the model's ``showmethods`` flag is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Parameter", "Method"]


@dataclass
class Parameter:
    """One formal parameter of a method."""

    name: str
    type: str = "String"

    def signature(self) -> str:
        """Render as ``name : Type``."""
        return f"{self.name} : {self.type}"


@dataclass
class Method:
    """A UML operation: name, parameters, return type, visibility."""

    id: str
    name: str
    return_type: str = "void"
    parameters: list[Parameter] = field(default_factory=list)
    visibility: str = "public"
    description: str = ""

    def signature(self) -> str:
        """Render as ``name(p : T, ...) : Return``."""
        params = ", ".join(p.signature() for p in self.parameters)
        return f"{self.name}({params}) : {self.return_type}"
