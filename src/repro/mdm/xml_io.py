"""Model ↔ XML document conversion (the CASE tool's storage format, §3.2).

``model_to_document`` produces exactly the structure the paper's XML
Schema prescribes — ``goldmodel`` root with ``factclasses`` /
``dimclasses`` / ``cubeclasses`` sections, plural grouping tags, boolean
and date attributes — and ``document_to_model`` parses it back, so
models round-trip losslessly through their XML representation.
"""

from __future__ import annotations

from datetime import date

from ..xml.dom import Document, Element
from ..xml.parser import parse as parse_xml
from .cubes import CubeClass, DiceGrouping, SliceCondition
from .dimensions import (
    AssociationRelation,
    DimensionAttribute,
    DimensionClass,
    Level,
)
from .enums import AggregationKind, Multiplicity, Operator
from .errors import ModelStructureError
from .facts import Additivity, FactAttribute, FactClass, SharedAggregation
from .methods import Method, Parameter
from .model import GoldModel

__all__ = ["model_to_document", "model_to_xml", "document_to_model",
           "xml_to_model"]


def _bool(value: bool) -> str:
    return "true" if value else "false"


def _parse_bool(text: str | None, default: bool = False) -> bool:
    if text is None:
        return default
    return text == "true" or text == "1"


def _parse_date(text: str | None) -> date | None:
    return date.fromisoformat(text) if text else None


# -- writing -----------------------------------------------------------------


def model_to_document(model: GoldModel) -> Document:
    """Serialize *model* into a DOM document per the goldmodel schema."""
    document = Document()
    root = Element("goldmodel")
    root.set_attribute("id", model.id)
    root.set_attribute("name", model.name)
    root.set_attribute("showatts", _bool(model.show_attributes))
    root.set_attribute("showmethods", _bool(model.show_methods))
    if model.creation_date:
        root.set_attribute("creationdate", model.creation_date.isoformat())
    if model.last_modified:
        root.set_attribute("lastmodified", model.last_modified.isoformat())
    if model.description:
        root.set_attribute("description", model.description)
    if model.responsible:
        root.set_attribute("responsible", model.responsible)
    document.append_child(root)

    fact_classes = root.append_child(Element("factclasses"))
    for fact in model.facts:
        fact_classes.append_child(_write_fact(fact))
    dim_classes = root.append_child(Element("dimclasses"))
    for dimension in model.dimensions:
        dim_classes.append_child(_write_dimension(dimension))
    if model.cubes:
        cube_classes = root.append_child(Element("cubeclasses"))
        for cube in model.cubes:
            cube_classes.append_child(_write_cube(cube))
    return document


def model_to_xml(model: GoldModel) -> str:
    """Serialize *model* to XML text."""
    from ..xml.serializer import pretty_print

    return pretty_print(model_to_document(model))


def _write_fact(fact: FactClass) -> Element:
    element = Element("factclass")
    element.set_attribute("id", fact.id)
    element.set_attribute("name", fact.name)
    if fact.caption:
        element.set_attribute("caption", fact.caption)
    if fact.description:
        element.set_attribute("description", fact.description)
    if fact.attributes:
        atts = element.append_child(Element("factatts"))
        for attribute in fact.attributes:
            atts.append_child(_write_fact_attribute(attribute))
    if fact.methods:
        element.append_child(_write_methods(fact.methods))
    if fact.aggregations:
        aggs = element.append_child(Element("sharedaggs"))
        for aggregation in fact.aggregations:
            aggs.append_child(_write_aggregation(aggregation))
    return element


def _write_fact_attribute(attribute: FactAttribute) -> Element:
    element = Element("factatt")
    element.set_attribute("id", attribute.id)
    element.set_attribute("name", attribute.name)
    element.set_attribute("type", attribute.type)
    element.set_attribute("isoid", _bool(attribute.is_oid))
    element.set_attribute("isderived", _bool(attribute.is_derived))
    element.set_attribute("atomic", _bool(attribute.atomic))
    if attribute.derivation_rule:
        element.set_attribute("derivationrule", attribute.derivation_rule)
    if attribute.description:
        element.set_attribute("description", attribute.description)
    for rule in attribute.additivity:
        child = Element("additivity")
        child.set_attribute("dimclass", rule.dimension)
        child.set_attribute("isnot", _bool(rule.is_not))
        child.set_attribute("issum", _bool(rule.is_sum))
        child.set_attribute("ismax", _bool(rule.is_max))
        child.set_attribute("ismin", _bool(rule.is_min))
        child.set_attribute("isavg", _bool(rule.is_avg))
        child.set_attribute("iscount", _bool(rule.is_count))
        element.append_child(child)
    return element


def _write_aggregation(aggregation: SharedAggregation) -> Element:
    element = Element("sharedagg")
    element.set_attribute("dimclass", aggregation.dimension)
    if aggregation.name:
        element.set_attribute("name", aggregation.name)
    if aggregation.description:
        element.set_attribute("description", aggregation.description)
    element.set_attribute("rolea", aggregation.role_a.value)
    element.set_attribute("roleb", aggregation.role_b.value)
    return element


def _write_methods(methods: list[Method]) -> Element:
    element = Element("methods")
    for method in methods:
        child = Element("method")
        child.set_attribute("id", method.id)
        child.set_attribute("name", method.name)
        child.set_attribute("returntype", method.return_type)
        child.set_attribute("visibility", method.visibility)
        if method.description:
            child.set_attribute("description", method.description)
        for parameter in method.parameters:
            param = Element("param")
            param.set_attribute("name", parameter.name)
            param.set_attribute("type", parameter.type)
            child.append_child(param)
        element.append_child(child)
    return element


def _write_dim_attributes(attributes: list[DimensionAttribute]) -> Element:
    element = Element("dimatts")
    for attribute in attributes:
        child = Element("dimatt")
        child.set_attribute("id", attribute.id)
        child.set_attribute("name", attribute.name)
        child.set_attribute("type", attribute.type)
        child.set_attribute("oid", _bool(attribute.is_oid))
        child.set_attribute("d", _bool(attribute.is_descriptor))
        if attribute.description:
            child.set_attribute("description", attribute.description)
        element.append_child(child)
    return element


def _write_relations(relations: list[AssociationRelation]) -> Element:
    element = Element("relationasocs")
    for relation in relations:
        child = Element("relationasoc")
        child.set_attribute("child", relation.child)
        if relation.name:
            child.set_attribute("name", relation.name)
        if relation.description:
            child.set_attribute("description", relation.description)
        child.set_attribute("rolea", relation.role_a.value)
        child.set_attribute("roleb", relation.role_b.value)
        if relation.completeness is not None:
            child.set_attribute("completeness",
                                _bool(relation.completeness))
        element.append_child(child)
    return element


def _write_level(level: Level, tag: str) -> Element:
    element = Element(tag)
    element.set_attribute("id", level.id)
    element.set_attribute("name", level.name)
    if level.description:
        element.set_attribute("description", level.description)
    if level.attributes:
        element.append_child(_write_dim_attributes(level.attributes))
    if level.relations:
        element.append_child(_write_relations(level.relations))
    if level.methods:
        element.append_child(_write_methods(level.methods))
    return element


def _write_dimension(dimension: DimensionClass) -> Element:
    element = Element("dimclass")
    element.set_attribute("id", dimension.id)
    element.set_attribute("name", dimension.name)
    if dimension.caption:
        element.set_attribute("caption", dimension.caption)
    if dimension.description:
        element.set_attribute("description", dimension.description)
    element.set_attribute("istime", _bool(dimension.is_time))
    if dimension.attributes:
        element.append_child(_write_dim_attributes(dimension.attributes))
    if dimension.relations:
        element.append_child(_write_relations(dimension.relations))
    if dimension.levels:
        levels = element.append_child(Element("asoclevels"))
        for level in dimension.levels:
            levels.append_child(_write_level(level, "asoclevel"))
    if dimension.categorization_levels:
        levels = element.append_child(Element("catlevels"))
        for level in dimension.categorization_levels:
            levels.append_child(_write_level(level, "catlevel"))
    if dimension.methods:
        element.append_child(_write_methods(dimension.methods))
    return element


def _write_cube(cube: CubeClass) -> Element:
    element = Element("cubeclass")
    element.set_attribute("id", cube.id)
    element.set_attribute("name", cube.name)
    element.set_attribute("fact", cube.fact)
    if cube.description:
        element.set_attribute("description", cube.description)
    if cube.measures:
        measures = element.append_child(Element("measures"))
        for index, measure in enumerate(cube.measures):
            child = Element("measure")
            child.set_attribute("ref", measure)
            if cube.aggregations:
                child.set_attribute("aggregation",
                                    cube.aggregations[index].value)
            measures.append_child(child)
    if cube.slices:
        slices = element.append_child(Element("slices"))
        for condition in cube.slices:
            child = Element("slice")
            child.set_attribute("attribute", condition.attribute)
            child.set_attribute("operator", condition.operator.value)
            child.set_attribute("value", _slice_value_text(condition.value))
            slices.append_child(child)
    if cube.dices:
        dices = element.append_child(Element("dices"))
        for grouping in cube.dices:
            child = Element("dice")
            child.set_attribute("dimclass", grouping.dimension)
            child.set_attribute("level", grouping.level)
            dices.append_child(child)
    return element


def _slice_value_text(value: object) -> str:
    if isinstance(value, (list, tuple, set, frozenset)):
        return ",".join(str(v) for v in value)
    return str(value)


# -- reading -------------------------------------------------------------------


def document_to_model(document: Document) -> GoldModel:
    """Parse a goldmodel DOM document back into a :class:`GoldModel`."""
    root = document.root_element
    if root is None or root.name != "goldmodel":
        raise ModelStructureError("document root must be <goldmodel>")
    model = GoldModel(
        id=_required(root, "id"),
        name=_required(root, "name"),
        show_attributes=_parse_bool(root.get_attribute("showatts"), True),
        show_methods=_parse_bool(root.get_attribute("showmethods"), True),
        creation_date=_parse_date(root.get_attribute("creationdate")),
        last_modified=_parse_date(root.get_attribute("lastmodified")),
        description=root.get_attribute("description", "") or "",
        responsible=root.get_attribute("responsible", "") or "",
    )
    fact_classes = root.find("factclasses")
    if fact_classes is not None:
        for child in fact_classes.find_all("factclass"):
            model.facts.append(_read_fact(child))
    dim_classes = root.find("dimclasses")
    if dim_classes is not None:
        for child in dim_classes.find_all("dimclass"):
            model.dimensions.append(_read_dimension(child))
    cube_classes = root.find("cubeclasses")
    if cube_classes is not None:
        for child in cube_classes.find_all("cubeclass"):
            model.cubes.append(_read_cube(child))
    return model


def xml_to_model(text: str | bytes) -> GoldModel:
    """Parse goldmodel XML text into a :class:`GoldModel`."""
    return document_to_model(parse_xml(text))


def _required(element: Element, name: str) -> str:
    value = element.get_attribute(name)
    if value is None:
        raise ModelStructureError(
            f"<{element.name}> is missing the required attribute {name!r}")
    return value


def _read_fact(element: Element) -> FactClass:
    fact = FactClass(
        id=_required(element, "id"),
        name=_required(element, "name"),
        caption=element.get_attribute("caption", "") or "",
        description=element.get_attribute("description", "") or "",
    )
    atts = element.find("factatts")
    if atts is not None:
        for child in atts.find_all("factatt"):
            fact.attributes.append(_read_fact_attribute(child))
    methods = element.find("methods")
    if methods is not None:
        fact.methods.extend(_read_methods(methods))
    aggs = element.find("sharedaggs")
    if aggs is not None:
        for child in aggs.find_all("sharedagg"):
            fact.aggregations.append(SharedAggregation(
                dimension=_required(child, "dimclass"),
                name=child.get_attribute("name", "") or "",
                description=child.get_attribute("description", "") or "",
                role_a=Multiplicity(child.get_attribute("rolea", "M")),
                role_b=Multiplicity(child.get_attribute("roleb", "1")),
            ))
    return fact


def _read_fact_attribute(element: Element) -> FactAttribute:
    attribute = FactAttribute(
        id=_required(element, "id"),
        name=_required(element, "name"),
        type=element.get_attribute("type", "Number") or "Number",
        is_oid=_parse_bool(element.get_attribute("isoid")),
        is_derived=_parse_bool(element.get_attribute("isderived")),
        derivation_rule=element.get_attribute("derivationrule", "") or "",
        atomic=_parse_bool(element.get_attribute("atomic"), True),
        description=element.get_attribute("description", "") or "",
    )
    for child in element.find_all("additivity"):
        attribute.additivity.append(Additivity(
            dimension=_required(child, "dimclass"),
            is_not=_parse_bool(child.get_attribute("isnot")),
            is_sum=_parse_bool(child.get_attribute("issum")),
            is_max=_parse_bool(child.get_attribute("ismax")),
            is_min=_parse_bool(child.get_attribute("ismin")),
            is_avg=_parse_bool(child.get_attribute("isavg")),
            is_count=_parse_bool(child.get_attribute("iscount")),
        ))
    return attribute


def _read_methods(element: Element) -> list[Method]:
    methods = []
    for child in element.find_all("method"):
        methods.append(Method(
            id=_required(child, "id"),
            name=_required(child, "name"),
            return_type=child.get_attribute("returntype", "void") or "void",
            visibility=child.get_attribute("visibility", "public")
            or "public",
            description=child.get_attribute("description", "") or "",
            parameters=[
                Parameter(_required(param, "name"),
                          param.get_attribute("type", "String") or "String")
                for param in child.find_all("param")
            ],
        ))
    return methods


def _read_dim_attributes(element: Element) -> list[DimensionAttribute]:
    return [
        DimensionAttribute(
            id=_required(child, "id"),
            name=_required(child, "name"),
            type=child.get_attribute("type", "String") or "String",
            is_oid=_parse_bool(child.get_attribute("oid")),
            is_descriptor=_parse_bool(child.get_attribute("d")),
            description=child.get_attribute("description", "") or "",
        )
        for child in element.find_all("dimatt")
    ]


def _read_relations(element: Element) -> list[AssociationRelation]:
    relations = []
    for child in element.find_all("relationasoc"):
        completeness_text = child.get_attribute("completeness")
        relations.append(AssociationRelation(
            child=_required(child, "child"),
            name=child.get_attribute("name", "") or "",
            description=child.get_attribute("description", "") or "",
            role_a=Multiplicity(child.get_attribute("rolea", "1")),
            role_b=Multiplicity(child.get_attribute("roleb", "M")),
            completeness=_parse_bool(completeness_text)
            if completeness_text is not None else None,
        ))
    return relations


def _read_level(element: Element) -> Level:
    level = Level(
        id=_required(element, "id"),
        name=_required(element, "name"),
        description=element.get_attribute("description", "") or "",
    )
    atts = element.find("dimatts")
    if atts is not None:
        level.attributes.extend(_read_dim_attributes(atts))
    relations = element.find("relationasocs")
    if relations is not None:
        level.relations.extend(_read_relations(relations))
    methods = element.find("methods")
    if methods is not None:
        level.methods.extend(_read_methods(methods))
    return level


def _read_dimension(element: Element) -> DimensionClass:
    dimension = DimensionClass(
        id=_required(element, "id"),
        name=_required(element, "name"),
        caption=element.get_attribute("caption", "") or "",
        description=element.get_attribute("description", "") or "",
        is_time=_parse_bool(element.get_attribute("istime")),
    )
    atts = element.find("dimatts")
    if atts is not None:
        dimension.attributes.extend(_read_dim_attributes(atts))
    relations = element.find("relationasocs")
    if relations is not None:
        dimension.relations.extend(_read_relations(relations))
    levels = element.find("asoclevels")
    if levels is not None:
        for child in levels.find_all("asoclevel"):
            dimension.levels.append(_read_level(child))
    categorizations = element.find("catlevels")
    if categorizations is not None:
        for child in categorizations.find_all("catlevel"):
            dimension.categorization_levels.append(_read_level(child))
    methods = element.find("methods")
    if methods is not None:
        dimension.methods.extend(_read_methods(methods))
    return dimension


def _read_cube(element: Element) -> CubeClass:
    measures: list[str] = []
    aggregations: list[AggregationKind] = []
    measures_el = element.find("measures")
    if measures_el is not None:
        for child in measures_el.find_all("measure"):
            measures.append(_required(child, "ref"))
            aggregation = child.get_attribute("aggregation")
            if aggregation:
                aggregations.append(AggregationKind(aggregation))
    slices: list[SliceCondition] = []
    slices_el = element.find("slices")
    if slices_el is not None:
        for child in slices_el.find_all("slice"):
            operator = Operator(_required(child, "operator"))
            raw = _required(child, "value")
            value: object = raw
            if operator in (Operator.IN, Operator.NOTIN):
                value = tuple(raw.split(","))
            slices.append(SliceCondition(
                attribute=_required(child, "attribute"),
                operator=operator, value=value))
    dices: list[DiceGrouping] = []
    dices_el = element.find("dices")
    if dices_el is not None:
        for child in dices_el.find_all("dice"):
            dices.append(DiceGrouping(
                dimension=_required(child, "dimclass"),
                level=_required(child, "level")))
    if aggregations and len(aggregations) != len(measures):
        raise ModelStructureError(
            "cube measures must either all or none carry an aggregation")
    return CubeClass(
        id=_required(element, "id"),
        name=_required(element, "name"),
        fact=_required(element, "fact"),
        measures=tuple(measures),
        aggregations=tuple(aggregations),
        slices=tuple(slices),
        dices=tuple(dices),
        description=element.get_attribute("description", "") or "",
    )
