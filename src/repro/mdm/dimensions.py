"""Dimension classes and classification hierarchies.

The paper's §2 for dimensions:

* every classification hierarchy level is a *base class*
  (:class:`Level`); association relationships between levels form a
  **Directed Acyclic Graph rooted in the dimension class** ({dag}),
  which accommodates both multiple and alternative-path hierarchies;
* every level needs an identifying attribute ({OID}) and a descriptor
  attribute ({D}) — commercial OLAP tools require them in their metadata;
* the multiplicity on the target role encodes strictness: ``1`` is a
  strict relationship, ``M`` on both roles is non-strict (a week that
  spans two months);
* ``{completeness}`` on the target role marks complete hierarchies; all
  hierarchies are non-complete by default;
* categorization of dimensions (an entity's subtypes with extra
  attributes) uses generalization-specialization: :class:`Level` objects
  attached as *categorization levels*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .enums import Multiplicity
from .errors import ModelReferenceError

__all__ = ["DimensionAttribute", "AssociationRelation", "Level",
           "DimensionClass"]


@dataclass
class DimensionAttribute:
    """An attribute of a dimension or level class.

    ``is_oid`` marks the identifying attribute ({OID}); ``is_descriptor``
    the default descriptor ({D}) shown to users by OLAP tools.
    """

    id: str
    name: str
    type: str = "String"
    is_oid: bool = False
    is_descriptor: bool = False
    description: str = ""

    def uml_label(self) -> str:
        """UML rendering, e.g. ``month_name {D}``."""
        label = self.name
        if self.is_oid:
            label += " {OID}"
        if self.is_descriptor:
            label += " {D}"
        return label


@dataclass
class AssociationRelation:
    """An association between two classification levels.

    ``child`` names the *coarser* level this one rolls up to (e.g. a Day
    level has relations to Month and to Week).  ``role_a`` is the
    multiplicity on the source side, ``role_b`` on the target side.
    Non-strictness is encoded as ``M``/``M``; ``completeness=True``
    renders the ``{completeness}`` constraint.
    """

    child: str  # id of the target level
    name: str = ""
    description: str = ""
    role_a: Multiplicity = Multiplicity.ONE
    role_b: Multiplicity = Multiplicity.MANY
    completeness: bool | None = None

    @property
    def strict(self) -> bool:
        """A relationship is strict when the source side multiplicity is 1."""
        return not (self.role_a.is_many and self.role_b.is_many)

    @property
    def complete(self) -> bool:
        """Hierarchies are non-complete unless annotated (§2)."""
        return bool(self.completeness)


@dataclass
class Level:
    """One classification-hierarchy level (a *base class* in the paper)."""

    id: str
    name: str
    description: str = ""
    attributes: list[DimensionAttribute] = field(default_factory=list)
    relations: list[AssociationRelation] = field(default_factory=list)
    methods: list = field(default_factory=list)

    def oid_attribute(self) -> DimensionAttribute | None:
        """The identifying ({OID}) attribute, when present."""
        for attribute in self.attributes:
            if attribute.is_oid:
                return attribute
        return None

    def descriptor_attribute(self) -> DimensionAttribute | None:
        """The descriptor ({D}) attribute, when present."""
        for attribute in self.attributes:
            if attribute.is_descriptor:
                return attribute
        return None

    def attribute(self, ref: str) -> DimensionAttribute:
        """Look up an attribute by id or name."""
        for attribute in self.attributes:
            if attribute.id == ref or attribute.name == ref:
                return attribute
        raise KeyError(f"level {self.name!r} has no attribute {ref!r}")


@dataclass
class DimensionClass:
    """A dimension class: the root of a classification-hierarchy DAG.

    The dimension class itself holds the finest-grain attributes
    (``attributes``) and relations to its first classification levels
    (``relations``); further levels live in ``levels``.  Categorization
    levels (generalization-specialization subtypes) live in
    ``categorization_levels``; only the dimension class may take part in
    both hierarchies at once (§2).
    """

    id: str
    name: str
    caption: str = ""
    description: str = ""
    is_time: bool = False
    attributes: list[DimensionAttribute] = field(default_factory=list)
    relations: list[AssociationRelation] = field(default_factory=list)
    levels: list[Level] = field(default_factory=list)
    categorization_levels: list[Level] = field(default_factory=list)
    methods: list = field(default_factory=list)

    # -- lookups ---------------------------------------------------------------

    def level(self, ref: str) -> Level:
        """Look up an association or categorization level by id or name."""
        for level in self.levels + self.categorization_levels:
            if level.id == ref or level.name == ref:
                return level
        raise ModelReferenceError(
            f"dimension {self.name!r} has no level {ref!r}")

    def has_level(self, ref: str) -> bool:
        """True when *ref* names a level of this dimension."""
        try:
            self.level(ref)
            return True
        except ModelReferenceError:
            return False

    def oid_attribute(self) -> DimensionAttribute | None:
        """The dimension root's identifying attribute."""
        for attribute in self.attributes:
            if attribute.is_oid:
                return attribute
        return None

    def descriptor_attribute(self) -> DimensionAttribute | None:
        """The dimension root's descriptor attribute."""
        for attribute in self.attributes:
            if attribute.is_descriptor:
                return attribute
        return None

    # -- hierarchy structure ---------------------------------------------------------

    def hierarchy_edges(self) -> list[tuple[str, str, AssociationRelation]]:
        """All ``(source_id, target_id, relation)`` edges of the DAG.

        The dimension root's id is used as the source of its direct
        relations.
        """
        edges: list[tuple[str, str, AssociationRelation]] = []
        for relation in self.relations:
            edges.append((self.id, relation.child, relation))
        for level in self.levels:
            for relation in level.relations:
                edges.append((level.id, relation.child, relation))
        return edges

    def children_of(self, ref: str) -> list[Level]:
        """Levels directly reachable (one roll-up step) from *ref*."""
        source = self if ref in (self.id, self.name) else self.level(ref)
        relations = source.relations
        return [self.level(relation.child) for relation in relations]

    def paths_from_root(self) -> list[list[str]]:
        """Every root-to-leaf path of level ids (alternative paths shown).

        Multiple entries with a shared prefix are *multiple hierarchies*;
        entries diverging after the root are *alternative paths*.
        """
        adjacency: dict[str, list[str]] = {}
        for source, target, _relation in self.hierarchy_edges():
            adjacency.setdefault(source, []).append(target)

        paths: list[list[str]] = []

        def walk(node: str, trail: list[str]) -> None:
            targets = adjacency.get(node, [])
            if not targets:
                paths.append(trail)
                return
            for target in targets:
                walk(target, trail + [target])

        walk(self.id, [self.id])
        return paths

    def iter_levels(self) -> Iterator[Level]:
        """All levels (association first, then categorization)."""
        yield from self.levels
        yield from self.categorization_levels

    @property
    def non_strict_relations(self) -> list[AssociationRelation]:
        """Relations encoding non-strict roll-ups (M–M roles)."""
        return [
            relation for _s, _t, relation in self.hierarchy_edges()
            if not relation.strict
        ]
