"""Errors for the multidimensional metamodel."""

from __future__ import annotations

__all__ = ["ModelError", "ModelStructureError", "ModelReferenceError"]


class ModelError(Exception):
    """Base class for metamodel failures."""


class ModelStructureError(ModelError):
    """Structural invariant violated (duplicate id, cyclic hierarchy...)."""


class ModelReferenceError(ModelError):
    """A reference (dimension, measure, level) does not resolve."""
