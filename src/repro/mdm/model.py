"""The GOLD model root: a named collection of fact, dimension, and cube
classes plus presentation metadata.

Mirrors the ``goldmodel`` root element of the XML Schema (§3.1): ``id``,
``name``, ``showatts``/``showmethods`` presentation flags, creation and
modification dates, description, and responsible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Iterator

from .cubes import CubeClass
from .dimensions import DimensionClass, Level
from .errors import ModelReferenceError
from .facts import FactClass

__all__ = ["GoldModel"]


@dataclass
class GoldModel:
    """A conceptual multidimensional model."""

    id: str
    name: str
    show_attributes: bool = True
    show_methods: bool = True
    creation_date: date | None = None
    last_modified: date | None = None
    description: str = ""
    responsible: str = ""
    facts: list[FactClass] = field(default_factory=list)
    dimensions: list[DimensionClass] = field(default_factory=list)
    cubes: list[CubeClass] = field(default_factory=list)

    # -- lookups ------------------------------------------------------------

    def fact_class(self, ref: str) -> FactClass:
        """Find a fact class by id or name."""
        for fact in self.facts:
            if fact.id == ref or fact.name == ref:
                return fact
        raise ModelReferenceError(f"no fact class {ref!r} in model "
                                  f"{self.name!r}")

    def dimension_class(self, ref: str) -> DimensionClass:
        """Find a dimension class by id or name."""
        for dimension in self.dimensions:
            if dimension.id == ref or dimension.name == ref:
                return dimension
        raise ModelReferenceError(f"no dimension class {ref!r} in model "
                                  f"{self.name!r}")

    def cube_class(self, ref: str) -> CubeClass:
        """Find a cube class by id or name."""
        for cube in self.cubes:
            if cube.id == ref or cube.name == ref:
                return cube
        raise ModelReferenceError(f"no cube class {ref!r} in model "
                                  f"{self.name!r}")

    def dimensions_of(self, fact_ref: str) -> list[DimensionClass]:
        """The dimension classes a fact shares aggregations with."""
        fact = self.fact_class(fact_ref)
        return [self.dimension_class(d) for d in fact.dimension_ids]

    def facts_sharing(self, dimension_ref: str) -> list[FactClass]:
        """The fact classes that aggregate over *dimension_ref*."""
        dimension = self.dimension_class(dimension_ref)
        return [
            fact for fact in self.facts
            if dimension.id in fact.dimension_ids
        ]

    # -- iteration -------------------------------------------------------------

    def iter_levels(self) -> Iterator[tuple[DimensionClass, Level]]:
        """Yield every ``(dimension, level)`` pair in the model."""
        for dimension in self.dimensions:
            for level in dimension.iter_levels():
                yield dimension, level

    def all_ids(self) -> list[str]:
        """All identifiers, in document order (used by uniqueness checks)."""
        ids: list[str] = [self.id]
        for fact in self.facts:
            ids.append(fact.id)
            ids.extend(a.id for a in fact.attributes)
            ids.extend(m.id for m in fact.methods)
        for dimension in self.dimensions:
            ids.append(dimension.id)
            ids.extend(a.id for a in dimension.attributes)
            ids.extend(m.id for m in dimension.methods)
            for level in dimension.iter_levels():
                ids.append(level.id)
                ids.extend(a.id for a in level.attributes)
                ids.extend(m.id for m in level.methods)
        for cube in self.cubes:
            ids.append(cube.id)
        return ids

    # -- statistics -------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Size statistics used by the CLI and the benchmarks."""
        return {
            "facts": len(self.facts),
            "dimensions": len(self.dimensions),
            "levels": sum(
                len(d.levels) + len(d.categorization_levels)
                for d in self.dimensions),
            "measures": sum(len(f.attributes) for f in self.facts),
            "aggregations": sum(len(f.aggregations) for f in self.facts),
            "cubes": len(self.cubes),
        }
