"""Cube classes: the dynamic part of the GOLD model (§2).

A cube class states an initial user requirement in three sections:

* **measures** — which fact attributes are analysed;
* **slice** — filter constraints, each ``attribute OP value``;
* **dice** — grouping conditions: dimensions and the level to group at.

A set of OLAP operations then derives new cube classes for the analysis
phase: ``roll_up`` and ``drill_down`` move the grouping level along a
classification hierarchy, ``slice`` adds a constraint, ``dice`` changes
the grouping dimensions, ``pivot`` reorders them, and
``add_measure``/``drop_measure`` adjust the measures section.  Each
operation returns a *new* cube class, leaving the original requirement
intact — cube classes form a derivation history.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable

from .enums import AggregationKind, Operator
from .errors import ModelReferenceError

if TYPE_CHECKING:  # pragma: no cover
    from .dimensions import DimensionClass
    from .model import GoldModel

__all__ = ["SliceCondition", "DiceGrouping", "CubeClass"]


@dataclass(frozen=True)
class SliceCondition:
    """One slice constraint: ``attribute OP value``.

    ``attribute`` is dotted: ``Dimension.level.attribute`` or
    ``Fact.attribute``; ``value`` is a literal (or list for IN/NOTIN).
    """

    attribute: str
    operator: Operator
    value: object

    def describe(self) -> str:
        return f"{self.attribute} {self.operator.value} {self.value!r}"


@dataclass(frozen=True)
class DiceGrouping:
    """One dice entry: group by *dimension* at *level*.

    ``level`` may be the dimension id itself (finest grain) or any level
    of its classification hierarchy.
    """

    dimension: str
    level: str

    def describe(self) -> str:
        return f"{self.dimension} @ {self.level}"


@dataclass(frozen=True)
class CubeClass:
    """A cube class over one fact class."""

    id: str
    name: str
    fact: str  # id of the fact class
    measures: tuple[str, ...] = ()
    #: Aggregation applied to each measure (parallel default: SUM).
    aggregations: tuple[AggregationKind, ...] = ()
    slices: tuple[SliceCondition, ...] = ()
    dices: tuple[DiceGrouping, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.aggregations and \
                len(self.aggregations) != len(self.measures):
            raise ValueError(
                "aggregations must be empty or match measures in length")

    def aggregation_for(self, measure: str) -> AggregationKind:
        """The aggregation applied to *measure* (SUM by default)."""
        try:
            index = self.measures.index(measure)
        except ValueError:
            raise ModelReferenceError(
                f"cube {self.name!r} has no measure {measure!r}") from None
        if not self.aggregations:
            return AggregationKind.SUM
        return self.aggregations[index]

    def grouping_for(self, dimension: str) -> DiceGrouping | None:
        """The dice entry for *dimension*, if present."""
        for dice in self.dices:
            if dice.dimension == dimension:
                return dice
        return None

    # -- OLAP operations -----------------------------------------------------------

    def roll_up(self, dimension: str, to_level: str,
                *, suffix: str = "rollup") -> "CubeClass":
        """Coarsen the grouping on *dimension* to *to_level*."""
        return self._replace_grouping(dimension, to_level, suffix)

    def drill_down(self, dimension: str, to_level: str,
                   *, suffix: str = "drilldown") -> "CubeClass":
        """Refine the grouping on *dimension* to *to_level*."""
        return self._replace_grouping(dimension, to_level, suffix)

    def _replace_grouping(self, dimension: str, to_level: str,
                          suffix: str) -> "CubeClass":
        if self.grouping_for(dimension) is None:
            raise ModelReferenceError(
                f"cube {self.name!r} does not dice on dimension "
                f"{dimension!r}")
        dices = tuple(
            DiceGrouping(dimension, to_level)
            if dice.dimension == dimension else dice
            for dice in self.dices)
        return replace(self, id=f"{self.id}-{suffix}",
                       name=f"{self.name} ({suffix} {dimension}→{to_level})",
                       dices=dices)

    def slice(self, attribute: str, operator: Operator,
              value: object) -> "CubeClass":
        """Add a slice constraint."""
        condition = SliceCondition(attribute, operator, value)
        return replace(
            self, id=f"{self.id}-slice",
            name=f"{self.name} (slice {condition.describe()})",
            slices=self.slices + (condition,))

    def dice(self, groupings: Iterable[DiceGrouping]) -> "CubeClass":
        """Replace the dice section entirely."""
        return replace(self, id=f"{self.id}-dice",
                       name=f"{self.name} (dice)",
                       dices=tuple(groupings))

    def pivot(self) -> "CubeClass":
        """Reverse the dice ordering (swap the presentation axes)."""
        return replace(self, id=f"{self.id}-pivot",
                       name=f"{self.name} (pivot)",
                       dices=tuple(reversed(self.dices)))

    def add_measure(self, measure: str,
                    aggregation: AggregationKind = AggregationKind.SUM
                    ) -> "CubeClass":
        """Add a measure to the analysis."""
        aggregations = self.aggregations or \
            tuple(AggregationKind.SUM for _ in self.measures)
        return replace(self, id=f"{self.id}-m",
                       measures=self.measures + (measure,),
                       aggregations=aggregations + (aggregation,))

    def drop_measure(self, measure: str) -> "CubeClass":
        """Remove a measure from the analysis."""
        if measure not in self.measures:
            raise ModelReferenceError(
                f"cube {self.name!r} has no measure {measure!r}")
        index = self.measures.index(measure)
        aggregations = self.aggregations
        if aggregations:
            aggregations = aggregations[:index] + aggregations[index + 1:]
        return replace(self, id=f"{self.id}-d",
                       measures=self.measures[:index] +
                       self.measures[index + 1:],
                       aggregations=aggregations)

    # -- model-aware checks -----------------------------------------------------------

    def check_against(self, model: "GoldModel") -> list[str]:
        """Validate this cube against *model*; returns problem strings."""
        problems: list[str] = []
        try:
            fact = model.fact_class(self.fact)
        except ModelReferenceError:
            return [f"cube {self.name!r}: unknown fact class {self.fact!r}"]

        for measure in self.measures:
            try:
                fact.attribute(measure)
            except KeyError:
                problems.append(
                    f"cube {self.name!r}: fact {fact.name!r} has no "
                    f"measure {measure!r}")

        fact_dimensions = set(fact.dimension_ids)
        for dice in self.dices:
            if dice.dimension not in fact_dimensions:
                problems.append(
                    f"cube {self.name!r}: dimension {dice.dimension!r} is "
                    f"not shared with fact {fact.name!r}")
                continue
            dimension = model.dimension_class(dice.dimension)
            if dice.level not in (dimension.id, dimension.name) and \
                    not dimension.has_level(dice.level):
                problems.append(
                    f"cube {self.name!r}: dimension {dimension.name!r} has "
                    f"no level {dice.level!r}")
            else:
                self._check_additivity(fact, dimension, problems)
        return problems

    def _check_additivity(self, fact, dimension: "DimensionClass",
                          problems: list[str]) -> None:
        for measure in self.measures:
            try:
                attribute = fact.attribute(measure)
            except KeyError:
                continue
            kind = self.aggregation_for(measure)
            if kind not in attribute.allowed_aggregations(dimension.id):
                problems.append(
                    f"cube {self.name!r}: measure {attribute.name!r} may "
                    f"not be aggregated with {kind.value} along dimension "
                    f"{dimension.name!r}")
