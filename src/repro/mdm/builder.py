"""A fluent builder for GOLD models.

The CASE-tool front end of the library: assembles models with readable
calls and auto-generated identifiers, so examples and tests do not need
to hand-assign every ``xsd:ID``.

>>> builder = ModelBuilder("Sales DW")
>>> time = (builder.dimension("Time", is_time=True)
...     .attribute("day_id", oid=True)
...     .attribute("day_name", descriptor=True)
...     .level("Month")
...         .attribute("month_id", oid=True)
...         .attribute("month_name", descriptor=True)
...         .done()
...     .relate_root("Month"))
>>> fact = (builder.fact("Sales")
...     .measure("qty")
...     .degenerate("num_ticket")
...     .uses(time, role_b="1"))
>>> model = builder.build()
>>> model.summary()["facts"]
1
"""

from __future__ import annotations

from datetime import date
from typing import Iterable

from .cubes import CubeClass, DiceGrouping, SliceCondition
from .dimensions import (
    AssociationRelation,
    DimensionAttribute,
    DimensionClass,
    Level,
)
from .enums import AggregationKind, Multiplicity, Operator
from .facts import Additivity, FactAttribute, FactClass, SharedAggregation
from .methods import Method, Parameter
from .model import GoldModel

__all__ = ["ModelBuilder", "FactBuilder", "DimensionBuilder", "LevelBuilder"]


def _slug(name: str) -> str:
    return "".join(ch.lower() if ch.isalnum() else "-" for ch in name).strip("-")


class ModelBuilder:
    """Builds a :class:`GoldModel` incrementally."""

    def __init__(self, name: str, *, model_id: str | None = None,
                 description: str = "", responsible: str = "",
                 creation_date: date | None = None) -> None:
        self._model = GoldModel(
            id=model_id or f"model-{_slug(name)}",
            name=name,
            description=description,
            responsible=responsible,
            creation_date=creation_date,
        )
        self._counter = 0

    def next_id(self, prefix: str) -> str:
        """Generate a fresh identifier with *prefix*."""
        self._counter += 1
        return f"{prefix}{self._counter}"

    def fact(self, name: str, *, description: str = "") -> "FactBuilder":
        """Start a fact class."""
        fact = FactClass(id=self.next_id("f"), name=name,
                         description=description)
        self._model.facts.append(fact)
        return FactBuilder(self, fact)

    def dimension(self, name: str, *, is_time: bool = False,
                  description: str = "") -> "DimensionBuilder":
        """Start a dimension class."""
        dimension = DimensionClass(id=self.next_id("d"), name=name,
                                   is_time=is_time, description=description)
        self._model.dimensions.append(dimension)
        return DimensionBuilder(self, dimension)

    def cube(self, name: str, fact: "str | FactBuilder",
             measures: Iterable[str] = (),
             aggregations: Iterable[AggregationKind] = (),
             description: str = "") -> CubeClass:
        """Add a cube class over *fact*."""
        fact_class = fact.fact if isinstance(fact, FactBuilder) else \
            self._model.fact_class(fact)
        cube = CubeClass(
            id=self.next_id("c"), name=name, fact=fact_class.id,
            # Measures are stored by attribute id so the XML document's
            # measure/@ref IDREFs resolve (names are accepted as input).
            measures=tuple(
                fact_class.attribute(m).id for m in measures),
            aggregations=tuple(aggregations),
            description=description)
        self._model.cubes.append(cube)
        return cube

    def replace_cube(self, old: CubeClass, new: CubeClass) -> CubeClass:
        """Swap a derived cube into the model (OLAP operation results)."""
        self._model.cubes = [
            new if cube.id == old.id else cube for cube in self._model.cubes]
        return new

    def build(self) -> GoldModel:
        """Return the assembled model."""
        return self._model


class FactBuilder:
    """Builds one fact class; chainable."""

    def __init__(self, parent: ModelBuilder, fact: FactClass) -> None:
        self.parent = parent
        self.fact = fact

    def measure(self, name: str, *, type_: str = "Number",
                derived: bool = False, derivation_rule: str = "",
                additivity: Iterable[Additivity] = (),
                description: str = "") -> "FactBuilder":
        """Add a measure."""
        self.fact.attributes.append(FactAttribute(
            id=self.parent.next_id("fa"), name=name, type=type_,
            is_derived=derived, derivation_rule=derivation_rule,
            additivity=list(additivity), description=description))
        return self

    def degenerate(self, name: str, *, type_: str = "Number",
                   description: str = "") -> "FactBuilder":
        """Add a degenerate-dimension attribute ({OID})."""
        self.fact.attributes.append(FactAttribute(
            id=self.parent.next_id("fa"), name=name, type=type_,
            is_oid=True, description=description))
        return self

    def additivity(self, measure: str, dimension: "str | DimensionBuilder",
                   *, is_not: bool = False,
                   allow: Iterable[AggregationKind] = ()) -> "FactBuilder":
        """Attach an additivity rule to an existing measure."""
        dimension_id = dimension.dimension.id \
            if isinstance(dimension, DimensionBuilder) else dimension
        allowed = set(allow)
        rule = Additivity(
            dimension=dimension_id,
            is_not=is_not,
            is_sum=AggregationKind.SUM in allowed,
            is_max=AggregationKind.MAX in allowed,
            is_min=AggregationKind.MIN in allowed,
            is_avg=AggregationKind.AVG in allowed,
            is_count=AggregationKind.COUNT in allowed,
        )
        self.fact.attribute(measure).additivity.append(rule)
        return self

    def method(self, name: str, *, return_type: str = "void",
               parameters: Iterable[tuple[str, str]] = ()) -> "FactBuilder":
        """Add a UML operation."""
        self.fact.methods.append(Method(
            id=self.parent.next_id("m"), name=name, return_type=return_type,
            parameters=[Parameter(n, t) for n, t in parameters]))
        return self

    def uses(self, dimension: "str | DimensionBuilder", *,
             role_a: "str | Multiplicity" = Multiplicity.MANY,
             role_b: "str | Multiplicity" = Multiplicity.ONE,
             name: str = "", description: str = "") -> "FactBuilder":
        """Add a shared aggregation to *dimension*."""
        dimension_id = dimension.dimension.id \
            if isinstance(dimension, DimensionBuilder) else dimension
        self.fact.aggregations.append(SharedAggregation(
            dimension=dimension_id, name=name, description=description,
            role_a=Multiplicity(role_a), role_b=Multiplicity(role_b)))
        return self

    def many_to_many(self, dimension: "str | DimensionBuilder",
                     **kwargs) -> "FactBuilder":
        """Shorthand for an M–M shared aggregation (§2)."""
        return self.uses(dimension, role_a=Multiplicity.MANY,
                         role_b=Multiplicity.MANY, **kwargs)


class _AttributeCarrier:
    """Shared attribute/method helpers for dimensions and levels."""

    parent: ModelBuilder

    def _attributes(self) -> list[DimensionAttribute]:
        raise NotImplementedError

    def _methods(self) -> list[Method]:
        raise NotImplementedError

    def attribute(self, name: str, *, type_: str = "String",
                  oid: bool = False, descriptor: bool = False,
                  description: str = ""):
        """Add a dimension attribute; mark with ``oid=``/``descriptor=``."""
        self._attributes().append(DimensionAttribute(
            id=self.parent.next_id("da"), name=name, type=type_,
            is_oid=oid, is_descriptor=descriptor, description=description))
        return self

    def method(self, name: str, *, return_type: str = "void",
               parameters: Iterable[tuple[str, str]] = ()):
        """Add a UML operation."""
        self._methods().append(Method(
            id=self.parent.next_id("m"), name=name, return_type=return_type,
            parameters=[Parameter(n, t) for n, t in parameters]))
        return self


class DimensionBuilder(_AttributeCarrier):
    """Builds one dimension class with its hierarchy levels."""

    def __init__(self, parent: ModelBuilder,
                 dimension: DimensionClass) -> None:
        self.parent = parent
        self.dimension = dimension

    def _attributes(self) -> list[DimensionAttribute]:
        return self.dimension.attributes

    def _methods(self) -> list[Method]:
        return self.dimension.methods

    def level(self, name: str, *, description: str = "",
              categorization: bool = False) -> "LevelBuilder":
        """Start a classification (or categorization) level."""
        level = Level(id=self.parent.next_id("l"), name=name,
                      description=description)
        if categorization:
            self.dimension.categorization_levels.append(level)
        else:
            self.dimension.levels.append(level)
        return LevelBuilder(self, level)

    def relate_root(self, target: str, *,
                    role_a: "str | Multiplicity" = Multiplicity.ONE,
                    role_b: "str | Multiplicity" = Multiplicity.MANY,
                    completeness: bool | None = None,
                    name: str = "") -> "DimensionBuilder":
        """Relate the dimension class itself to level *target*."""
        self.dimension.relations.append(AssociationRelation(
            child=self.dimension.level(target).id, name=name,
            role_a=Multiplicity(role_a), role_b=Multiplicity(role_b),
            completeness=completeness))
        return self

    def relate(self, source: str, target: str, *,
               role_a: "str | Multiplicity" = Multiplicity.ONE,
               role_b: "str | Multiplicity" = Multiplicity.MANY,
               completeness: bool | None = None,
               name: str = "") -> "DimensionBuilder":
        """Relate level *source* to coarser level *target*."""
        relation = AssociationRelation(
            child=self.dimension.level(target).id, name=name,
            role_a=Multiplicity(role_a), role_b=Multiplicity(role_b),
            completeness=completeness)
        self.dimension.level(source).relations.append(relation)
        return self


class LevelBuilder(_AttributeCarrier):
    """Builds one hierarchy level; ``done()`` returns to the dimension."""

    def __init__(self, owner: DimensionBuilder, level: Level) -> None:
        self.parent = owner.parent
        self.owner = owner
        self.level_obj = level

    def _attributes(self) -> list[DimensionAttribute]:
        return self.level_obj.attributes

    def _methods(self) -> list[Method]:
        return self.level_obj.methods

    def done(self) -> DimensionBuilder:
        """Finish the level and return the dimension builder."""
        return self.owner
