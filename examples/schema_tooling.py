"""Schema tooling: Fig. 2's tree, the quality checker, and XSD vs DTD.

Demonstrates the §3 toolchain on the generated ``goldmodel`` schema:

1. render the schema as a tree (Fig. 2) and as an ``.xsd`` document;
2. run the schema quality checker (the IBM SQC stand-in of §3.2);
3. the paper's key claim (§3.1): XML Schema's ``key``/``keyref`` makes
   references *selective* — a document whose ``sharedagg/@dimclass``
   points at a fact class id passes DTD validation (any ID satisfies an
   IDREF) but fails XSD validation.

Run:  python examples/schema_tooling.py
"""

from repro.dtd import parse_dtd, validate_dtd
from repro.mdm import gold_dtd_text, gold_schema, gold_schema_xml
from repro.web import render_schema_tree
from repro.xml import parse
from repro.xsd import check_schema, read_schema, validate


#: A model whose sharedagg references the *fact class* id "f1" — a wrong-
#: kind reference that only key/keyref can reject.
WRONG_KIND_REFERENCE = """<goldmodel id="m1" name="Demo">
  <factclasses>
    <factclass id="f1" name="Sales">
      <sharedaggs><sharedagg dimclass="f1"/></sharedaggs>
    </factclass>
  </factclasses>
  <dimclasses>
    <dimclass id="d1" name="Time">
      <dimatts><dimatt id="da1" name="day" oid="true"/></dimatts>
    </dimclass>
  </dimclasses>
</goldmodel>"""


def main() -> None:
    schema = gold_schema()

    # -- 1. Fig. 2: the schema as a tree ------------------------------------
    tree = render_schema_tree(schema)
    print("== XML Schema tree (Fig. 2) ==")
    print("\n".join(tree.splitlines()[:20]))
    print(f"   ... ({len(tree.splitlines())} lines total)")

    xsd_text = gold_schema_xml()
    print(f"\ngoldmodel.xsd: {len(xsd_text.splitlines())} lines "
          f"(the paper: 'more than 300 lines')")

    # Round-trip: the written schema document reads back equivalently.
    reread = read_schema(xsd_text)
    print(f"write→read round-trip: {sorted(reread.elements)} "
          f"{len(reread.types)} named types")

    # -- 2. schema quality check (IBM SQC stand-in) ---------------------------
    quality = check_schema(schema)
    print(f"\nschema quality check: {quality}")

    # -- 3. XSD vs DTD: selective references (§3.1) -----------------------------
    print("\n== the wrong-kind reference experiment ==")
    document_for_dtd = parse(WRONG_KIND_REFERENCE)
    dtd_report = validate_dtd(document_for_dtd, parse_dtd(gold_dtd_text()))
    print(f"DTD verdict:  {'ACCEPTS' if dtd_report.valid else 'rejects'} "
          "(IDREF only requires *some* ID to match)")

    document_for_xsd = parse(WRONG_KIND_REFERENCE)
    xsd_report = validate(document_for_xsd, schema)
    print(f"XSD verdict:  {'accepts' if xsd_report.valid else 'REJECTS'}")
    for issue in xsd_report.errors:
        if "keyref" in issue.message:
            print(f"   {issue.message}")

    assert dtd_report.valid and not xsd_report.valid, \
        "the paper's §3.1 claim must hold"
    print("\npaper claim verified: XML Schema catches the reference the "
          "DTD cannot.")


if __name__ == "__main__":
    main()
