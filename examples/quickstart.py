"""Quickstart: build a model, validate it, publish it to the web.

This walks the paper's complete pipeline in ~60 lines:
conceptual model → XML document → XML Schema validation → HTML site.

Run:  python examples/quickstart.py
"""

from repro.mdm import (
    ModelBuilder,
    gold_schema,
    model_to_xml,
    validate_model,
)
from repro.web import check_site, publish_multi_page
from repro.xml import parse
from repro.xsd import validate


def build_model():
    """A minimal coffee-shop data warehouse."""
    b = ModelBuilder("Coffee DW", description="Espresso sales analysis")

    time = (b.dimension("Time", is_time=True)
            .attribute("day_id", oid=True)
            .attribute("day_date", type_="Date", descriptor=True))
    time.level("Month").attribute("month_id", oid=True) \
        .attribute("month_name", descriptor=True).done()
    time.relate_root("Month", completeness=True)

    shop = (b.dimension("Shop")
            .attribute("shop_id", oid=True)
            .attribute("shop_name", descriptor=True))

    (b.fact("Sales")
     .measure("cups")
     .measure("revenue")
     .degenerate("receipt_no")
     .uses(time)
     .uses(shop))

    return b.build()


def main() -> None:
    model = build_model()
    print(f"model: {model.name}  {model.summary()}")

    # 1. semantic validation (the CASE tool's own checks)
    semantic = validate_model(model)
    print(f"semantic validation: {semantic}")

    # 2. serialize to the XML interchange format (paper §3.2)
    xml = model_to_xml(model)
    print(f"XML document: {len(xml.splitlines())} lines")

    # 3. validate against the generated XML Schema (paper §3.1)
    report = validate(parse(xml), gold_schema())
    print(f"XML Schema validation: {report}")

    # 4. publish the linked HTML site (paper §4, Fig. 6)
    site = publish_multi_page(model)
    links = check_site(site)
    print(f"published {site.page_count} HTML pages, "
          f"{links.total_links} links, all resolve: {links.ok}")

    site.write_to("quickstart_site")
    print("site written to ./quickstart_site (open index.html)")


if __name__ == "__main__":
    main()
