"""A second domain: hospital admissions warehouse.

Built from scratch with the fluent builder, this model exercises the
GOLD features the sales example does not combine:

* a **many-to-many** fact/dimension relationship — one admission carries
  several diagnoses (the textbook motivating case for M–M, §2);
* a **non-strict** classification hierarchy — a diagnosis belongs to
  several diagnosis groups;
* **categorization** — ``Patient`` specialises into ``Newborn`` with
  extra attributes (generalization-specialization, §2);
* a **fact-less fact class** — ``Transfers`` records events with no
  measures (allowed by the schema via ``minOccurs="0"`` on factatts);
* derivation rules and additivity constraints on the measures.

Run:  python examples/hospital_admissions.py
"""

from repro.mdm import (
    AggregationKind,
    DiceGrouping,
    ModelBuilder,
    Multiplicity,
    gold_schema,
    model_to_xml,
    validate_model,
)
from repro.olap import execute_cube, populate_star
from repro.web import check_site, publish_multi_page
from repro.xml import parse
from repro.xsd import validate


def build_model():
    b = ModelBuilder("Hospital DW",
                     description="Admissions and transfers analysis",
                     responsible="Clinical BI team")

    time = (b.dimension("Time", is_time=True)
            .attribute("day_id", oid=True)
            .attribute("day_date", type_="Date", descriptor=True))
    time.level("Month").attribute("month_id", oid=True) \
        .attribute("month_name", descriptor=True).done()
    time.level("Year").attribute("year_id", oid=True) \
        .attribute("year_number", type_="Number", descriptor=True).done()
    time.relate_root("Month", completeness=True)
    time.relate("Month", "Year", completeness=True)

    patient = (b.dimension("Patient")
               .attribute("patient_id", oid=True)
               .attribute("patient_name", descriptor=True)
               .attribute("birth_date", type_="Date"))
    (patient.level("AgeGroup")
     .attribute("agegroup_id", oid=True)
     .attribute("agegroup_name", descriptor=True)
     .done())
    patient.relate_root("AgeGroup")
    # Categorization: newborns carry extra clinical attributes.
    (patient.level("Newborn", categorization=True)
     .attribute("birth_weight_g", type_="Number")
     .attribute("gestation_weeks", type_="Number")
     .done())

    diagnosis = (b.dimension("Diagnosis")
                 .attribute("icd_code", oid=True)
                 .attribute("icd_label", descriptor=True))
    (diagnosis.level("DiagnosisGroup")
     .attribute("group_id", oid=True)
     .attribute("group_label", descriptor=True)
     .done())
    # A diagnosis belongs to several groups: non-strict (M both roles).
    diagnosis.relate_root("DiagnosisGroup", role_a=Multiplicity.MANY,
                          role_b=Multiplicity.MANY)

    ward = (b.dimension("Ward")
            .attribute("ward_id", oid=True)
            .attribute("ward_name", descriptor=True))

    admissions = (b.fact("Admissions")
                  .measure("length_of_stay")
                  .measure("cost")
                  .measure("cost_per_day", derived=True,
                           derivation_rule="cost / length_of_stay")
                  .degenerate("admission_no")
                  .uses(time)
                  .uses(patient)
                  .many_to_many(diagnosis)  # several diagnoses per stay
                  .uses(ward))
    # Lengths of stay must not be summed across patients — only averaged
    # or extremal; enforce via an additivity rule.
    admissions.additivity("length_of_stay", patient, allow=(
        AggregationKind.AVG, AggregationKind.MAX, AggregationKind.MIN,
        AggregationKind.COUNT))

    # Fact-less fact class: ward transfers (events only).
    (b.fact("Transfers")
     .uses(time)
     .uses(patient)
     .uses(ward))

    model = b.build()

    # Cube: total cost by month and diagnosis group.
    fact = model.fact_class("Admissions")
    cube = b.cube("Cost by month and diagnosis group", "Admissions",
                  measures=("cost",),
                  aggregations=(AggregationKind.SUM,))
    b.replace_cube(cube, cube.dice([
        DiceGrouping(model.dimension_class("Time").id,
                     model.dimension_class("Time").level("Month").id),
        DiceGrouping(model.dimension_class("Diagnosis").id,
                     model.dimension_class("Diagnosis")
                     .level("DiagnosisGroup").id),
    ]))
    return b.build()


def main() -> None:
    model = build_model()
    print(f"model: {model.name}  {model.summary()}")

    semantic = validate_model(model)
    print(f"semantic validation (warnings expected for the fact-less "
          f"fact): \n{semantic}")
    assert semantic.valid  # warnings only

    report = validate(parse(model_to_xml(model)), gold_schema())
    print(f"XML Schema validation: {report}")

    site = publish_multi_page(model)
    links = check_site(site)
    print(f"site: {site.page_count} pages, links ok: {links.ok}")

    star = populate_star(model, members_per_level=5, rows_per_fact=1500)
    cube = model.cubes[0]
    result = execute_cube(cube, star)
    print(f"\ncube '{cube.name}': {len(result.rows)} groups")
    for line in result.pretty().splitlines()[:8]:
        print(line)
    print("\nnote: admissions with two diagnosis groups contribute to "
          "both groups (non-strict roll-up), so group totals can exceed "
          "the grand total — the standard double-counting caveat.")


if __name__ == "__main__":
    main()
