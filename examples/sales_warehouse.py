"""The paper's running example, end to end.

Reconstructs the sales data warehouse of the paper (the ``Sales`` fact
class of Fig. 6.2 with its ``inventory`` / ``num_ticket`` / ``qty``
attributes and the ``Time`` dimension of Fig. 6.4 with its ``Month`` and
``Week`` levels), then:

1. stores it as an XML document and validates against both the XML
   Schema and the baseline DTD (§3),
2. publishes the navigable multi-page site (Figs. 6.1–6.4),
3. loads synthetic ticket data into a star schema and runs the model's
   cube class, a roll-up, and a slice (the OLAP operations of §2),
4. shows that the additivity rule on ``inventory`` is enforced,
5. exports star and snowflake SQL DDL ("commercial OLAP tool" target).

Run:  python examples/sales_warehouse.py
"""

from repro.dtd import parse_dtd, validate_dtd
from repro.mdm import (
    AggregationKind,
    CubeClass,
    DiceGrouping,
    Operator,
    gold_dtd_text,
    gold_schema,
    model_to_xml,
    sales_model,
)
from repro.olap import (
    AdditivityError,
    execute_cube,
    populate_star,
    star_schema_sql,
)
from repro.web import check_site, publish_multi_page
from repro.xml import parse
from repro.xsd import validate


def main() -> None:
    model = sales_model()
    print(f"== model: {model.name} ==")
    print(f"   {model.summary()}")

    # -- 1. interchange & validation (paper §3) ---------------------------
    xml = model_to_xml(model)
    document = parse(xml)
    print(f"XSD validation: {validate(document, gold_schema())}")
    print(f"DTD validation: "
          f"{validate_dtd(parse(xml), parse_dtd(gold_dtd_text()))}")

    # -- 2. web publication (paper §4) -------------------------------------
    site = publish_multi_page(model)
    links = check_site(site)
    print(f"site: {site.page_count} pages, {links.total_links} links, "
          f"ok={links.ok}")
    site.write_to("sales_site")

    # -- 3. OLAP analysis (paper §2, dynamic part) --------------------------
    star = populate_star(model, members_per_level=6, rows_per_fact=2000)
    print(f"star schema: {star.summary()}")

    cube = model.cubes[0]
    result = execute_cube(cube, star)
    print(f"\ncube '{cube.name}': {len(result.rows)} groups")
    print(result.pretty().splitlines()[0])
    print(result.pretty().splitlines()[1])
    for line in result.pretty().splitlines()[2:6]:
        print(line)

    time = model.dimension_class("Time")
    rolled = cube.roll_up(time.id, time.level("Year").id)
    rolled_result = execute_cube(rolled, star)
    print(f"\nroll-up Month→Year: {len(rolled_result.rows)} groups "
          f"(was {len(result.rows)})")

    sliced = cube.slice("Sales.qty", Operator.GT, 50)
    sliced_result = execute_cube(sliced, star)
    print(f"slice qty>50: {sliced_result.sliced_out} rows filtered out")

    # -- 4. additivity enforcement -------------------------------------------
    fact = model.fact_class("Sales")
    bad = CubeClass(
        id="bad", name="sum of inventory over time", fact=fact.id,
        measures=(fact.attribute("inventory").id,),
        aggregations=(AggregationKind.SUM,),
        dices=(DiceGrouping(time.id, time.level("Month").id),))
    try:
        execute_cube(bad, star)
        raise SystemExit("BUG: additivity rule not enforced")
    except AdditivityError as error:
        print(f"\nadditivity rule enforced: {error}")

    # -- 5. OLAP tool export ---------------------------------------------------
    ddl = star_schema_sql(model)
    print(f"\nstar-schema DDL: {ddl.count('CREATE TABLE')} tables")


if __name__ == "__main__":
    main()
