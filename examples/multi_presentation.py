"""Fig. 5: different presentations of the same MD model.

One XML document (a model with two fact classes, ``Sales`` and
``Inventory``, sharing the ``Time`` and ``Product`` dimensions) is
transformed into one HTML presentation per fact class.  Each presentation
contains only the dimensions its fact class shares — ``Warehouse``
appears only in the Inventory presentation, ``Store`` only in Sales —
exactly the behaviour Fig. 5 illustrates.

Both implementation options of footnote 8 are exercised: a single
parameterised stylesheet and one stylesheet per presentation; the output
is byte-identical.

Run:  python examples/multi_presentation.py
"""

from repro.mdm import two_facts_model
from repro.web import (
    presentations_by_parameter,
    presentations_by_stylesheet,
)


def main() -> None:
    model = two_facts_model()
    print(f"model: {model.name}")
    for fact in model.facts:
        dimensions = ", ".join(
            d.name for d in model.dimensions_of(fact.id))
        print(f"  fact {fact.name}: dimensions {dimensions}")

    by_param = presentations_by_parameter(model)
    by_sheet = presentations_by_stylesheet(model)

    identical = all(
        by_param.pages[name] == by_sheet.pages[name]
        for name in by_param.pages)
    print(f"\nparameterised == per-stylesheet output: {identical}")

    print("\npresentation contents (Fig. 5 filtering):")
    shared = {d.name for d in model.dimensions}
    for fact in model.facts:
        page = by_param.pages[f"presentation-{fact.id}.html"]
        included = sorted(
            name for name in shared
            if f"Dimension:\n                  {name}" in page
            or f"Dimension: {name}" in page or f">{name}<" in page)
        own = sorted(d.name for d in model.dimensions_of(fact.id))
        print(f"  {fact.name}: shows {included} (model-defined: {own})")
        for other in model.facts:
            if other.id != fact.id:
                leaked = any(
                    d.name in page
                    for d in model.dimensions_of(other.id)
                    if d.id not in fact.dimension_ids)
                print(f"    leaks {other.name}-only dimensions: {leaked}")

    by_param.write_to("presentations_site")
    print("\npresentations written to ./presentations_site")


if __name__ == "__main__":
    main()
