"""The paper's §6 future-work lines, implemented.

Section 6 of the paper sketches three research directions; this example
runs all three against the running example:

1. **XSL-FO** — "XSL FO can be used to specify in deeper detail the
   pagination, layout, and styling"; we transform the model into an
   XSL-FO document and render it with our paginating FO processor
   (the tool support the paper noted was missing in 2002).
2. **Client-side transformation** — "when the browsers completely
   support XML and XSLT, the transformation will be able to be
   performed in the browser"; we ship an XML + stylesheet bundle and
   show the simulated browser produces byte-identical HTML.
3. **CWM interchange** — "studying the Common Warehouse Metamodel as a
   common framework to easily interchange warehouse metadata", including
   the observation that plain CWM "lacks the complete set of
   information"; we export to CWM/XMI twice — plain (lossy) and with
   GOLD tagged-value extensions (lossless) — and diff the results.

Run:  python examples/future_work.py
"""

from repro.cwm import cwm_to_model, cwm_to_xmi, model_to_cwm, xmi_to_cwm
from repro.mdm import model_to_xml, sales_model, validate_model
from repro.web import (
    BrowserSimulator,
    client_bundle,
    render_fo_pages,
    server_side,
)


def main() -> None:
    model = sales_model()

    # -- 1. XSL-FO with pagination ------------------------------------------
    pages = render_fo_pages(model)
    print(f"== XSL-FO: rendered {len(pages)} paginated pages ==")
    print(pages[0].text())
    print(f"   ... (pages 2..{len(pages)} hold the fact and dimension "
          "classes)")

    # -- 2. client-side transformation -----------------------------------------
    bundle = client_bundle(model)
    client_html = BrowserSimulator().render(bundle)
    server_html = server_side(model)
    print("\n== client-side transformation ==")
    print(f"bundle: model.xml ({len(bundle.document_xml)} bytes) + "
          f"{len(bundle.stylesheets)} stylesheets")
    print(f"browser output == server output: "
          f"{client_html == server_html}")

    # -- 3. CWM / XMI interchange ------------------------------------------------
    print("\n== CWM interchange ==")
    extended_xmi = cwm_to_xmi(model_to_cwm(model, extended=True))
    plain_xmi = cwm_to_xmi(model_to_cwm(model, extended=False))
    print(f"extended XMI: {len(extended_xmi.splitlines())} lines; "
          f"plain XMI: {len(plain_xmi.splitlines())} lines")

    restored = cwm_to_model(xmi_to_cwm(extended_xmi))
    original = sales_model()
    original.cubes = []  # cube classes are outside CWM OLAP's scope
    lossless = model_to_xml(restored) == model_to_xml(original)
    print(f"extended round-trip lossless: {lossless}")

    lossy = cwm_to_model(xmi_to_cwm(plain_xmi))
    report = validate_model(lossy)
    print("plain CWM loses GOLD semantics "
          "(the paper: 'lacks the complete set of information'):")
    inventory = lossy.fact_class("Sales").attribute("inventory")
    print(f"  additivity rules lost: {inventory.additivity == []}")
    print(f"  {{OID}} attributes lost → model no longer passes CASE "
          f"checks: {not report.valid}")


if __name__ == "__main__":
    main()
